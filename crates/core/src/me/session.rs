//! The **session layer** of the Migration Enclave: explicit, typed
//! state machines for every migration the enclave is driving.
//!
//! Each *outgoing* migration is a [`SenderFsm`] — announce →
//! chunk/delta streaming → resume/retry → stored → delivered — keyed by
//! the migrating enclave's MRENCLAVE, with the per-nonce chunk progress
//! carried inside the active states as a [`StreamProgress`]. Each
//! *incoming* chunk stream is a [`ReceiverFsm`] keyed by its
//! [`TransferNonce`], verifying the HMAC chain chunk by chunk and —
//! when [`TransferConfig::speculative_restore`](crate::transfer::TransferConfig::speculative_restore)
//! is on — staging the verified prefix eagerly (incremental whole-state
//! digest; delta bases overlaid page by page) so the final chunk only
//! finalizes the digest check and releases.
//!
//! Invalid events surface as [`MigError::InvalidTransition`], frames
//! for nonces no stream owns as [`MigError::StaleNonce`], and a delta
//! whose base generation fell out of the LRU cache as
//! [`MigError::BaseEvicted`]. The wire-facing side (cells, padding,
//! scheduling) lives in [`super::wire`]; durable state in
//! [`super::persist`].

use crate::error::{ChannelPeer, MigError};
use crate::library::state::MigrationData;
use crate::me::wire::{self, LinkShaper, StreamDemand};
use crate::me::MigrationEnclave;
use crate::msgs::{LibToMe, MeToLib, MeToMe};
use crate::transfer::chunker::{
    chunk_count, trace_id, ChunkAssembler, ChunkMac, ChunkStream, TransferNonce,
};
use crate::transfer::delta::{self, DeltaManifest, PageDigests, StagedApply};
use crate::transfer::MIN_CHUNK_SIZE;
use sgx_sim::enclave::EnclaveEnv;
use sgx_sim::machine::MachineId;
use sgx_sim::measurement::MrEnclave;
use sgx_sim::wire::{WireReader, WireWriter};
use sgx_sim::SgxError;
use std::collections::HashMap;
use std::sync::Arc;

use super::write_opt;

/// Stream-frame kind: one channel-sealed cell, delivered via
/// [`ops::TRANSFER`](super::ops::TRANSFER).
pub const FRAME_SINGLE: u8 = 0;
/// Stream-frame kind: a packed batch container of sealed cells,
/// delivered via [`ops::TRANSFER_BATCH`](super::ops::TRANSFER_BATCH).
pub const FRAME_BATCH: u8 = 1;

/// Outgoing stream frames, each tagged with its frame kind
/// ([`FRAME_SINGLE`] or [`FRAME_BATCH`]) so the host can pick the wire
/// tag without inspecting the ciphertext.
pub type StreamFrames = Vec<(u8, Vec<u8>)>;

/// Action the untrusted host must take after a
/// [`ops::LIB_MSG`](super::ops::LIB_MSG) ECALL.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MeAction {
    /// Nothing to do (e.g. handshake already in flight; data queued).
    None,
    /// Open a connection to the destination ME: send the RA hello.
    ConnectRemote {
        /// Destination machine.
        destination: MachineId,
        /// `RaHello` bytes to deliver to the destination's ME host.
        hello: Vec<u8>,
    },
    /// A channel already exists: send this encrypted transfer.
    SendRemote {
        /// Destination machine.
        destination: MachineId,
        /// Channel-sealed [`MeToMe::Transfer`].
        transfer: Vec<u8>,
    },
    /// A channel exists and a streamed transfer is starting or resuming:
    /// send these encrypted frames in order.
    StreamRemote {
        /// Destination machine.
        destination: MachineId,
        /// Channel-sealed [`MeToMe`] stream frames (`ChunkStart` /
        /// `Chunk` / `ResumeRequest`), each tagged with the ECALL the
        /// host must deliver it through: [`FRAME_SINGLE`] is one sealed
        /// cell for [`ops::TRANSFER`](super::ops::TRANSFER),
        /// [`FRAME_BATCH`] is a packed batch container for
        /// [`ops::TRANSFER_BATCH`](super::ops::TRANSFER_BATCH).
        frames: StreamFrames,
    },
    /// (Destination side) relay this encrypted acknowledgement to the
    /// source ME.
    AckSource {
        /// Source machine.
        source: MachineId,
        /// Channel-sealed [`MeToMe::Delivered`].
        ack: Vec<u8>,
    },
}

impl MeAction {
    /// Serializes the action (ECALL output).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        match self {
            MeAction::None => {
                w.u8(0);
            }
            MeAction::ConnectRemote { destination, hello } => {
                w.u8(1);
                w.u64(destination.0);
                w.bytes(hello);
            }
            MeAction::SendRemote {
                destination,
                transfer,
            } => {
                w.u8(2);
                w.u64(destination.0);
                w.bytes(transfer);
            }
            MeAction::AckSource { source, ack } => {
                w.u8(3);
                w.u64(source.0);
                w.bytes(ack);
            }
            MeAction::StreamRemote {
                destination,
                frames,
            } => {
                w.u8(4);
                w.u64(destination.0);
                w.u32(frames.len() as u32);
                for (kind, frame) in frames {
                    w.u8(*kind);
                    w.bytes(frame);
                }
            }
        }
        w.finish()
    }

    /// Parses an action.
    ///
    /// # Errors
    ///
    /// [`SgxError::Decode`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SgxError> {
        let mut r = WireReader::new(bytes);
        let action = match r.u8()? {
            0 => MeAction::None,
            1 => MeAction::ConnectRemote {
                destination: MachineId(r.u64()?),
                hello: r.bytes_vec()?,
            },
            2 => MeAction::SendRemote {
                destination: MachineId(r.u64()?),
                transfer: r.bytes_vec()?,
            },
            3 => MeAction::AckSource {
                source: MachineId(r.u64()?),
                ack: r.bytes_vec()?,
            },
            4 => {
                let destination = MachineId(r.u64()?);
                let n = r.u32()? as usize;
                let mut frames = Vec::with_capacity(n);
                for _ in 0..n {
                    let kind = r.u8()?;
                    if kind > FRAME_BATCH {
                        return Err(SgxError::Decode);
                    }
                    frames.push((kind, r.bytes_vec()?));
                }
                MeAction::StreamRemote {
                    destination,
                    frames,
                }
            }
            _ => return Err(SgxError::Decode),
        };
        r.finish()?;
        Ok(action)
    }
}

// ---------------------------------------------------------------------
// Sender side
// ---------------------------------------------------------------------

/// Per-nonce progress of an outgoing chunk stream, carried inside the
/// active [`SenderFsm`] states and persisted so a restarted ME resumes
/// every in-flight stream from its last acknowledged chunk.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamProgress {
    pub(crate) nonce: TransferNonce,
    /// Chunk size the stream was started with (survives re-provisioning
    /// with a different config and adaptive drift).
    pub(crate) chunk_size: u32,
    /// Length of the streamed payload: the full state for a full stream,
    /// the packed dirty pages for a delta stream.
    pub(crate) payload_len: u64,
    /// State generation this stream installs at the destination.
    pub(crate) generation: u64,
    /// `Some(base)` when the stream ships a dirty-page delta against the
    /// destination's retained generation `base`.
    pub(crate) delta_base: Option<u64>,
    /// Cumulative acknowledgement: chunks `< acked` are at the
    /// destination.
    pub(crate) acked: u32,
    /// Next chunk index to put on the wire (not persisted; reset to
    /// `acked` on restore).
    pub(crate) next_to_send: u32,
}

impl StreamProgress {
    /// Fresh progress for a just-announced stream (nothing acked).
    #[must_use]
    pub fn new(
        nonce: TransferNonce,
        chunk_size: u32,
        payload_len: u64,
        generation: u64,
        delta_base: Option<u64>,
    ) -> Self {
        StreamProgress {
            nonce,
            chunk_size,
            payload_len,
            generation,
            delta_base,
            acked: 0,
            next_to_send: 0,
        }
    }

    /// Progress restored from a persisted checkpoint: anything past the
    /// last cumulative ack may be lost in flight, so sending restarts
    /// from there.
    #[must_use]
    pub fn restored(
        nonce: TransferNonce,
        chunk_size: u32,
        payload_len: u64,
        generation: u64,
        delta_base: Option<u64>,
        acked: u32,
    ) -> Self {
        StreamProgress {
            nonce,
            chunk_size,
            payload_len,
            generation,
            delta_base,
            acked,
            next_to_send: acked,
        }
    }

    /// The per-transfer nonce keying the chunk HMAC chain.
    #[must_use]
    pub fn nonce(&self) -> TransferNonce {
        self.nonce
    }

    /// Total chunks of the stream.
    #[must_use]
    pub fn n_chunks(&self) -> u32 {
        chunk_count(self.payload_len, self.chunk_size)
    }

    /// Whether every chunk has been cumulatively acknowledged.
    #[must_use]
    pub fn complete(&self) -> bool {
        self.acked >= self.n_chunks()
    }

    /// Cumulatively acknowledged chunks.
    #[must_use]
    pub fn acked(&self) -> u32 {
        self.acked
    }

    /// Next chunk index to put on the wire.
    #[must_use]
    pub fn next_to_send(&self) -> u32 {
        self.next_to_send
    }

    /// State generation this stream installs.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The delta base generation, when this is a delta stream.
    #[must_use]
    pub fn delta_base(&self) -> Option<u64> {
        self.delta_base
    }

    /// Wire cost of one frame of this stream in bytes — what the
    /// destination link's cell must cover while the stream is active.
    #[must_use]
    pub fn frame_cost(&self) -> u32 {
        if self.n_chunks() > 1 {
            self.chunk_size
        } else {
            (self.payload_len as u32).max(MIN_CHUNK_SIZE)
        }
    }

    /// Advances the progress by a cumulative ack (`rewind == false`:
    /// `acked` only moves forward, the send cursor never drops behind
    /// it) or a negotiated resume point (`rewind == true`: both rewind
    /// to `upto` — anything past it may be lost). Returns whether the
    /// stream is complete afterwards.
    ///
    /// # Errors
    ///
    /// [`MigError::Protocol`] when `upto` lies beyond the stream end
    /// (the progress is untouched).
    fn advance(&mut self, upto: u32, rewind: bool) -> Result<bool, MigError> {
        if upto > self.n_chunks() {
            return Err(MigError::Protocol("ack/resume beyond stream end"));
        }
        if rewind {
            self.acked = upto;
            self.next_to_send = upto;
        } else {
            self.acked = self.acked.max(upto);
            self.next_to_send = self.next_to_send.max(self.acked);
        }
        Ok(self.complete())
    }
}

/// The typed per-migration sender state machine, replacing the ad-hoc
/// `sent` / `stored` / `awaiting_resume` flags the Migration Enclave
/// used to keep per outgoing migration.
///
/// ```text
///            dispatch_single_shot           on_stored
///   Idle ───────────────────────► AwaitingReceipt ─────► Stored
///    │ │                                                   ▲
///    │ │ dispatch_resume            on_resume_point        │ on_stored
///    │ └──────────────► AwaitingResume ──────┐             │
///    │ dispatch_announce        ▲            ▼   on_ack    │
///    └──────────────────────► Streaming ──────────► Complete
///          (reset_channel / on_delta_nack rewind to Idle;
///           on_delivered removes the whole migration)
/// ```
///
/// Events that do not apply in the current state return
/// [`MigError::InvalidTransition`] and leave the state untouched.
#[derive(Debug)]
pub enum SenderFsm {
    /// Nothing is on the wire towards the current destination: a fresh
    /// request, a restored checkpoint, or a post-`RETRY` rewind. A
    /// retained [`StreamProgress`] means an interrupted stream whose
    /// resume point must be renegotiated before chunks flow again.
    Idle {
        /// Progress of a previously announced stream, if any.
        stream: Option<StreamProgress>,
    },
    /// The single-shot `Transfer` frame is on the wire, unconfirmed.
    AwaitingReceipt,
    /// A `ResumeRequest` is outstanding: the scheduler must not grant
    /// this stream chunks until the destination names the resume point.
    AwaitingResume {
        /// The interrupted stream's progress.
        stream: StreamProgress,
    },
    /// The announced stream is live: the deficit-round-robin scheduler
    /// grants it chunks from the shared link window.
    Streaming {
        /// The live stream's progress.
        stream: StreamProgress,
    },
    /// Every chunk is cumulatively acknowledged — the payload is fully
    /// at the destination, awaiting its `Stored` / `Delivered`.
    Complete {
        /// The finished stream's progress.
        stream: StreamProgress,
    },
    /// The destination confirmed it parked the payload (`Stored`); the
    /// retained copy awaits `Delivered`.
    Stored {
        /// The closed stream's progress (`None` for a single-shot
        /// transfer).
        stream: Option<StreamProgress>,
    },
}

impl SenderFsm {
    /// The state's name (diagnostics and [`MigError::InvalidTransition`]).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            SenderFsm::Idle { .. } => "Idle",
            SenderFsm::AwaitingReceipt => "AwaitingReceipt",
            SenderFsm::AwaitingResume { .. } => "AwaitingResume",
            SenderFsm::Streaming { .. } => "Streaming",
            SenderFsm::Complete { .. } => "Complete",
            SenderFsm::Stored { .. } => "Stored",
        }
    }

    fn invalid(&self, event: &'static str) -> MigError {
        MigError::InvalidTransition {
            state: self.name(),
            event,
        }
    }

    /// Puts the paper's single-shot `Transfer` on the wire.
    ///
    /// # Errors
    ///
    /// [`MigError::InvalidTransition`] outside `Idle` (or when a stream
    /// is retained — an interrupted stream must resume, not restart).
    pub fn dispatch_single_shot(&mut self) -> Result<(), MigError> {
        match self {
            SenderFsm::Idle { stream: None } => {
                *self = SenderFsm::AwaitingReceipt;
                Ok(())
            }
            SenderFsm::Idle { stream: Some(_) }
            | SenderFsm::AwaitingReceipt
            | SenderFsm::AwaitingResume { .. }
            | SenderFsm::Streaming { .. }
            | SenderFsm::Complete { .. }
            | SenderFsm::Stored { .. } => Err(self.invalid("dispatch_single_shot")),
        }
    }

    /// Sends a `ResumeRequest` for the retained stream, returning its
    /// nonce. Anything this side believed in flight died with the old
    /// channel; the destination's `Resume` names the true point.
    ///
    /// # Errors
    ///
    /// [`MigError::InvalidTransition`] unless `Idle` with a retained
    /// stream.
    pub fn dispatch_resume(&mut self) -> Result<TransferNonce, MigError> {
        match std::mem::replace(self, SenderFsm::Idle { stream: None }) {
            SenderFsm::Idle {
                stream: Some(mut stream),
            } => {
                stream.next_to_send = stream.acked;
                let nonce = stream.nonce;
                *self = SenderFsm::AwaitingResume { stream };
                Ok(nonce)
            }
            state @ (SenderFsm::Idle { stream: None }
            | SenderFsm::AwaitingReceipt
            | SenderFsm::AwaitingResume { .. }
            | SenderFsm::Streaming { .. }
            | SenderFsm::Complete { .. }
            | SenderFsm::Stored { .. }) => {
                *self = state;
                Err(self.invalid("dispatch_resume"))
            }
        }
    }

    /// Announces a fresh chunk/delta stream.
    ///
    /// # Errors
    ///
    /// [`MigError::InvalidTransition`] unless `Idle` with no retained
    /// stream.
    pub fn dispatch_announce(&mut self, stream: StreamProgress) -> Result<(), MigError> {
        match self {
            SenderFsm::Idle { stream: None } => {
                *self = SenderFsm::Streaming { stream };
                Ok(())
            }
            SenderFsm::Idle { stream: Some(_) }
            | SenderFsm::AwaitingReceipt
            | SenderFsm::AwaitingResume { .. }
            | SenderFsm::Streaming { .. }
            | SenderFsm::Complete { .. }
            | SenderFsm::Stored { .. } => Err(self.invalid("dispatch_announce")),
        }
    }

    /// A cumulative `ChunkAck` up to `upto` arrived.
    ///
    /// # Errors
    ///
    /// [`MigError::InvalidTransition`] in states without a sent stream;
    /// [`MigError::Protocol`] on an ack beyond the stream end.
    pub fn on_ack(&mut self, upto: u32) -> Result<(), MigError> {
        // `StreamProgress::advance` validates before mutating, so on
        // error each arm restores its original variant verbatim.
        match std::mem::replace(self, SenderFsm::Idle { stream: None }) {
            SenderFsm::Streaming { mut stream } => match stream.advance(upto, false) {
                Ok(true) => {
                    *self = SenderFsm::Complete { stream };
                    Ok(())
                }
                Ok(false) => {
                    *self = SenderFsm::Streaming { stream };
                    Ok(())
                }
                Err(e) => {
                    *self = SenderFsm::Streaming { stream };
                    Err(e)
                }
            },
            // An ack racing a resume renegotiation only advances the
            // bookkeeping; the stream stays gated until the destination
            // names the resume point.
            SenderFsm::AwaitingResume { mut stream } => match stream.advance(upto, false) {
                Ok(true) => {
                    *self = SenderFsm::Complete { stream };
                    Ok(())
                }
                Ok(false) => {
                    *self = SenderFsm::AwaitingResume { stream };
                    Ok(())
                }
                Err(e) => {
                    *self = SenderFsm::AwaitingResume { stream };
                    Err(e)
                }
            },
            // Duplicate final acks are harmless.
            SenderFsm::Complete { mut stream } => {
                let result = stream.advance(upto, false).map(|_| ());
                *self = SenderFsm::Complete { stream };
                result
            }
            SenderFsm::Stored {
                stream: Some(stream),
            } => {
                *self = SenderFsm::Stored {
                    stream: Some(stream),
                };
                Ok(())
            }
            state @ (SenderFsm::Idle { .. }
            | SenderFsm::AwaitingReceipt
            | SenderFsm::Stored { stream: None }) => {
                *self = state;
                Err(self.invalid("on_ack"))
            }
        }
    }

    /// The destination named the resume point: rewind to `upto` and
    /// stream from there (`upto == 0` restarts the stream; the caller
    /// re-announces).
    ///
    /// # Errors
    ///
    /// [`MigError::InvalidTransition`] unless streaming or awaiting the
    /// resume point; [`MigError::Protocol`] beyond the stream end.
    pub fn on_resume_point(&mut self, upto: u32) -> Result<(), MigError> {
        // Both gated states resolve to Streaming (or Complete) at the
        // negotiated point; a rejected point restores whichever state
        // the machine was in (`advance` is untouched-on-error).
        match std::mem::replace(self, SenderFsm::Idle { stream: None }) {
            SenderFsm::Streaming { mut stream } => match stream.advance(upto, true) {
                Ok(complete) => {
                    *self = if complete {
                        SenderFsm::Complete { stream }
                    } else {
                        SenderFsm::Streaming { stream }
                    };
                    Ok(())
                }
                Err(e) => {
                    *self = SenderFsm::Streaming { stream };
                    Err(e)
                }
            },
            SenderFsm::AwaitingResume { mut stream } => match stream.advance(upto, true) {
                Ok(complete) => {
                    *self = if complete {
                        SenderFsm::Complete { stream }
                    } else {
                        SenderFsm::Streaming { stream }
                    };
                    Ok(())
                }
                Err(e) => {
                    *self = SenderFsm::AwaitingResume { stream };
                    Err(e)
                }
            },
            state @ (SenderFsm::Idle { .. }
            | SenderFsm::AwaitingReceipt
            | SenderFsm::Complete { .. }
            | SenderFsm::Stored { .. }) => {
                *self = state;
                Err(self.invalid("on_resume_point"))
            }
        }
    }

    /// The destination confirmed it parked the payload (`Stored`).
    /// Returns the generation of the closed stream, if any — the caller
    /// records it as the delta base for the next repeat migration.
    ///
    /// # Errors
    ///
    /// [`MigError::InvalidTransition`] when nothing was dispatched.
    pub fn on_stored(&mut self) -> Result<Option<u64>, MigError> {
        match std::mem::replace(self, SenderFsm::Idle { stream: None }) {
            SenderFsm::AwaitingReceipt => {
                *self = SenderFsm::Stored { stream: None };
                Ok(None)
            }
            SenderFsm::Streaming { mut stream }
            | SenderFsm::AwaitingResume { mut stream }
            | SenderFsm::Complete { mut stream } => {
                // A resume renegotiation found the payload fully
                // received: close out the stream's accounting.
                let n = stream.n_chunks();
                stream.acked = n;
                stream.next_to_send = n;
                let generation = stream.generation;
                *self = SenderFsm::Stored {
                    stream: Some(stream),
                };
                Ok(Some(generation))
            }
            // Idempotent: the destination answers resumed transfers with
            // Stored as often as asked.
            SenderFsm::Stored { stream } => {
                let generation = stream.as_ref().map(|s| s.generation);
                *self = SenderFsm::Stored { stream };
                Ok(generation)
            }
            state @ SenderFsm::Idle { .. } => {
                *self = state;
                Err(self.invalid("on_stored"))
            }
        }
    }

    /// The destination cannot apply the announced delta (no base):
    /// drop the stream so dispatch restarts the transfer in full.
    ///
    /// # Errors
    ///
    /// [`MigError::InvalidTransition`] without a sent stream.
    pub fn on_delta_nack(&mut self) -> Result<(), MigError> {
        match self {
            SenderFsm::Streaming { .. }
            | SenderFsm::AwaitingResume { .. }
            | SenderFsm::Complete { .. }
            | SenderFsm::Stored { stream: Some(_) } => {
                *self = SenderFsm::Idle { stream: None };
                Ok(())
            }
            SenderFsm::Idle { .. }
            | SenderFsm::AwaitingReceipt
            | SenderFsm::Stored { stream: None } => Err(self.invalid("on_delta_nack")),
        }
    }

    /// The channel to the destination died (`RETRY` reconnect or a
    /// restored checkpoint): everything in flight is lost. Rewinds to
    /// `Idle`, keeping the stream progress (sending restarts from the
    /// last cumulative ack).
    pub fn reset_channel(&mut self) {
        let stream = match std::mem::replace(self, SenderFsm::Idle { stream: None }) {
            SenderFsm::Idle { stream } | SenderFsm::Stored { stream } => stream,
            SenderFsm::AwaitingReceipt => None,
            SenderFsm::Streaming { stream }
            | SenderFsm::AwaitingResume { stream }
            | SenderFsm::Complete { stream } => Some(stream),
        };
        let stream = stream.map(|mut s| {
            s.next_to_send = s.acked;
            s
        });
        *self = SenderFsm::Idle { stream };
    }

    /// The stream's progress in any state that carries one.
    #[must_use]
    pub fn stream(&self) -> Option<&StreamProgress> {
        match self {
            SenderFsm::Idle { stream } | SenderFsm::Stored { stream } => stream.as_ref(),
            SenderFsm::AwaitingReceipt => None,
            SenderFsm::AwaitingResume { stream }
            | SenderFsm::Streaming { stream }
            | SenderFsm::Complete { stream } => Some(stream),
        }
    }

    /// The stream's progress in the states where it is on the wire
    /// (everything but `Idle`).
    #[must_use]
    pub fn sent_stream(&self) -> Option<&StreamProgress> {
        match self {
            SenderFsm::Idle { .. } | SenderFsm::AwaitingReceipt => None,
            SenderFsm::Stored { stream } => stream.as_ref(),
            SenderFsm::AwaitingResume { stream }
            | SenderFsm::Streaming { stream }
            | SenderFsm::Complete { stream } => Some(stream),
        }
    }

    /// The stream, when the scheduler may grant it chunks right now.
    #[must_use]
    pub fn sendable_stream(&self) -> Option<&StreamProgress> {
        match self {
            SenderFsm::Streaming { stream } => Some(stream),
            SenderFsm::Idle { .. }
            | SenderFsm::AwaitingReceipt
            | SenderFsm::AwaitingResume { .. }
            | SenderFsm::Complete { .. }
            | SenderFsm::Stored { .. } => None,
        }
    }

    fn sendable_stream_mut(&mut self) -> Option<&mut StreamProgress> {
        match self {
            SenderFsm::Streaming { stream } => Some(stream),
            SenderFsm::Idle { .. }
            | SenderFsm::AwaitingReceipt
            | SenderFsm::AwaitingResume { .. }
            | SenderFsm::Complete { .. }
            | SenderFsm::Stored { .. } => None,
        }
    }

    /// Whether anything is on the wire (not `Idle`).
    #[must_use]
    pub fn is_sent(&self) -> bool {
        !matches!(self, SenderFsm::Idle { .. })
    }

    /// An announced stream the destination has not fully acknowledged
    /// yet (the occupancy counted against the stream cap). A resumed
    /// stream that was already fully acked before the crash does not
    /// occupy a slot — its renegotiation resolves to `Stored`.
    #[must_use]
    pub fn stream_active(&self) -> bool {
        match self {
            SenderFsm::Streaming { stream } | SenderFsm::AwaitingResume { stream } => {
                !stream.complete()
            }
            SenderFsm::Idle { .. }
            | SenderFsm::AwaitingReceipt
            | SenderFsm::Complete { .. }
            | SenderFsm::Stored { .. } => false,
        }
    }

    /// An unconfirmed single-shot `Transfer` is in flight.
    #[must_use]
    pub fn awaiting_receipt(&self) -> bool {
        matches!(self, SenderFsm::AwaitingReceipt)
    }

    /// A `ResumeRequest` is outstanding for this stream.
    #[must_use]
    pub fn is_awaiting_resume(&self) -> bool {
        matches!(self, SenderFsm::AwaitingResume { .. })
    }
}

/// One retained outgoing migration: the Table I payload, the bulk
/// state, and the [`SenderFsm`] tracking what is on the wire.
pub(crate) struct OutgoingMigration {
    pub(crate) destination: MachineId,
    pub(crate) data: MigrationData,
    /// Bulk state accompanying the Table I payload (possibly empty).
    /// Shared with the chunk stream and the generation cache — never
    /// cloned on the streaming path.
    pub(crate) state: Arc<[u8]>,
    pub(crate) fsm: SenderFsm,
}

impl OutgoingMigration {
    pub(crate) fn n_chunks(&self) -> u32 {
        self.fsm.stream().map_or(0, StreamProgress::n_chunks)
    }
}

// ---------------------------------------------------------------------
// Receiver side
// ---------------------------------------------------------------------

/// How the destination stages the arriving payload.
enum Staging {
    /// Full stream: the assembler's verified buffer *is* the state (with
    /// speculative restore on, its whole-state digest is folded in chunk
    /// by chunk).
    Full,
    /// Delta stream whose base was retained and content-verified at
    /// announce time: the base is staged up front and dirty pages are
    /// overlaid as their payload bytes verify (speculative restore).
    StagedDelta(StagedApply),
    /// Delta stream assembled without staging (base missing at announce,
    /// or speculation disabled): applied after completion; NACKed when
    /// the base is still missing then.
    DeferredDelta(DeltaManifest),
}

/// What [`ReceiverFsm::release`] produced.
// MigrationData carries the Table I fixed arrays inline (1.3 KiB); the
// value is consumed immediately by the release path, so boxing would
// only add an allocation.
#[allow(clippy::large_enum_variant)]
pub enum ReceiverRelease {
    /// The whole-state digest checked out: the reconstructed state (and
    /// the Table I payload that travelled with the announcement) is
    /// released for parking/forwarding.
    Released {
        /// The Table I control payload.
        data: MigrationData,
        /// The verified, reconstructed bulk state.
        state: Arc<[u8]>,
    },
    /// The stream is a delta whose base generation this enclave does not
    /// hold: the caller NACKs so the source restarts as a full stream.
    BaseMissing,
}

/// The typed per-nonce receiver state machine: verifies the chunk HMAC
/// chain strictly in order and stages the verified prefix.
///
/// Lifecycle: constructed by an announcement
/// ([`ReceiverFsm::start_full`] / [`ReceiverFsm::start_delta`]), driven
/// by [`ReceiverFsm::on_chunk`] until [`ReceiverFsm::is_complete`], then
/// consumed by [`ReceiverFsm::release`] — which enforces the release
/// rules unchanged from the batch path: whole-state digest before
/// release, manifest validated before any page is applied, and any
/// tamper evidence quarantines the stream (the partial state is
/// dropped; a resume restarts it from chunk 0).
///
/// With speculative restore on, the expensive tail work is done as
/// chunks arrive — the running digest and (for deltas) the staged base
/// overlay — so `release` after the final chunk only finalizes.
pub struct ReceiverFsm {
    source: MachineId,
    mr_enclave: MrEnclave,
    data: MigrationData,
    /// State generation the stream installs (for a delta, the
    /// manifest's `new_generation`).
    generation: u64,
    assembler: ChunkAssembler,
    staging: Staging,
}

impl std::fmt::Debug for ReceiverFsm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReceiverFsm")
            .field("source", &self.source)
            .field("next_idx", &self.assembler.next_idx())
            .field("n_chunks", &self.assembler.n_chunks())
            .field(
                "staging",
                &match &self.staging {
                    Staging::Full => "full",
                    Staging::StagedDelta(_) => "staged-delta",
                    Staging::DeferredDelta(_) => "deferred-delta",
                },
            )
            .finish_non_exhaustive()
    }
}

impl ReceiverFsm {
    /// Opens a receiver for an announced full-state stream.
    ///
    /// # Errors
    ///
    /// [`MigError::Transfer`] on inconsistent announced geometry.
    #[allow(clippy::too_many_arguments)]
    pub fn start_full(
        source: MachineId,
        mr_enclave: MrEnclave,
        data: MigrationData,
        nonce: TransferNonce,
        generation: u64,
        total_len: u64,
        chunk_size: u32,
        state_digest: [u8; 32],
        speculative: bool,
    ) -> Result<Self, MigError> {
        let mut assembler = ChunkAssembler::new(nonce, chunk_size, total_len, state_digest)?;
        if speculative {
            assembler.enable_incremental_digest();
        }
        Ok(ReceiverFsm {
            source,
            mr_enclave,
            data,
            generation,
            assembler,
            staging: Staging::Full,
        })
    }

    /// Opens a receiver for an announced dirty-page delta stream.
    ///
    /// `base` is the retained candidate for the manifest's base
    /// generation (already generation-matched by the caller); with
    /// speculation on and the base content-verified, the stream stages
    /// eagerly, otherwise it defers the apply to completion — a base
    /// that is missing or fails verification is *not* an error here:
    /// the NACK happens after the last chunk, keeping the channel
    /// strictly FIFO.
    ///
    /// # Errors
    ///
    /// [`MigError::Transfer`] on inconsistent announced geometry.
    #[allow(clippy::too_many_arguments)]
    pub fn start_delta(
        source: MachineId,
        mr_enclave: MrEnclave,
        data: MigrationData,
        nonce: TransferNonce,
        chunk_size: u32,
        payload_digest: [u8; 32],
        manifest: DeltaManifest,
        base: Option<&[u8]>,
        speculative: bool,
    ) -> Result<Self, MigError> {
        let mut assembler =
            ChunkAssembler::new(nonce, chunk_size, manifest.payload_len(), payload_digest)?;
        if speculative {
            assembler.enable_incremental_digest();
        }
        let generation = manifest.new_generation;
        let staging = match base
            .filter(|_| speculative)
            .and_then(|b| StagedApply::new(b, &manifest).ok())
        {
            Some(staged) => Staging::StagedDelta(staged),
            None => Staging::DeferredDelta(manifest),
        };
        Ok(ReceiverFsm {
            source,
            mr_enclave,
            data,
            generation,
            assembler,
            staging,
        })
    }

    /// Rebuilds a receiver from persisted parts (ME restore). The
    /// staging is reconstructed deterministically: the assembler's
    /// verified prefix is re-absorbed onto the (re-verified) base; when
    /// the base did not survive the restart the stream falls back to
    /// the deferred path, exactly like a base evicted before announce.
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    pub fn restore(
        source: MachineId,
        mr_enclave: MrEnclave,
        data: MigrationData,
        generation: u64,
        mut assembler: ChunkAssembler,
        manifest: Option<DeltaManifest>,
        base: Option<&[u8]>,
        speculative: bool,
    ) -> Self {
        if speculative {
            assembler.enable_incremental_digest();
        }
        let staging = match manifest {
            None => Staging::Full,
            Some(manifest) => {
                let staged = base.filter(|_| speculative).and_then(|b| {
                    let mut staged = StagedApply::new(b, &manifest).ok()?;
                    staged.absorb(assembler.received()).ok()?;
                    Some(staged)
                });
                match staged {
                    Some(staged) => Staging::StagedDelta(staged),
                    None => Staging::DeferredDelta(manifest),
                }
            }
        };
        ReceiverFsm {
            source,
            mr_enclave,
            data,
            generation,
            assembler,
            staging,
        }
    }

    /// The source machine the stream arrives from.
    #[must_use]
    pub fn source(&self) -> MachineId {
        self.source
    }

    /// The migrating enclave's measurement.
    #[must_use]
    pub fn mr_enclave(&self) -> MrEnclave {
        self.mr_enclave
    }

    /// The Table I control payload that travelled with the announcement.
    #[must_use]
    pub fn data(&self) -> &MigrationData {
        &self.data
    }

    /// The state generation the stream installs.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Index of the next chunk the receiver will accept — equivalently
    /// the cumulative acknowledgement.
    #[must_use]
    pub fn next_idx(&self) -> u32 {
        self.assembler.next_idx()
    }

    /// Whether every chunk has been verified.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.assembler.is_complete()
    }

    /// The delta manifest, for either delta mode (persistence).
    #[must_use]
    pub fn delta_manifest(&self) -> Option<&DeltaManifest> {
        match &self.staging {
            Staging::Full => None,
            Staging::StagedDelta(staged) => Some(staged.manifest()),
            Staging::DeferredDelta(manifest) => Some(manifest),
        }
    }

    /// The manifest whose base [`ReceiverFsm::release`] still needs —
    /// only a deferred delta; a staged one captured the base at
    /// announce time.
    #[must_use]
    pub fn needs_base(&self) -> Option<&DeltaManifest> {
        match &self.staging {
            Staging::DeferredDelta(manifest) => Some(manifest),
            Staging::Full | Staging::StagedDelta(_) => None,
        }
    }

    /// Whether the stream is speculatively staged onto a retained base.
    #[must_use]
    pub fn is_staged(&self) -> bool {
        matches!(self.staging, Staging::StagedDelta(_))
    }

    /// Serialized assembler state (persistence).
    #[must_use]
    pub fn assembler_bytes(&self) -> Vec<u8> {
        self.assembler.to_bytes()
    }

    /// Verifies and stages chunk `idx`.
    ///
    /// # Errors
    ///
    /// [`MigError::Transfer`] on an out-of-order index (loss artifact —
    /// the verified prefix is kept), a wrong payload length, or a
    /// chain-MAC mismatch (tamper evidence — the caller quarantines the
    /// stream).
    pub fn on_chunk(&mut self, idx: u32, payload: &[u8], mac: &ChunkMac) -> Result<(), MigError> {
        self.assembler.accept(idx, payload, mac)?;
        if let Staging::StagedDelta(staged) = &mut self.staging {
            staged.absorb(payload)?;
        }
        Ok(())
    }

    /// Consumes the completed stream, enforcing the release rules:
    /// whole-state digest before release; a deferred delta is applied
    /// onto `base` (validate-before-apply) or answered
    /// [`ReceiverRelease::BaseMissing`] when `base` is `None`.
    ///
    /// # Errors
    ///
    /// [`MigError::Transfer`] on an incomplete stream or any digest
    /// mismatch — the partial state is dropped with the consumed
    /// receiver (quarantine).
    pub fn release(self, base: Option<&[u8]>) -> Result<ReceiverRelease, MigError> {
        let ReceiverFsm {
            data,
            assembler,
            staging,
            ..
        } = self;
        match staging {
            Staging::Full => {
                let state: Arc<[u8]> = assembler.finish()?.into();
                Ok(ReceiverRelease::Released { data, state })
            }
            Staging::StagedDelta(staged) => {
                // The chain's payload digest and the manifest's
                // whole-state digest both still gate the release; with
                // speculation both are running digests, so only the
                // finalizes happen here.
                assembler.finish()?;
                let state: Arc<[u8]> = staged.finish()?.into();
                Ok(ReceiverRelease::Released { data, state })
            }
            Staging::DeferredDelta(manifest) => {
                let payload = assembler.finish()?;
                match base {
                    Some(base) => {
                        let state: Arc<[u8]> = delta::apply(base, &manifest, &payload)?.into();
                        Ok(ReceiverRelease::Released { data, state })
                    }
                    None => Ok(ReceiverRelease::BaseMissing),
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Session-layer opcode handling
// ---------------------------------------------------------------------

impl MigrationEnclave {
    pub(super) fn op_lib_msg(
        &mut self,
        env: &mut EnclaveEnv<'_>,
        input: &[u8],
    ) -> Result<Vec<u8>, MigError> {
        let mut r = WireReader::new(input);
        let mr = MrEnclave(r.array()?);
        let ciphertext = r.bytes_vec()?;
        r.finish()?;

        let channel = self
            .local_sessions
            .get_mut(&mr)
            .ok_or(MigError::Protocol("no local session for enclave"))?;
        let plaintext = channel.open(&ciphertext)?;
        let action = match LibToMe::from_bytes(&plaintext)? {
            LibToMe::MigrateRequest {
                destination,
                data,
                state,
            } => {
                self.out_streams.remove(&mr);
                self.out_manifests.remove(&mr);
                self.outgoing.insert(
                    mr,
                    OutgoingMigration {
                        destination,
                        data,
                        state: state.into(),
                        fsm: SenderFsm::Idle { stream: None },
                    },
                );
                self.dispatch_outgoing(env, destination)?
            }
            LibToMe::Done => {
                // Destination side: the library confirmed installation; the
                // parked copy can finally be dropped.
                let source = self
                    .awaiting_done
                    .remove(&mr)
                    .ok_or(MigError::Protocol("unexpected DONE"))?;
                self.pending_incoming.remove(&mr);
                let channel =
                    self.channels_in
                        .get_mut(&source)
                        .ok_or(MigError::ChannelMissing {
                            peer: ChannelPeer::Source,
                        })?;
                let ack = channel.seal(&MeToMe::Delivered { mr_enclave: mr }.to_bytes());
                MeAction::AckSource { source, ack }
            }
        };
        Ok(action.to_bytes())
    }

    /// Chunks in flight (sent, not yet cumulatively acknowledged) across
    /// every stream towards `destination` — the consumed share of the
    /// link's shared window budget.
    fn in_flight_chunks(&self, destination: MachineId) -> u32 {
        self.outgoing
            .values()
            .filter(|mig| mig.destination == destination)
            .filter_map(|mig| mig.fsm.sent_stream())
            .map(|s| s.next_to_send.saturating_sub(s.acked))
            .sum()
    }

    /// Announced-and-incomplete streams towards `destination` (the
    /// occupancy counted against `TransferConfig::max_streams`).
    fn active_stream_count(&self, destination: MachineId) -> u32 {
        self.outgoing
            .values()
            .filter(|mig| mig.destination == destination && mig.fsm.stream_active())
            .count() as u32
    }

    /// Grants send slots across the ready streams towards `destination`
    /// — deficit round-robin over the shared link window — and seals the
    /// resulting frames: `leads` (announcements / re-announcements)
    /// first, each padded to the wire cell, then the granted chunks.
    fn pump_streams(
        &mut self,
        destination: MachineId,
        leads: Vec<MeToMe>,
        lead_cost: u32,
    ) -> Result<StreamFrames, MigError> {
        let transfer_cfg = self.config()?.transfer;
        let in_flight = self.in_flight_chunks(destination);

        // Demands of every stream that could put a chunk on the wire
        // right now, deterministic order.
        let mut demands: Vec<(MrEnclave, StreamDemand)> = self
            .outgoing
            .iter()
            .filter(|(_, mig)| mig.destination == destination)
            .filter_map(|(mr, mig)| mig.fsm.sendable_stream().map(|s| (*mr, s)))
            .filter(|(_, s)| s.next_to_send < s.n_chunks())
            .map(|(mr, s)| {
                (
                    mr,
                    StreamDemand {
                        pending_chunks: s.n_chunks() - s.next_to_send,
                        chunk_cost: u64::from(s.frame_cost()),
                    },
                )
            })
            .collect();
        demands.sort_by_key(|(mr, _)| mr.0);

        let shaper = self
            .shapers
            .entry(destination)
            .or_insert_with(|| LinkShaper::new(&transfer_cfg));
        let budget = shaper.adaptive().window().saturating_sub(in_flight);
        let grants = shaper.allocate(budget, &demands);
        if leads.is_empty() && grants.is_empty() {
            return Ok(Vec::new());
        }

        // Rebuild transient chunk caches for everything about to send.
        for mr in &grants {
            self.ensure_out_stream(*mr)?;
        }

        // The cell must cover every frame of this batch: the granted
        // streams' chunk geometry and the lead frames' natural sizes.
        let lead_bytes: Vec<Vec<u8>> = leads.iter().map(MeToMe::to_bytes).collect();
        let mut needed = lead_cost;
        for (mr, demand) in &demands {
            if grants.contains(mr) {
                needed = needed.max(demand.chunk_cost as u32);
            }
        }
        for bytes in &lead_bytes {
            // A lead larger than the cell's frame size (a delta manifest
            // naming many pages) raises the cell so chunks sealed after
            // it cannot overtake it.
            needed = needed.max(wire::cell_for_frame_len(bytes.len())?);
        }
        let cell = self
            .shapers
            .get_mut(&destination)
            .ok_or(MigError::SessionInvariant("link shaper vanished"))?
            .bump_cell(needed, in_flight);

        let mut next: HashMap<MrEnclave, u32> = HashMap::new();
        for mr in &grants {
            let s = self
                .outgoing
                .get(mr)
                .and_then(|mig| mig.fsm.sendable_stream())
                .ok_or(MigError::SessionInvariant("granted stream not sendable"))?;
            next.insert(*mr, s.next_to_send);
        }
        // Build every plaintext of this burst first (leads padded to the
        // chunk-frame length, then the granted chunks), then hand the
        // whole burst to the channel's seal lanes at once — the AEAD
        // work overlaps across lanes while the sealed sequence numbers
        // and ciphertexts stay byte-identical to sequential sealing.
        let mut plaintexts: Vec<Vec<u8>> = Vec::with_capacity(lead_bytes.len() + grants.len());
        for bytes in lead_bytes {
            plaintexts.push(wire::lead_plaintext(bytes, cell));
        }
        for mr in &grants {
            let cache = self
                .out_streams
                .get(mr)
                .ok_or(MigError::SessionInvariant("transient chunk cache missing"))?;
            let idx = next
                .get_mut(mr)
                .ok_or(MigError::SessionInvariant("granted stream not scheduled"))?;
            plaintexts.push(wire::chunk_plaintext(cache, *idx, cell));
            *idx += 1;
        }
        let (batch, seal_lanes) = {
            let shaper = self
                .shapers
                .get(&destination)
                .ok_or(MigError::SessionInvariant("link shaper vanished"))?;
            (shaper.batch(), transfer_cfg.seal_lanes)
        };
        let channel = self
            .channels_out
            .get_mut(&destination)
            .ok_or(MigError::ChannelMissing {
                peer: ChannelPeer::Destination,
            })?;
        self.telemetry.chunks_sealed += grants.len() as u64;
        // On a batch-negotiated link the whole burst (leads included —
        // all sealed to one uniform cell length) rides in TRANSFER_BATCH
        // containers, collapsing up to `batch` enclave transitions into
        // one; each container is allocated at its final size and the
        // cells are sealed straight into it (`wire::seal_batch`). A
        // batch of 1 keeps the legacy per-frame TRANSFER path
        // byte-identical.
        let frames: StreamFrames = if batch > 1 {
            let mut containers: StreamFrames =
                Vec::with_capacity(plaintexts.len().div_ceil(batch as usize));
            for cells in plaintexts.chunks(batch as usize) {
                containers.push((
                    FRAME_BATCH,
                    wire::seal_batch(channel, cells, cell, batch, seal_lanes),
                ));
            }
            self.telemetry.batches_sealed += containers.len() as u64;
            containers
        } else {
            channel
                .seal_many(&plaintexts, seal_lanes)
                .into_iter()
                .map(|ct| (FRAME_SINGLE, ct))
                .collect()
        };
        for (mr, n) in next {
            let stream = self
                .outgoing
                .get_mut(&mr)
                .and_then(|mig| mig.fsm.sendable_stream_mut())
                .ok_or(MigError::SessionInvariant("granted stream not sendable"))?;
            stream.next_to_send = n;
        }
        Ok(frames)
    }

    /// Builds the announcement for a fresh stream of `mr` (delta against
    /// the cached base when profitable, full otherwise), drives the
    /// sender FSM into `Streaming`, and returns the unsealed start
    /// message.
    fn announce_stream(
        &mut self,
        env: &mut EnclaveEnv<'_>,
        mr: MrEnclave,
        chunk_size: u32,
    ) -> Result<MeToMe, MigError> {
        let transfer_cfg = self.config()?.transfer;
        let cached = self
            .cache
            .get(&mr)
            .map(|c| (c.generation, Arc::clone(&c.state)));
        if cached.is_some() {
            self.cache.touch(&mr);
        }
        let mut nonce: TransferNonce = [0; 16];
        env.random_bytes(&mut nonce);
        let mig = self
            .outgoing
            .get_mut(&mr)
            .ok_or(MigError::Protocol("no retained migration data"))?;
        let generation = cached.as_ref().map_or(0, |(g, _)| g + 1);
        // When a previous generation of this enclave's state is cached (a
        // repeat migration), diff against it and ship only the dirty
        // pages — unless the delta exceeds the provisioned fraction of
        // the full state, in which case the full stream is cheaper than
        // a delta that rewrites most pages anyway.
        let delta = cached.and_then(|(base_generation, base_state)| {
            let digests = PageDigests::compute(&base_state, delta::PAGE_SIZE);
            let (manifest, payload) =
                delta::diff(&digests, base_generation, generation, &mig.state);
            let within_budget = manifest.payload_len().saturating_mul(100)
                <= (mig.state.len() as u64)
                    .saturating_mul(u64::from(transfer_cfg.max_delta_percent));
            within_budget.then_some((manifest, payload))
        });
        let (stream, delta_base, start_msg) = match delta {
            Some((manifest, payload)) => {
                let stream =
                    ChunkStream::with_lanes(nonce, chunk_size, payload, transfer_cfg.seal_lanes);
                let delta_base = manifest.base_generation;
                let start = MeToMe::DeltaStart {
                    mr_enclave: mr,
                    nonce,
                    chunk_size,
                    payload_digest: stream.digest(),
                    manifest: manifest.clone(),
                    data: mig.data.clone(),
                };
                self.out_manifests.insert(mr, manifest);
                (stream, Some(delta_base), start)
            }
            None => {
                let stream = ChunkStream::with_lanes(
                    nonce,
                    chunk_size,
                    Arc::clone(&mig.state),
                    transfer_cfg.seal_lanes,
                );
                let start = MeToMe::ChunkStart {
                    mr_enclave: mr,
                    nonce,
                    generation,
                    total_len: stream.total_len(),
                    chunk_size,
                    state_digest: stream.digest(),
                    data: mig.data.clone(),
                };
                (stream, None, start)
            }
        };
        let mig = self
            .outgoing
            .get_mut(&mr)
            .ok_or(MigError::SessionInvariant("retained migration vanished"))?;
        mig.fsm.dispatch_announce(StreamProgress::new(
            nonce,
            chunk_size,
            stream.total_len(),
            generation,
            delta_base,
        ))?;
        self.out_streams.insert(mr, stream);
        self.telemetry.announcements += 1;
        Ok(start_msg)
    }

    /// Sends or queues outgoing data for `destination`.
    ///
    /// With an open channel, every unsent migration towards the
    /// destination dispatches **concurrently** (up to
    /// `TransferConfig::max_streams`), multiplexed on the shared
    /// attested channel: streams that predate a crash/reconnect send a
    /// [`MeToMe::ResumeRequest`] renegotiating their per-nonce resume
    /// point, fresh large states announce a `ChunkStart`/`DeltaStart`
    /// and get their first chunks from the deficit-round-robin share of
    /// the link window, and small states ride the paper's single-shot
    /// [`MeToMe::Transfer`] when the link is quiet (on a busy link a
    /// small frame sealed behind in-flight cells would overtake them,
    /// so non-empty small states join the multiplex as single-chunk
    /// streams instead). Migrations beyond the stream cap stay queued
    /// and drain as streams complete.
    pub(super) fn dispatch_outgoing(
        &mut self,
        env: &mut EnclaveEnv<'_>,
        destination: MachineId,
    ) -> Result<MeAction, MigError> {
        if !self.channels_out.contains_key(&destination) {
            if self.ra_out_pending.contains_key(&destination) {
                // Handshake already in flight; data stays queued.
                return Ok(MeAction::None);
            }
            let (session, hello) = crate::remote_attest::RaInitiator::start(env)?;
            self.ra_out_pending.insert(destination, session);
            return Ok(MeAction::ConnectRemote {
                destination,
                hello: hello.to_bytes(),
            });
        }

        let transfer_cfg = self.config()?.transfer;
        let active = self.active_stream_count(destination);
        let unconfirmed_singleshot = self
            .outgoing
            .values()
            .any(|mig| mig.destination == destination && mig.fsm.awaiting_receipt());
        // Nothing this ME previously put on the wire towards the
        // destination can still be in flight.
        let quiet = active == 0 && !unconfirmed_singleshot;

        let mut unsent: Vec<MrEnclave> = self
            .outgoing
            .iter()
            .filter(|(_, mig)| mig.destination == destination && !mig.fsm.is_sent())
            .map(|(mr, _)| *mr)
            .collect();
        unsent.sort_by_key(|mr| mr.0);
        if unsent.is_empty() {
            return Ok(MeAction::None);
        }

        let mut slots = transfer_cfg.max_streams.saturating_sub(active);
        let fresh_count = unsent
            .iter()
            .filter_map(|mr| self.outgoing.get(mr))
            .filter(|mig| mig.fsm.stream().is_none())
            .count();
        // Decided up front, not while partitioning: a ResumeRequest is
        // smaller than a non-empty Transfer frame, so the two must never
        // share a batch regardless of MRENCLAVE sort order (the smaller
        // frame sealed second would overtake on the size-ordered
        // network).
        let batch_resumes = unsent.len() != fresh_count;
        let mut singleshots: Vec<MrEnclave> = Vec::new();
        let mut resumes: Vec<MrEnclave> = Vec::new();
        let mut announces: Vec<MrEnclave> = Vec::new();
        for mr in unsent {
            let mig = self
                .outgoing
                .get(&mr)
                .ok_or(MigError::SessionInvariant("unsent migration vanished"))?;
            if mig.fsm.stream().is_some() {
                if slots > 0 {
                    resumes.push(mr);
                    slots -= 1;
                }
            } else if mig.state.is_empty() {
                // No bulk state: must ride the single-shot message (a
                // zero-length payload cannot chunk). Safe only on a
                // quiet link; otherwise it waits for the streams to
                // drain (dispatch re-runs on every completion).
                if quiet {
                    singleshots.push(mr);
                }
            } else if mig.state.len() <= transfer_cfg.stream_threshold as usize
                && quiet
                && fresh_count == 1
                && !batch_resumes
            {
                // Small-state fast path: the paper's single-shot
                // transfer, kept for the common sole-migration case.
                singleshots.push(mr);
            } else if slots > 0 && !unconfirmed_singleshot {
                // A non-empty single-shot Transfer still in flight is
                // *larger* than cell-padded chunk frames; announcing a
                // stream now would let its frames overtake the Transfer
                // on the size-ordered network and desync the channel.
                // Stay queued until the Stored/Delivered confirmation
                // re-runs dispatch (empty Transfers are smaller than
                // every stream frame and need no such gate).
                announces.push(mr);
                slots -= 1;
            }
        }

        // Seal order = arrival order on the size-ordered network:
        // single-shot transfers (empty ones are the smallest frames),
        // then resume requests, then cell-padded announcements + chunks.
        let mut frames: StreamFrames = Vec::new();
        for mr in singleshots {
            let mig = self
                .outgoing
                .get_mut(&mr)
                .ok_or(MigError::SessionInvariant("queued migration vanished"))?;
            mig.fsm.dispatch_single_shot()?;
            self.telemetry.singleshot_transfers += 1;
            let msg = MeToMe::Transfer {
                mr_enclave: mr,
                data: mig.data.clone(),
                state: mig.state.to_vec(),
            };
            let channel =
                self.channels_out
                    .get_mut(&destination)
                    .ok_or(MigError::ChannelMissing {
                        peer: ChannelPeer::Destination,
                    })?;
            frames.push((FRAME_SINGLE, channel.seal(&msg.to_bytes())));
        }
        for mr in resumes {
            let mig = self
                .outgoing
                .get_mut(&mr)
                .ok_or(MigError::SessionInvariant("queued migration vanished"))?;
            let nonce = mig.fsm.dispatch_resume()?;
            self.telemetry.resume_requests += 1;
            let msg = MeToMe::ResumeRequest {
                mr_enclave: mr,
                nonce,
            };
            let channel =
                self.channels_out
                    .get_mut(&destination)
                    .ok_or(MigError::ChannelMissing {
                        peer: ChannelPeer::Destination,
                    })?;
            frames.push((FRAME_SINGLE, channel.seal(&msg.to_bytes())));
        }
        if !announces.is_empty() {
            let chunk_size = self
                .shapers
                .entry(destination)
                .or_insert_with(|| LinkShaper::new(&transfer_cfg))
                .adaptive()
                .chunk_size();
            let mut leads = Vec::with_capacity(announces.len());
            let mut lead_cost = 0u32;
            for mr in announces {
                leads.push(self.announce_stream(env, mr, chunk_size)?);
                let stream = self
                    .outgoing
                    .get(&mr)
                    .and_then(|mig| mig.fsm.stream())
                    .ok_or(MigError::SessionInvariant(
                        "announced stream has no progress",
                    ))?;
                lead_cost = lead_cost.max(stream.frame_cost());
            }
            frames.extend(self.pump_streams(destination, leads, lead_cost)?);
        }

        // A lone single-cell frame rides the scalar SendRemote path; a
        // lone batch container must still go through StreamRemote so the
        // host delivers it via TRANSFER_BATCH.
        Ok(
            match (frames.len(), frames.first().map(|(kind, _)| *kind)) {
                (0, _) => MeAction::None,
                (1, Some(FRAME_SINGLE)) => MeAction::SendRemote {
                    destination,
                    transfer: frames.remove(0).1,
                },
                _ => MeAction::StreamRemote {
                    destination,
                    frames,
                },
            },
        )
    }

    /// Recomputes the delta payload of an outgoing delta stream from the
    /// cached base generation (deterministic: the same diff that was
    /// announced).
    fn delta_payload(&self, mr: MrEnclave) -> Result<(DeltaManifest, Vec<u8>), MigError> {
        let mig = self
            .outgoing
            .get(&mr)
            .ok_or(MigError::Protocol("no retained migration data"))?;
        let stream = mig
            .fsm
            .stream()
            .ok_or(MigError::Protocol("no stream for migration"))?;
        let base_generation = stream
            .delta_base
            .ok_or(MigError::Protocol("stream is not a delta"))?;
        let cached = self
            .cache
            .get(&mr)
            .filter(|c| c.generation == base_generation)
            .ok_or(MigError::BaseEvicted)?;
        let digests = PageDigests::compute(&cached.state, delta::PAGE_SIZE);
        let (manifest, payload) =
            delta::diff(&digests, base_generation, stream.generation, &mig.state);
        if payload.len() as u64 != stream.payload_len {
            return Err(MigError::Protocol(
                "delta payload drifted from announcement",
            ));
        }
        Ok((manifest, payload))
    }

    /// Rebuilds the transient chunk cache for `mr` after a restore.
    fn ensure_out_stream(&mut self, mr: MrEnclave) -> Result<(), MigError> {
        if self.out_streams.contains_key(&mr) {
            return Ok(());
        }
        let seal_lanes = self.config()?.transfer.seal_lanes;
        let mig = self
            .outgoing
            .get(&mr)
            .ok_or(MigError::Protocol("no retained migration data"))?;
        let stream = mig
            .fsm
            .stream()
            .ok_or(MigError::Protocol("no stream for migration"))?;
        let (nonce, chunk_size) = (stream.nonce, stream.chunk_size);
        let payload: Arc<[u8]> = if stream.delta_base.is_some() {
            let (manifest, payload) = self.delta_payload(mr)?;
            self.out_manifests.insert(mr, manifest);
            payload.into()
        } else {
            Arc::clone(&mig.state)
        };
        self.out_streams.insert(
            mr,
            ChunkStream::with_lanes(nonce, chunk_size, payload, seal_lanes),
        );
        Ok(())
    }

    /// Rebuilds the announcement frame (`ChunkStart` / `DeltaStart`) of
    /// the retained stream for `mr` — used when a resume renegotiation
    /// rewinds to chunk 0.
    fn rebuild_start_msg(&self, mr: MrEnclave) -> Result<MeToMe, MigError> {
        let mig = self
            .outgoing
            .get(&mr)
            .ok_or(MigError::Protocol("no retained migration data"))?;
        let stream = mig
            .fsm
            .stream()
            .ok_or(MigError::Protocol("no stream for migration"))?;
        let cache = self
            .out_streams
            .get(&mr)
            .ok_or(MigError::Protocol("chunk cache not rebuilt"))?;
        Ok(match stream.delta_base {
            None => MeToMe::ChunkStart {
                mr_enclave: mr,
                nonce: stream.nonce,
                generation: stream.generation,
                total_len: cache.total_len(),
                chunk_size: cache.chunk_size(),
                state_digest: cache.digest(),
                data: mig.data.clone(),
            },
            Some(_) => MeToMe::DeltaStart {
                mr_enclave: mr,
                nonce: stream.nonce,
                chunk_size: cache.chunk_size(),
                payload_digest: cache.digest(),
                manifest: self
                    .out_manifests
                    .get(&mr)
                    .cloned()
                    .map_or_else(|| self.delta_payload(mr).map(|(m, _)| m), Ok)?,
                data: mig.data.clone(),
            },
        })
    }

    pub(super) fn op_retry(
        &mut self,
        env: &mut EnclaveEnv<'_>,
        input: &[u8],
    ) -> Result<Vec<u8>, MigError> {
        let mut r = WireReader::new(input);
        let mr = MrEnclave(r.array()?);
        let destination = MachineId(r.u64()?);
        r.finish()?;

        let outgoing = self
            .outgoing
            .get_mut(&mr)
            .ok_or(MigError::Protocol("no retained migration data"))?;
        outgoing.destination = destination;
        // The failure being retried may be a dead peer channel (e.g. the
        // destination's management VM restarted); drop any cached state
        // towards the destination so a fresh mutual attestation runs.
        // Every migration multiplexed on that channel lost its in-flight
        // frames with it, so rewind them all to Idle: the reconnect
        // renegotiates each stream's resume point per nonce.
        self.channels_out.remove(&destination);
        self.ra_out_pending.remove(&destination);
        if let Some(shaper) = self.shapers.get_mut(&destination) {
            shaper.reset_framing();
        }
        for mig in self
            .outgoing
            .values_mut()
            .filter(|mig| mig.destination == destination)
        {
            mig.fsm.reset_channel();
        }
        let action = self.dispatch_outgoing(env, destination)?;
        Ok(action.to_bytes())
    }

    /// Accepts complete incoming migration data: parks it, forwards to a
    /// matching attested enclave if present, or tells the source it is
    /// stored. Returns the encoded `TRANSFER` output. `trace` is the
    /// stream's public trace id (`None` for single-shot transfers,
    /// which have no nonce).
    fn accept_incoming(
        &mut self,
        source: MachineId,
        mr_enclave: MrEnclave,
        data: MigrationData,
        state: Arc<[u8]>,
        final_ack: Option<Vec<u8>>,
        trace: Option<[u8; 8]>,
    ) -> Result<Vec<u8>, MigError> {
        // Park the data regardless; it is only dropped once the
        // destination library confirms with DONE (crash safety). The
        // Arc is shared with the caller and the generation cache.
        self.pending_incoming
            .insert(mr_enclave, (data.clone(), Arc::clone(&state), source));
        if let Some(local) = self.local_sessions.get_mut(&mr_enclave) {
            let forward = local.seal(&MeToLib::encode_incoming_migration(&data, &state));
            self.awaiting_done.insert(mr_enclave, source);
            let mut w = WireWriter::new();
            w.u8(1); // forwarded
            w.array(&mr_enclave.0);
            write_opt(&mut w, trace.as_ref().map(<[u8; 8]>::as_slice));
            write_opt(&mut w, Some(&forward));
            write_opt(&mut w, final_ack.as_deref());
            Ok(w.finish())
        } else {
            // No matching enclave yet; tell the source the data is
            // stored (it keeps its copy). A chunked transfer's final
            // cumulative ack already means "stored"; reuse it.
            let ack = match final_ack {
                Some(ack) => ack,
                None => {
                    let channel =
                        self.channels_in
                            .get_mut(&source)
                            .ok_or(MigError::ChannelMissing {
                                peer: ChannelPeer::Source,
                            })?;
                    channel.seal(&MeToMe::Stored { mr_enclave }.to_bytes())
                }
            };
            let mut w = WireWriter::new();
            w.u8(2); // stored
            w.array(&mr_enclave.0);
            write_opt(&mut w, trace.as_ref().map(<[u8; 8]>::as_slice));
            write_opt(&mut w, None);
            write_opt(&mut w, Some(&ack));
            Ok(w.finish())
        }
    }

    /// Encodes the common "stream progress" TRANSFER output: kind 3
    /// (or kind 4 for a delta-fallback NACK), the enclave measurement,
    /// the stream's public trace id, no forward, and an optional reply
    /// frame for the source.
    fn stream_progress_kind(
        kind: u8,
        mr_enclave: MrEnclave,
        trace: [u8; 8],
        reply: Option<&[u8]>,
    ) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.u8(kind);
        w.array(&mr_enclave.0);
        write_opt(&mut w, Some(&trace));
        write_opt(&mut w, None);
        write_opt(&mut w, reply);
        w.finish()
    }

    /// Kind-3 stream progress (see [`Self::stream_progress_kind`]).
    fn stream_progress_output(
        mr_enclave: MrEnclave,
        trace: [u8; 8],
        reply: Option<&[u8]>,
    ) -> Vec<u8> {
        Self::stream_progress_kind(3, mr_enclave, trace, reply)
    }

    pub(super) fn op_transfer(
        &mut self,
        env: &mut EnclaveEnv<'_>,
        input: &[u8],
    ) -> Result<Vec<u8>, MigError> {
        let mut r = WireReader::new(input);
        let source = MachineId(r.u64()?);
        let ciphertext = r.bytes_vec()?;
        r.finish()?;

        let channel = self
            .channels_in
            .get_mut(&source)
            .ok_or(MigError::ChannelMissing {
                peer: ChannelPeer::Source,
            })?;
        let plaintext = channel.open(&ciphertext)?;
        let speculative = self.config()?.transfer.speculative_restore;
        match MeToMe::from_bytes(&plaintext)? {
            MeToMe::Transfer {
                mr_enclave,
                data,
                state,
            } => self.accept_incoming(source, mr_enclave, data, state.into(), None, None),
            MeToMe::ChunkStart {
                mr_enclave,
                nonce,
                generation,
                total_len,
                chunk_size,
                state_digest,
                data,
            } => {
                // A repeated announcement (stream restarted from 0)
                // replaces any stale partial state for this nonce.
                let fsm = ReceiverFsm::start_full(
                    source,
                    mr_enclave,
                    data,
                    nonce,
                    generation,
                    total_len,
                    chunk_size,
                    state_digest,
                    speculative,
                )?;
                self.inbound.insert(nonce, fsm);
                Ok(Self::stream_progress_output(
                    mr_enclave,
                    trace_id(&nonce),
                    None,
                ))
            }
            MeToMe::DeltaStart {
                mr_enclave,
                nonce,
                chunk_size,
                payload_digest,
                manifest,
                data,
            } => {
                // Accept the delta stream even when we do not hold its
                // base generation: the payload is small by construction
                // (the source capped it at a fraction of the full state)
                // and NACKing *after* the last chunk keeps the channel
                // strictly FIFO — a NACK racing in-flight chunks would
                // let the restarted announcement overtake them on the
                // size-ordered network and desync the channel sequence.
                // With speculative restore on and the base retained, the
                // base is content-verified and staged *now*, overlapping
                // the restore work with the arriving chunks. The lookup
                // hashes the retained base, so it is skipped entirely in
                // unseal-after-complete mode (which would discard it).
                let base = speculative
                    .then(|| {
                        self.cache
                            .delta_base(&mr_enclave, &manifest)
                            .map(|c| Arc::clone(&c.state))
                    })
                    .flatten();
                let fsm = ReceiverFsm::start_delta(
                    source,
                    mr_enclave,
                    data,
                    nonce,
                    chunk_size,
                    payload_digest,
                    manifest,
                    base.as_deref(),
                    speculative,
                )?;
                if fsm.is_staged() {
                    self.cache.touch(&mr_enclave);
                }
                self.inbound.insert(nonce, fsm);
                Ok(Self::stream_progress_output(
                    mr_enclave,
                    trace_id(&nonce),
                    None,
                ))
            }
            MeToMe::Chunk {
                nonce,
                idx,
                payload,
                mac,
                pad: _,
            } => {
                let fsm = self.inbound.get_mut(&nonce).ok_or(MigError::StaleNonce)?;
                if fsm.source() != source {
                    return Err(MigError::Protocol("chunk from wrong source"));
                }
                if let Err(e) = fsm.on_chunk(idx, &payload, &mac) {
                    // An out-of-order index is a loss artifact of the
                    // network: keep the verified prefix so a resume
                    // renegotiation continues from it. Anything else —
                    // a chain-MAC mismatch (cross-nonce splice, payload
                    // tamper) or a wrong length — is evidence of
                    // manipulation below the channel: quarantine *this*
                    // stream only (drop its partial state; a resume
                    // restarts it from chunk 0) and leave every other
                    // multiplexed stream untouched. The quarantine is
                    // appended to the telemetry ledger so the host can
                    // timestamp the edge via `TELEMETRY` after the
                    // failed ECALL.
                    if !matches!(e, MigError::Transfer("chunk index out of order")) {
                        self.inbound.remove(&nonce);
                        self.telemetry.quarantines += 1;
                        self.telemetry.quarantined.push(trace_id(&nonce));
                    }
                    return Err(e);
                }
                env.attribute_transition(trace_id(&nonce));
                self.telemetry.chunks_received += 1;
                let upto = fsm.next_idx();
                let mr_enclave = fsm.mr_enclave();
                if !fsm.is_complete() {
                    let ack = self
                        .channels_in
                        .get_mut(&source)
                        .ok_or(MigError::ChannelMissing {
                            peer: ChannelPeer::Source,
                        })?
                        .seal(&MeToMe::ChunkAck { nonce, upto }.to_bytes());
                    return Ok(Self::stream_progress_output(
                        mr_enclave,
                        trace_id(&nonce),
                        Some(&ack),
                    ));
                }
                let fsm = self
                    .inbound
                    .remove(&nonce)
                    .ok_or(MigError::SessionInvariant("inbound stream vanished"))?;
                let generation = fsm.generation();
                // A deferred delta is applied onto the retained base
                // generation here (digest-verified before release); the
                // base is content-addressed — generation number AND
                // whole-state digest must match our retained copy
                // (generations renumber after a fallback reset, so the
                // number alone is not identity). A staged delta captured
                // its base at announce time; a full payload *is* the
                // state. A delta whose base we do not hold is NACKed
                // *in place of* the final ack — the source restarts as
                // a full stream with no frames left in flight to race
                // the restarted announcement.
                let deferred_base = fsm.needs_base().and_then(|manifest| {
                    self.cache
                        .delta_base(&mr_enclave, manifest)
                        .map(|c| Arc::clone(&c.state))
                });
                let used_deferred_base = deferred_base.is_some();
                match fsm.release(deferred_base.as_deref())? {
                    ReceiverRelease::Released { data, state } => {
                        if used_deferred_base {
                            self.cache.touch(&mr_enclave);
                        }
                        // Both ends retain the installed generation as
                        // the next repeat migration's delta base
                        // (LRU-bounded; an evicted base later NACKs back
                        // to a full stream).
                        self.cache_insert(mr_enclave, generation, Arc::clone(&state));
                        let ack = self
                            .channels_in
                            .get_mut(&source)
                            .ok_or(MigError::ChannelMissing {
                                peer: ChannelPeer::Source,
                            })?
                            .seal(&MeToMe::ChunkAck { nonce, upto }.to_bytes());
                        self.accept_incoming(
                            source,
                            mr_enclave,
                            data,
                            state,
                            Some(ack),
                            Some(trace_id(&nonce)),
                        )
                    }
                    ReceiverRelease::BaseMissing => {
                        self.telemetry.delta_fallbacks += 1;
                        let nack = self
                            .channels_in
                            .get_mut(&source)
                            .ok_or(MigError::ChannelMissing {
                                peer: ChannelPeer::Source,
                            })?
                            .seal(&MeToMe::DeltaNack { mr_enclave, nonce }.to_bytes());
                        // Kind 4: the host records a delta-fallback edge.
                        Ok(Self::stream_progress_kind(
                            4,
                            mr_enclave,
                            trace_id(&nonce),
                            Some(&nack),
                        ))
                    }
                }
            }
            MeToMe::ResumeRequest { mr_enclave, nonce } => {
                // Three cases: mid-stream partial (resume from next
                // index), already fully received (Stored — the normal
                // retention flow finishes delivery), or nothing known
                // (restart from 0).
                let reply = if let Some(fsm) = self.inbound.get(&nonce) {
                    MeToMe::Resume {
                        nonce,
                        from_idx: fsm.next_idx(),
                    }
                } else if self.pending_incoming.contains_key(&mr_enclave) {
                    MeToMe::Stored { mr_enclave }
                } else {
                    MeToMe::Resume { nonce, from_idx: 0 }
                };
                let ack = self
                    .channels_in
                    .get_mut(&source)
                    .ok_or(MigError::ChannelMissing {
                        peer: ChannelPeer::Source,
                    })?
                    .seal(&reply.to_bytes());
                Ok(Self::stream_progress_output(
                    mr_enclave,
                    trace_id(&nonce),
                    Some(&ack),
                ))
            }
            _ => Err(MigError::Protocol("unexpected ME-to-ME message")),
        }
    }

    /// `TRANSFER_BATCH`: one enclave transition verifying and staging a
    /// whole container of sealed stream cells (up to the link's
    /// negotiated batch size), acknowledged with **one** combined
    /// cumulative `ChunkAck` per touched stream instead of one per
    /// chunk — the hot-call batching that drops enclave transitions per
    /// migration from ~2×chunks towards ~2×⌈chunks/batch⌉.
    ///
    /// The container framing is untrusted and validated before any AEAD
    /// work ([`wire::unpack_batch`]); the cells inside carry the
    /// channel's per-cell sequence numbers, so a spliced, replayed, or
    /// reordered cell fails authentication exactly as on the per-frame
    /// path. On an authentication failure mid-container the verified
    /// prefix is kept ([`SecureChannel::open_many`]), acked, and the
    /// nonzero status byte tells the host to sync quarantine edges.
    ///
    /// Output: `u32` record count, that many length-prefixed records in
    /// the `TRANSFER` output format, then a `u8` status (0 = whole
    /// container processed cleanly).
    pub(super) fn op_transfer_batch(
        &mut self,
        env: &mut EnclaveEnv<'_>,
        input: &[u8],
    ) -> Result<Vec<u8>, MigError> {
        let mut r = WireReader::new(input);
        let source = MachineId(r.u64()?);
        let container = r.bytes_vec()?;
        r.finish()?;

        let transfer_cfg = self.config()?.transfer;
        let speculative = transfer_cfg.speculative_restore;
        let cells = wire::unpack_batch(&container)?;
        let channel = self
            .channels_in
            .get_mut(&source)
            .ok_or(MigError::ChannelMissing {
                peer: ChannelPeer::Source,
            })?;
        let (plaintexts, all_ok) = channel.open_many(&cells, transfer_cfg.seal_lanes);
        self.telemetry.batches_received += 1;

        let mut results: Vec<Vec<u8>> = Vec::new();
        let mut status: u8 = u8::from(!all_ok);
        // Streams touched by data chunks in this container, in first-touch
        // order; each gets exactly one transition attribution and (when
        // still incomplete at the end) one combined cumulative ack.
        let mut touched: Vec<TransferNonce> = Vec::new();
        'cells: for plaintext in &plaintexts {
            let msg = match MeToMe::from_bytes(plaintext) {
                Ok(msg) => msg,
                Err(_) => {
                    status = 1;
                    break 'cells;
                }
            };
            match msg {
                MeToMe::ChunkStart {
                    mr_enclave,
                    nonce,
                    generation,
                    total_len,
                    chunk_size,
                    state_digest,
                    data,
                } => {
                    let fsm = ReceiverFsm::start_full(
                        source,
                        mr_enclave,
                        data,
                        nonce,
                        generation,
                        total_len,
                        chunk_size,
                        state_digest,
                        speculative,
                    )?;
                    self.inbound.insert(nonce, fsm);
                    results.push(Self::stream_progress_output(
                        mr_enclave,
                        trace_id(&nonce),
                        None,
                    ));
                }
                MeToMe::DeltaStart {
                    mr_enclave,
                    nonce,
                    chunk_size,
                    payload_digest,
                    manifest,
                    data,
                } => {
                    let base = speculative
                        .then(|| {
                            self.cache
                                .delta_base(&mr_enclave, &manifest)
                                .map(|c| Arc::clone(&c.state))
                        })
                        .flatten();
                    let fsm = ReceiverFsm::start_delta(
                        source,
                        mr_enclave,
                        data,
                        nonce,
                        chunk_size,
                        payload_digest,
                        manifest,
                        base.as_deref(),
                        speculative,
                    )?;
                    if fsm.is_staged() {
                        self.cache.touch(&mr_enclave);
                    }
                    self.inbound.insert(nonce, fsm);
                    results.push(Self::stream_progress_output(
                        mr_enclave,
                        trace_id(&nonce),
                        None,
                    ));
                }
                MeToMe::Chunk {
                    nonce,
                    idx,
                    payload,
                    mac,
                    pad: _,
                } => {
                    // A cell for a nonce quarantined earlier in this same
                    // container is expected debris — skip it without
                    // disturbing the other multiplexed streams.
                    let Some(fsm) = self.inbound.get_mut(&nonce) else {
                        continue 'cells;
                    };
                    if fsm.source() != source {
                        status = 1;
                        break 'cells;
                    }
                    if let Err(e) = fsm.on_chunk(idx, &payload, &mac) {
                        // Same policy as the per-frame path: keep the
                        // verified prefix on an out-of-order index,
                        // quarantine this stream on tamper evidence —
                        // but keep processing the container's other
                        // streams either way.
                        if !matches!(e, MigError::Transfer("chunk index out of order")) {
                            self.inbound.remove(&nonce);
                            self.telemetry.quarantines += 1;
                            self.telemetry.quarantined.push(trace_id(&nonce));
                            status = 1;
                        }
                        continue 'cells;
                    }
                    if !touched.contains(&nonce) {
                        touched.push(nonce);
                        env.attribute_transition(trace_id(&nonce));
                    }
                    self.telemetry.chunks_received += 1;
                    if !fsm.is_complete() {
                        continue 'cells;
                    }
                    let upto = fsm.next_idx();
                    let mr_enclave = fsm.mr_enclave();
                    let fsm = self
                        .inbound
                        .remove(&nonce)
                        .ok_or(MigError::SessionInvariant("inbound stream vanished"))?;
                    let generation = fsm.generation();
                    let deferred_base = fsm.needs_base().and_then(|manifest| {
                        self.cache
                            .delta_base(&mr_enclave, manifest)
                            .map(|c| Arc::clone(&c.state))
                    });
                    let used_deferred_base = deferred_base.is_some();
                    match fsm.release(deferred_base.as_deref())? {
                        ReceiverRelease::Released { data, state } => {
                            if used_deferred_base {
                                self.cache.touch(&mr_enclave);
                            }
                            self.cache_insert(mr_enclave, generation, Arc::clone(&state));
                            // The final cumulative ack is sealed before
                            // the release record so it doubles as the
                            // stream's combined batch ack.
                            let ack = self
                                .channels_in
                                .get_mut(&source)
                                .ok_or(MigError::ChannelMissing {
                                    peer: ChannelPeer::Source,
                                })?
                                .seal(&MeToMe::ChunkAck { nonce, upto }.to_bytes());
                            results.push(self.accept_incoming(
                                source,
                                mr_enclave,
                                data,
                                state,
                                Some(ack),
                                Some(trace_id(&nonce)),
                            )?);
                        }
                        ReceiverRelease::BaseMissing => {
                            self.telemetry.delta_fallbacks += 1;
                            let nack = self
                                .channels_in
                                .get_mut(&source)
                                .ok_or(MigError::ChannelMissing {
                                    peer: ChannelPeer::Source,
                                })?
                                .seal(&MeToMe::DeltaNack { mr_enclave, nonce }.to_bytes());
                            results.push(Self::stream_progress_kind(
                                4,
                                mr_enclave,
                                trace_id(&nonce),
                                Some(&nack),
                            ));
                        }
                    }
                }
                // Single-shot transfers and resume requests never ride
                // inside a batch container (dispatch gates keep them on
                // the per-frame path).
                _ => {
                    status = 1;
                    break 'cells;
                }
            }
        }

        // One combined cumulative ack per touched, still-incomplete
        // stream — this is where ~batch acks collapse into one.
        for nonce in touched {
            let Some(fsm) = self.inbound.get(&nonce) else {
                continue;
            };
            let upto = fsm.next_idx();
            let mr_enclave = fsm.mr_enclave();
            let ack = self
                .channels_in
                .get_mut(&source)
                .ok_or(MigError::ChannelMissing {
                    peer: ChannelPeer::Source,
                })?
                .seal(&MeToMe::ChunkAck { nonce, upto }.to_bytes());
            results.push(Self::stream_progress_output(
                mr_enclave,
                trace_id(&nonce),
                Some(&ack),
            ));
        }

        let mut w = WireWriter::new();
        w.u32(results.len() as u32);
        for record in &results {
            w.bytes(record);
        }
        w.u8(status);
        Ok(w.finish())
    }

    /// Encodes the `ACK` ECALL output: kind, MRENCLAVE, the acked
    /// stream's public trace id (when the ack names a nonce), optional
    /// completion ciphertext for the local library, and follow-on stream
    /// frames to send back to the destination.
    fn ack_output(
        kind: u8,
        mr: MrEnclave,
        trace: Option<[u8; 8]>,
        complete: Option<&[u8]>,
        frames: &[(u8, Vec<u8>)],
    ) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.u8(kind);
        w.array(&mr.0);
        write_opt(&mut w, trace.as_ref().map(<[u8; 8]>::as_slice));
        write_opt(&mut w, complete);
        w.u32(frames.len() as u32);
        for (frame_kind, frame) in frames {
            w.u8(*frame_kind);
            w.bytes(frame);
        }
        w.finish()
    }

    /// Looks up the outgoing migration owning the sent stream `nonce`.
    fn outgoing_by_nonce(&self, nonce: &TransferNonce) -> Result<MrEnclave, MigError> {
        self.outgoing
            .iter()
            .find(|(_, mig)| mig.fsm.sent_stream().is_some_and(|s| s.nonce == *nonce))
            .map(|(mr, _)| *mr)
            .ok_or(MigError::StaleNonce)
    }

    /// Advances the outgoing stream `nonce` after a cumulative ack
    /// (`resume: false`) or a negotiated resume point (`resume: true`;
    /// `upto == 0` restarts the stream, fresh `ChunkStart` included),
    /// then refills the freed shared-window budget **across every
    /// stream** towards the destination (deficit round-robin), returning
    /// the owning MRENCLAVE and the frames to send.
    fn advance_stream(
        &mut self,
        destination: MachineId,
        nonce: TransferNonce,
        upto: u32,
        resume: bool,
    ) -> Result<(MrEnclave, StreamFrames), MigError> {
        let mr = self.outgoing_by_nonce(&nonce)?;
        // Per-nonce binding: an ack relayed from a different peer than
        // the stream's destination is a cross-stream splice attempt —
        // reject it without touching any stream's state.
        let ack_dest = self
            .outgoing
            .get(&mr)
            .ok_or(MigError::SessionInvariant("acked migration vanished"))?
            .destination;
        if ack_dest != destination {
            return Err(MigError::Protocol("ack from wrong destination"));
        }
        self.ensure_out_stream(mr)?;
        // Feed the adaptive controller: a cumulative ack is the healthy
        // signal that grows the window; a resume renegotiation is the
        // disruption that shrinks chunk size for *future* streams (the
        // current stream keeps its announced geometry).
        let transfer_cfg = self.config()?.transfer;
        {
            let shaper = self
                .shapers
                .entry(destination)
                .or_insert_with(|| LinkShaper::new(&transfer_cfg));
            if resume {
                shaper.adaptive_mut().on_disruption();
            } else {
                shaper.adaptive_mut().on_clean_ack();
            }
        }
        let fsm = &mut self
            .outgoing
            .get_mut(&mr)
            .ok_or(MigError::SessionInvariant("retained migration vanished"))?
            .fsm;
        if resume {
            // Chunks past the renegotiated point were already sealed
            // once and will be sealed again: count the rewind as
            // retransmissions.
            let rewound = fsm
                .stream()
                .map_or(0, |s| u64::from(s.next_to_send.saturating_sub(upto)));
            fsm.on_resume_point(upto)?;
            self.telemetry.chunks_retransmitted += rewound;
        } else {
            fsm.on_ack(upto)?;
        }

        let (leads, lead_cost) = if resume && upto == 0 {
            // Rewind to the very beginning: re-announce the stream
            // (ChunkStart or DeltaStart, whichever it was).
            let cost = self
                .outgoing
                .get(&mr)
                .and_then(|mig| mig.fsm.stream())
                .ok_or(MigError::SessionInvariant("resumed stream has no progress"))?
                .frame_cost();
            (vec![self.rebuild_start_msg(mr)?], cost)
        } else {
            (Vec::new(), 0)
        };
        let frames = self.pump_streams(destination, leads, lead_cost)?;
        Ok((mr, frames))
    }

    /// Converts a [`MeAction`] produced by `dispatch_outgoing` into raw
    /// frames for `destination` (used where the output encoding carries
    /// frames instead of an action).
    fn action_frames(action: MeAction) -> StreamFrames {
        match action {
            MeAction::SendRemote { transfer, .. } => vec![(FRAME_SINGLE, transfer)],
            MeAction::StreamRemote { frames, .. } => frames,
            _ => Vec::new(),
        }
    }

    pub(super) fn op_ack(
        &mut self,
        env: &mut EnclaveEnv<'_>,
        input: &[u8],
    ) -> Result<Vec<u8>, MigError> {
        let mut r = WireReader::new(input);
        let destination = MachineId(r.u64()?);
        let ciphertext = r.bytes_vec()?;
        r.finish()?;

        let channel = self
            .channels_out
            .get_mut(&destination)
            .ok_or(MigError::ChannelMissing {
                peer: ChannelPeer::Destination,
            })?;
        let plaintext = channel.open(&ciphertext)?;
        match MeToMe::from_bytes(&plaintext)? {
            MeToMe::Delivered { mr_enclave } => {
                // Delivery binding: only the migration's *current*
                // destination may release the retained copy (Fig. 2) —
                // a stale confirmation from a previous destination must
                // not destroy the frozen source's only copy mid-stream
                // towards the new one.
                if self
                    .outgoing
                    .get(&mr_enclave)
                    .is_some_and(|mig| mig.destination != destination)
                {
                    return Err(MigError::Protocol(
                        "delivery confirmation from wrong destination",
                    ));
                }
                // Safe to delete the retained migration data (Fig. 2).
                self.outgoing.remove(&mr_enclave);
                self.out_streams.remove(&mr_enclave);
                self.out_manifests.remove(&mr_enclave);
                // Tell the (frozen) source library, if still attested.
                let complete = self
                    .local_sessions
                    .get_mut(&mr_enclave)
                    .map(|local| local.seal(&MeToLib::MigrationComplete.to_bytes()));
                // The channel is free again: dispatch the next queued
                // migration for this destination, if any.
                let next = Self::action_frames(self.dispatch_outgoing(env, destination)?);
                Ok(Self::ack_output(
                    1,
                    mr_enclave,
                    None,
                    complete.as_deref(),
                    &next,
                ))
            }
            MeToMe::Stored { mr_enclave } => {
                // Destination parked the data; retain ours until DONE —
                // but the stream slot (or single-shot confirmation) is
                // free for further queued migrations. Same binding as
                // Delivered: only the current destination's confirmation
                // may close the stream's accounting.
                let mut completed_stream = None;
                if let Some(mig) = self.outgoing.get_mut(&mr_enclave) {
                    if mig.destination != destination {
                        return Err(MigError::Protocol(
                            "storage confirmation from wrong destination",
                        ));
                    }
                    completed_stream = mig
                        .fsm
                        .on_stored()?
                        .map(|generation| (generation, Arc::clone(&mig.state)));
                }
                // The destination holds (and caches) the full streamed
                // generation: record it as the delta base exactly as the
                // final-ChunkAck path does, so a repeat migration after
                // a Stored-closed resume still ships a delta.
                if let Some((generation, state)) = completed_stream {
                    self.cache_insert(mr_enclave, generation, state);
                }
                let next = Self::action_frames(self.dispatch_outgoing(env, destination)?);
                Ok(Self::ack_output(2, mr_enclave, None, None, &next))
            }
            MeToMe::ChunkAck { nonce, upto } => {
                env.attribute_transition(trace_id(&nonce));
                let (mr, mut frames) = self.advance_stream(destination, nonce, upto, false)?;
                if upto
                    == self
                        .outgoing
                        .get(&mr)
                        .map_or(0, OutgoingMigration::n_chunks)
                {
                    // Final cumulative ack: the stream is fully at the
                    // destination (retained until Delivered). Record the
                    // shipped generation as the delta base for the next
                    // repeat migration, then let the freed stream slot
                    // start the next queued migration.
                    let completed = self.outgoing.get(&mr).and_then(|mig| {
                        mig.fsm
                            .stream()
                            .map(|s| (s.generation, Arc::clone(&mig.state)))
                    });
                    if let Some((generation, state)) = completed {
                        self.cache_insert(mr, generation, state);
                    }
                    frames.extend(Self::action_frames(
                        self.dispatch_outgoing(env, destination)?,
                    ));
                }
                Ok(Self::ack_output(
                    3,
                    mr,
                    Some(trace_id(&nonce)),
                    None,
                    &frames,
                ))
            }
            MeToMe::Resume { nonce, from_idx } => {
                // The destination told us where to pick the stream back
                // up after a crash (0 restarts, announcement included).
                let (mr, frames) = self.advance_stream(destination, nonce, from_idx, true)?;
                Ok(Self::ack_output(
                    3,
                    mr,
                    Some(trace_id(&nonce)),
                    None,
                    &frames,
                ))
            }
            MeToMe::DeltaNack { mr_enclave, nonce } => {
                // The destination does not hold our delta base: drop the
                // stale cache entry and the delta stream, then restart
                // the transfer as a full stream over the same channel.
                let mr = self.outgoing_by_nonce(&nonce)?;
                if mr != mr_enclave {
                    return Err(MigError::Protocol("delta nack for wrong enclave"));
                }
                self.cache.remove(&mr);
                self.out_streams.remove(&mr);
                self.out_manifests.remove(&mr);
                self.outgoing
                    .get_mut(&mr)
                    .ok_or(MigError::Protocol("no retained migration data"))?
                    .fsm
                    .on_delta_nack()?;
                self.telemetry.delta_fallbacks += 1;
                let frames = Self::action_frames(self.dispatch_outgoing(env, destination)?);
                // Kind 4: the host records a delta-fallback edge.
                Ok(Self::ack_output(
                    4,
                    mr,
                    Some(trace_id(&nonce)),
                    None,
                    &frames,
                ))
            }
            _ => Err(MigError::Protocol("unexpected message on ack path")),
        }
    }

    /// `ABORT` — discards staged **incoming** state for `mr`: the parked
    /// `pending_incoming` payload and every partial inbound stream
    /// targeting that measurement. Output is `0` (refused) when the data
    /// has already been handed to the destination library
    /// (`awaiting_done`) — at that point the library may have installed
    /// it, and discarding the ME's record could let a later retry
    /// double-release — otherwise `1` plus the number of staged items
    /// dropped. After a destination-ME crash `awaiting_done` is empty
    /// (it is deliberately not persisted), so a post-restart abort
    /// always discards.
    pub(super) fn op_abort(&mut self, input: &[u8]) -> Result<Vec<u8>, MigError> {
        let mut r = WireReader::new(input);
        let mr = MrEnclave(r.array()?);
        r.finish()?;
        let mut w = WireWriter::new();
        if self.awaiting_done.contains_key(&mr) {
            w.u8(0);
            return Ok(w.finish());
        }
        let mut discarded = 0u32;
        if self.pending_incoming.remove(&mr).is_some() {
            discarded += 1;
        }
        let stale: Vec<TransferNonce> = self
            .inbound
            .iter()
            .filter(|(_, fsm)| fsm.mr_enclave() == mr)
            .map(|(nonce, _)| *nonce)
            .collect();
        for nonce in stale {
            self.inbound.remove(&nonce);
            discarded += 1;
        }
        self.telemetry.aborts_incoming += 1;
        w.u8(1);
        w.u32(discarded);
        Ok(w.finish())
    }

    pub(super) fn op_stream_stat(&self, input: &[u8]) -> Result<Vec<u8>, MigError> {
        let mut r = WireReader::new(input);
        let mr = MrEnclave(r.array()?);
        r.finish()?;
        let mut w = WireWriter::new();
        match self.outgoing.get(&mr) {
            Some(mig) => match mig.fsm.stream() {
                Some(stream) => {
                    w.u8(1);
                    w.u32(stream.acked);
                    w.u32(mig.n_chunks());
                    w.u64(mig.state.len() as u64);
                    w.u64(stream.payload_len);
                    w.u8(u8::from(stream.delta_base.is_some()));
                    w.u32(stream.chunk_size);
                }
                None => {
                    w.u8(2); // retained, not streamed
                    w.u64(mig.state.len() as u64);
                }
            },
            None => {
                w.u8(0); // nothing retained
            }
        }
        Ok(w.finish())
    }

    pub(super) fn op_link_stat(&self, input: &[u8]) -> Result<Vec<u8>, MigError> {
        let mut r = WireReader::new(input);
        let destination = MachineId(r.u64()?);
        r.finish()?;
        let mut w = WireWriter::new();
        match self.shapers.get(&destination) {
            Some(shaper) => {
                w.u8(1);
                w.u32(shaper.adaptive().chunk_size());
                w.u32(shaper.adaptive().window());
            }
            None => {
                w.u8(0);
            }
        }
        // Per-stream state of the multiplexed link (diagnostics): every
        // announced stream towards the destination with its per-nonce
        // progress. The nonce itself stays inside the enclave — it keys
        // the chunk HMAC chain.
        let mut streams: Vec<(&MrEnclave, &SenderFsm, &StreamProgress)> = self
            .outgoing
            .iter()
            .filter(|(_, mig)| mig.destination == destination)
            .filter_map(|(mr, mig)| mig.fsm.sent_stream().map(|s| (mr, &mig.fsm, s)))
            .collect();
        streams.sort_by_key(|(mr, _, _)| mr.0);
        w.u32(streams.len() as u32);
        for (mr, fsm, stream) in streams {
            w.array(&mr.0);
            w.u32(stream.acked);
            w.u32(stream.n_chunks());
            w.u32(stream.next_to_send.saturating_sub(stream.acked));
            w.u8(u8::from(stream.delta_base.is_some()));
            w.u8(u8::from(fsm.is_awaiting_resume()));
        }
        w.u32(self.shapers.get(&destination).map_or(0, LinkShaper::cell));
        Ok(w.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::state::COUNTER_SLOTS;

    fn progress(n_chunks: u32) -> StreamProgress {
        StreamProgress::new([7; 16], 4096, u64::from(n_chunks) * 4096, 3, None)
    }

    fn data() -> MigrationData {
        MigrationData {
            counters_active: [false; COUNTER_SLOTS],
            counter_values: [0; COUNTER_SLOTS],
            msk: [7; 16],
        }
    }

    #[test]
    fn sender_single_shot_table() {
        let mut fsm = SenderFsm::Idle { stream: None };
        fsm.dispatch_single_shot().unwrap();
        assert_eq!(fsm.name(), "AwaitingReceipt");
        assert!(fsm.is_sent() && fsm.awaiting_receipt());
        // Events that do not apply leave the state untouched.
        assert!(matches!(
            fsm.dispatch_single_shot(),
            Err(MigError::InvalidTransition {
                state: "AwaitingReceipt",
                ..
            })
        ));
        assert!(fsm.on_ack(1).is_err());
        assert!(fsm.on_resume_point(0).is_err());
        assert_eq!(fsm.name(), "AwaitingReceipt");
        // Stored closes the single shot; repeats are idempotent.
        assert_eq!(fsm.on_stored().unwrap(), None);
        assert_eq!(fsm.name(), "Stored");
        assert_eq!(fsm.on_stored().unwrap(), None);
        // A channel reset rewinds to Idle with nothing retained.
        fsm.reset_channel();
        assert!(matches!(fsm, SenderFsm::Idle { stream: None }));
    }

    #[test]
    fn sender_streaming_table() {
        let mut fsm = SenderFsm::Idle { stream: None };
        fsm.dispatch_announce(progress(4)).unwrap();
        assert_eq!(fsm.name(), "Streaming");
        assert!(fsm.stream_active());
        assert!(fsm.sendable_stream().is_some());
        // Cumulative acks only move forward.
        fsm.on_ack(2).unwrap();
        assert_eq!(fsm.stream().unwrap().acked(), 2);
        fsm.on_ack(1).unwrap();
        assert_eq!(fsm.stream().unwrap().acked(), 2);
        // Beyond the stream end is a protocol violation, state kept.
        assert!(matches!(fsm.on_ack(5), Err(MigError::Protocol(_))));
        assert_eq!(fsm.name(), "Streaming");
        // The final ack completes the stream.
        fsm.on_ack(4).unwrap();
        assert_eq!(fsm.name(), "Complete");
        assert!(!fsm.stream_active(), "complete streams free their slot");
        // Stored closes the accounting and reports the generation.
        assert_eq!(fsm.on_stored().unwrap(), Some(3));
        assert_eq!(fsm.name(), "Stored");
        assert_eq!(fsm.stream().unwrap().acked(), 4);
    }

    #[test]
    fn sender_resume_table() {
        let mut fsm = SenderFsm::Idle { stream: None };
        fsm.dispatch_announce(progress(4)).unwrap();
        fsm.on_ack(2).unwrap();
        // Channel dies: rewind keeps the progress, unsends the rest.
        fsm.reset_channel();
        assert!(matches!(&fsm, SenderFsm::Idle { stream: Some(s) } if s.next_to_send() == 2));
        assert!(!fsm.is_sent());
        // A retained stream must resume, not restart.
        assert!(fsm.dispatch_announce(progress(4)).is_err());
        assert!(fsm.dispatch_single_shot().is_err());
        let nonce = fsm.dispatch_resume().unwrap();
        assert_eq!(nonce, [7; 16]);
        assert_eq!(fsm.name(), "AwaitingResume");
        assert!(fsm.is_awaiting_resume() && fsm.stream_active());
        assert!(
            fsm.sendable_stream().is_none(),
            "no chunks granted until the destination names the resume point"
        );
        // The destination names a point behind our ack: rewind to it.
        fsm.on_resume_point(1).unwrap();
        assert_eq!(fsm.name(), "Streaming");
        let s = fsm.stream().unwrap();
        assert_eq!((s.acked(), s.next_to_send()), (1, 1));
        // A resume point at the end completes the stream.
        fsm.on_resume_point(4).unwrap();
        assert_eq!(fsm.name(), "Complete");
    }

    #[test]
    fn sender_invalid_events_from_idle() {
        let mut fsm = SenderFsm::Idle { stream: None };
        assert!(matches!(
            fsm.dispatch_resume(),
            Err(MigError::InvalidTransition {
                state: "Idle",
                event: "dispatch_resume"
            })
        ));
        assert!(fsm.on_ack(0).is_err());
        assert!(fsm.on_resume_point(0).is_err());
        assert!(fsm.on_stored().is_err());
        assert!(fsm.on_delta_nack().is_err());
        assert!(matches!(fsm, SenderFsm::Idle { stream: None }));
    }

    #[test]
    fn sender_delta_nack_rewinds_to_fresh_idle() {
        let mut fsm = SenderFsm::Idle { stream: None };
        fsm.dispatch_announce(StreamProgress::new([1; 16], 4096, 8192, 5, Some(4)))
            .unwrap();
        fsm.on_ack(1).unwrap();
        fsm.on_delta_nack().unwrap();
        // The delta stream is gone entirely: dispatch restarts in full.
        assert!(matches!(fsm, SenderFsm::Idle { stream: None }));
    }

    #[test]
    fn sender_ack_during_resume_only_advances_bookkeeping() {
        let mut fsm = SenderFsm::Idle { stream: None };
        fsm.dispatch_announce(progress(4)).unwrap();
        fsm.reset_channel();
        fsm.dispatch_resume().unwrap();
        fsm.on_ack(2).unwrap();
        assert_eq!(fsm.name(), "AwaitingResume");
        assert_eq!(fsm.stream().unwrap().acked(), 2);
    }

    fn drive(stream: &ChunkStream, fsm: &mut ReceiverFsm, from: u32) {
        for idx in from..stream.n_chunks() {
            let (c, m) = stream.chunk(idx);
            fsm.on_chunk(idx, c, &m).unwrap();
        }
    }

    #[test]
    fn receiver_full_release_parity_speculative_and_not() {
        let payload: Vec<u8> = (0..20_000).map(|i| (i % 251) as u8).collect();
        let stream = ChunkStream::new([9; 16], 4096, payload.clone());
        for speculative in [false, true] {
            let mut fsm = ReceiverFsm::start_full(
                MachineId(1),
                MrEnclave([5; 32]),
                data(),
                [9; 16],
                1,
                stream.total_len(),
                4096,
                stream.digest(),
                speculative,
            )
            .unwrap();
            assert!(fsm.delta_manifest().is_none() && fsm.needs_base().is_none());
            drive(&stream, &mut fsm, 0);
            assert!(fsm.is_complete());
            match fsm.release(None).unwrap() {
                ReceiverRelease::Released { state, .. } => {
                    assert_eq!(&state[..], &payload[..], "speculative={speculative}");
                }
                ReceiverRelease::BaseMissing => panic!("full stream needs no base"),
            }
        }
    }

    #[test]
    fn receiver_delta_staged_vs_deferred() {
        let base: Vec<u8> = (0..40_000).map(|i| (i % 251) as u8).collect();
        let mut new = base.clone();
        new[5000] ^= 0xAA;
        new[20_000] ^= 0x55;
        let digests = PageDigests::compute(&base, delta::PAGE_SIZE);
        let (manifest, payload) = delta::diff(&digests, 4, 5, &new);
        let stream = ChunkStream::new([8; 16], 4096, payload.clone());

        // Speculative with the base at announce: staged, releases with
        // no base argument.
        let mut fsm = ReceiverFsm::start_delta(
            MachineId(1),
            MrEnclave([5; 32]),
            data(),
            [8; 16],
            4096,
            stream.digest(),
            manifest.clone(),
            Some(&base),
            true,
        )
        .unwrap();
        assert!(fsm.is_staged() && fsm.needs_base().is_none());
        assert_eq!(fsm.generation(), 5);
        drive(&stream, &mut fsm, 0);
        match fsm.release(None).unwrap() {
            ReceiverRelease::Released { state, .. } => assert_eq!(&state[..], &new[..]),
            ReceiverRelease::BaseMissing => panic!("staged delta captured its base"),
        }

        // No base at announce (or speculation off): deferred — the base
        // is needed at release, and its absence NACKs.
        for (announce_base, speculative) in [(None, true), (Some(&base[..]), false)] {
            let mut fsm = ReceiverFsm::start_delta(
                MachineId(1),
                MrEnclave([5; 32]),
                data(),
                [8; 16],
                4096,
                stream.digest(),
                manifest.clone(),
                announce_base,
                speculative,
            )
            .unwrap();
            assert!(!fsm.is_staged() && fsm.needs_base().is_some());
            drive(&stream, &mut fsm, 0);
            match fsm.release(Some(&base)).unwrap() {
                ReceiverRelease::Released { state, .. } => assert_eq!(&state[..], &new[..]),
                ReceiverRelease::BaseMissing => panic!("base was supplied"),
            }
        }
        let mut fsm = ReceiverFsm::start_delta(
            MachineId(1),
            MrEnclave([5; 32]),
            data(),
            [8; 16],
            4096,
            stream.digest(),
            manifest.clone(),
            None,
            true,
        )
        .unwrap();
        drive(&stream, &mut fsm, 0);
        assert!(matches!(
            fsm.release(None).unwrap(),
            ReceiverRelease::BaseMissing
        ));
    }

    #[test]
    fn receiver_tamper_is_rejected_in_both_modes() {
        let payload: Vec<u8> = (0..10_000).map(|i| (i % 251) as u8).collect();
        let stream = ChunkStream::new([3; 16], 2048, payload);
        for speculative in [false, true] {
            let mut fsm = ReceiverFsm::start_full(
                MachineId(1),
                MrEnclave([5; 32]),
                data(),
                [3; 16],
                1,
                stream.total_len(),
                2048,
                stream.digest(),
                speculative,
            )
            .unwrap();
            let (c0, m0) = stream.chunk(0);
            let mut evil = c0.to_vec();
            evil[0] ^= 1;
            let err = fsm.on_chunk(0, &evil, &m0).unwrap_err();
            assert!(
                !matches!(err, MigError::Transfer("chunk index out of order")),
                "tamper is not a loss artifact"
            );
            // Out-of-order is the one recoverable error: prefix kept.
            let (c1, m1) = stream.chunk(1);
            assert!(matches!(
                fsm.on_chunk(1, c1, &m1),
                Err(MigError::Transfer("chunk index out of order"))
            ));
            assert_eq!(fsm.next_idx(), 0);
            // A wrong announced digest still quarantines at release.
            let mut fsm = ReceiverFsm::start_full(
                MachineId(1),
                MrEnclave([5; 32]),
                data(),
                [3; 16],
                1,
                stream.total_len(),
                2048,
                [0; 32],
                speculative,
            )
            .unwrap();
            drive(&stream, &mut fsm, 0);
            assert!(fsm.release(None).is_err(), "speculative={speculative}");
        }
    }

    #[test]
    fn receiver_restore_rebuilds_staging_deterministically() {
        let base: Vec<u8> = (0..30_000).map(|i| (i % 251) as u8).collect();
        let mut new = base.clone();
        new[100] ^= 1;
        new[25_000] ^= 2;
        let digests = PageDigests::compute(&base, delta::PAGE_SIZE);
        let (manifest, payload) = delta::diff(&digests, 1, 2, &new);
        let stream = ChunkStream::new([6; 16], 1024, payload);

        let mut fsm = ReceiverFsm::start_delta(
            MachineId(1),
            MrEnclave([5; 32]),
            data(),
            [6; 16],
            1024,
            stream.digest(),
            manifest.clone(),
            Some(&base),
            true,
        )
        .unwrap();
        for idx in 0..3 {
            let (c, m) = stream.chunk(idx);
            fsm.on_chunk(idx, c, &m).unwrap();
        }
        // Crash: only the assembler is persisted; staging is rebuilt.
        let blob = fsm.assembler_bytes();
        let assembler = ChunkAssembler::from_bytes(&blob).unwrap();
        let mut restored = ReceiverFsm::restore(
            MachineId(1),
            MrEnclave([5; 32]),
            data(),
            2,
            assembler,
            Some(manifest.clone()),
            Some(&base),
            true,
        );
        assert!(restored.is_staged());
        assert_eq!(restored.next_idx(), 3);
        drive(&stream, &mut restored, 3);
        match restored.release(None).unwrap() {
            ReceiverRelease::Released { state, .. } => assert_eq!(&state[..], &new[..]),
            ReceiverRelease::BaseMissing => panic!("staged"),
        }
        // The base evicted during the downtime: falls back to deferred,
        // exactly like a base missing at announce.
        let assembler = ChunkAssembler::from_bytes(&blob).unwrap();
        let restored = ReceiverFsm::restore(
            MachineId(1),
            MrEnclave([5; 32]),
            data(),
            2,
            assembler,
            Some(manifest),
            None,
            true,
        );
        assert!(!restored.is_staged() && restored.needs_base().is_some());
    }
}
