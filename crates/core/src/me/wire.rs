//! The **wire layer** of the Migration Enclave: everything that decides
//! how session frames are shaped for one destination link.
//!
//! The simulated network delivers smaller ciphertexts earlier within a
//! step, so FIFO delivery of a multiplexed chunk stream is a *sizing*
//! property: every source→destination stream frame is padded to the
//! link's current **wire cell** ([`LinkShaper::bump_cell`]), oversized
//! lead frames grow the cell ([`cell_for_frame_len`]), and the small
//! destination→source control frames share one uniform
//! [`CTRL_FRAME_LEN`]. This module owns that policy in one place —
//! the frame-size arithmetic ([`chunk_frame_len`] / [`pad_frame`]), the
//! per-destination [`AdaptiveLink`] chunk/window controller, and the
//! [`DrrScheduler`] apportioning the shared link window among
//! concurrent streams — so the session layer ([`super::session`]) never
//! computes a pad byte itself.

use crate::error::MigError;
use crate::msgs::MeToMe;
use crate::secure_channel::SecureChannel;
use crate::transfer::chunker::ChunkStream;
use crate::transfer::{TransferConfig, MIN_CHUNK_SIZE};
use mig_crypto::gcm::TAG_LEN;
use sgx_sim::measurement::MrEnclave;
use sgx_sim::wire::WireReader;
#[cfg(test)]
use sgx_sim::wire::WireWriter;
use std::collections::HashMap;
use std::hash::Hash;

/// Uniform plaintext length of the small destination→source control
/// frames (`Delivered`, `Stored`, `ChunkAck`, `Resume`, `DeltaNack`).
/// With multiple streams multiplexed on one channel these frames are
/// sealed back to back; equal lengths keep their ciphertexts FIFO on
/// the size-ordered simulated network.
pub const CTRL_FRAME_LEN: usize = 64;

/// Fixed wire overhead of a [`MeToMe::Chunk`] frame — the layout
/// emitted by [`MeToMe::encode_chunk`]: tag(1), nonce(16), idx(4),
/// payload len prefix(4), mac(32), pad len prefix(4).
const CHUNK_FRAME_OVERHEAD: usize = 61;

/// Plaintext length of a [`MeToMe::Chunk`] frame whose payload plus
/// padding sum to `cell` bytes — the uniform *wire cell* every stream
/// frame towards one destination is padded to.
#[must_use]
pub fn chunk_frame_len(cell: u32) -> usize {
    cell as usize + CHUNK_FRAME_OVERHEAD
}

/// Inverse of [`chunk_frame_len`]: the smallest cell whose chunk frames
/// are at least `frame_len` bytes on the wire — what a link's cell must
/// grow to so an oversized lead frame (e.g. a `DeltaStart` naming many
/// pages) cannot be overtaken by the chunks sealed after it.
///
/// # Errors
///
/// [`MigError::Transfer`] when `frame_len` is below the fixed chunk
/// frame overhead: such a frame cannot be a well-formed stream frame,
/// and silently mapping it to a 0-byte cell would let a corrupt length
/// propagate into the link's framing state.
pub fn cell_for_frame_len(frame_len: usize) -> Result<u32, MigError> {
    let cell = frame_len
        .checked_sub(CHUNK_FRAME_OVERHEAD)
        .ok_or(MigError::Transfer("frame shorter than chunk overhead"))?;
    u32::try_from(cell).map_err(|_| MigError::Transfer("frame exceeds cell range"))
}

/// Grows the trailing pad field of a freshly encoded stream frame
/// (`ChunkStart` / `DeltaStart`, whose [`MeToMe::to_bytes`] emits an
/// empty pad) so the plaintext reaches exactly `target` bytes —
/// equalizing its wire size with the destination's chunk frames. A
/// frame already at or above `target` is left unchanged.
pub fn pad_frame(frame: &mut Vec<u8>, target: usize) {
    if frame.len() >= target {
        return;
    }
    let extra = target - frame.len();
    let len_pos = frame.len() - 4;
    debug_assert_eq!(
        // mig-lint: allow(enclave-panic, "debug-only guard; every MeToMe frame ends in the 4-byte pad-length field")
        &frame[len_pos..],
        &[0u8; 4],
        "pad_frame requires a trailing empty pad field"
    );
    // mig-lint: allow(enclave-panic, "len_pos = frame.len()-4 is in bounds (frames end in the pad field) and extra <= target <= cell <= u32::MAX")
    frame[len_pos..].copy_from_slice(&u32::try_from(extra).expect("pad < 4 GiB").to_le_bytes());
    frame.resize(target, 0);
}

/// Encodes chunk `idx` of `stream` as a seal-ready plaintext, padded to
/// the destination's wire `cell`. Chunk payloads are encoded straight
/// from the stream's shared buffer ([`MeToMe::encode_chunk`]) — no
/// per-chunk clone.
///
/// Every stream frame towards one destination (announcements included)
/// is padded to the same cell so equal-length ciphertexts stay FIFO on
/// the size-ordered simulated network even when several streams'
/// frames interleave on the shared channel. Building plaintexts apart
/// from sealing lets the session layer hand the whole send burst to
/// [`SecureChannel::seal_many`](crate::secure_channel::SecureChannel::seal_many)
/// and overlap the AEAD work across its
/// seal lanes.
pub(crate) fn chunk_plaintext(stream: &ChunkStream, idx: u32, cell: u32) -> Vec<u8> {
    let (payload, mac) = stream.chunk(idx);
    let pad = cell.saturating_sub(payload.len() as u32);
    MeToMe::encode_chunk(&stream.nonce(), idx, payload, &mac, pad)
}

/// Pads an encoded lead frame (`ChunkStart` / `DeltaStart` /
/// re-announcement) to the cell's chunk-frame length, ready to seal.
pub(crate) fn lead_plaintext(mut frame: Vec<u8>, cell: u32) -> Vec<u8> {
    pad_frame(&mut frame, chunk_frame_len(cell));
    frame
}

/// Hard upper bound on the cells one `TRANSFER_BATCH` container may
/// carry, independent of the negotiated batch size. The container
/// framing is untrusted (the host could repack it), so the receiver
/// bounds its allocations here before opening a single cell.
pub const MAX_BATCH: u32 = 256;

/// Uniform wire length of a `TRANSFER_BATCH` container on a link whose
/// negotiated batch size is `batch` and whose wire cell is `cell`:
/// cell count, `batch` length-prefixed sealed cells, and the trailing
/// pad field. Containers holding fewer than `batch` cells are padded up
/// to this length so a final partial batch (a smaller ciphertext) can
/// never overtake earlier full batches on the size-ordered network.
#[must_use]
pub fn batch_frame_len(cell: u32, batch: u32) -> usize {
    let sealed_cell = chunk_frame_len(cell) + TAG_LEN;
    4 + batch as usize * (4 + sealed_cell) + 4
}

/// Seals a run of plaintext cells (chunk frames and padded lead frames,
/// all of one uniform plaintext length) directly into one batch
/// container, padded to [`batch_frame_len`] for the link's negotiated
/// `batch` size. The container is allocated once at its final size and
/// the channel seals each cell in place behind its length prefix
/// ([`SecureChannel::seal_many_framed`]) — no per-cell ciphertext
/// buffers, no second copy into the container.
pub(crate) fn seal_batch(
    channel: &mut SecureChannel,
    cells: &[Vec<u8>],
    cell: u32,
    batch: u32,
    lanes: u32,
) -> Vec<u8> {
    let target = batch_frame_len(cell, batch);
    let mut out = Vec::with_capacity(target);
    out.extend_from_slice(&(cells.len() as u32).to_le_bytes());
    channel.seal_many_framed(cells, lanes, &mut out);
    // Trailing pad field, exactly as pack_batch framed it.
    let pad = target.saturating_sub(out.len() + 4);
    // mig-lint: allow(enclave-panic, "pad < target <= batch_frame_len < 4 GiB")
    out.extend_from_slice(&u32::try_from(pad).expect("pad < 4 GiB").to_le_bytes());
    out.resize(target, 0);
    out
}

/// Packs individually channel-sealed cells into one batch container —
/// the two-pass framing [`seal_batch`] collapsed into a single pass.
/// Retained as the byte-layout oracle for `seal_batch` and the builder
/// for `unpack_batch` tests.
#[cfg(test)]
pub(crate) fn pack_batch(cells: &[Vec<u8>], cell: u32, batch: u32) -> Vec<u8> {
    let target = batch_frame_len(cell, batch);
    let mut w = WireWriter::with_capacity(target);
    w.u32(cells.len() as u32);
    let mut used = 4usize;
    for ct in cells {
        w.bytes(ct);
        used += 4 + ct.len();
    }
    let pad = target.saturating_sub(used + 4);
    w.bytes(&vec![0u8; pad]);
    w.finish()
}

/// Parses a `TRANSFER_BATCH` container into its sealed cells, in the
/// order they were sealed. The framing is untrusted: cell counts
/// outside `1..=`[`MAX_BATCH`] and truncation anywhere — including mid
/// cell — are rejected before any AEAD work happens, so a malformed
/// container cannot consume channel sequence numbers.
///
/// # Errors
///
/// [`MigError::Transfer`] on an empty, oversized, truncated, or
/// trailing-garbage container.
pub fn unpack_batch(bytes: &[u8]) -> Result<Vec<&[u8]>, MigError> {
    let framing = MigError::Transfer("malformed transfer batch container");
    let mut r = WireReader::new(bytes);
    let count = r.u32().map_err(|_| framing.clone())?;
    if count == 0 || count > MAX_BATCH {
        return Err(MigError::Transfer("batch cell count out of range"));
    }
    let mut cells = Vec::with_capacity(count as usize);
    for _ in 0..count {
        cells.push(r.bytes().map_err(|_| framing.clone())?);
    }
    let _pad = r.bytes().map_err(|_| framing.clone())?;
    r.finish().map_err(|_| framing)?;
    Ok(cells)
}

/// Per-destination adaptive chunk/window controller.
///
/// Seeded from the provisioned [`TransferConfig`], then driven by the
/// observed link behaviour: every clean cumulative ack grows the send
/// window by one (up to [`TransferConfig::max_window`]) — additive
/// increase keeps the pipe filling on a healthy link — and every
/// disruption (a `Resume` renegotiation after a crash or loss) halves
/// the chunk size (floor [`MIN_CHUNK_SIZE`]) and resets the window to
/// the provisioned base, so a flaky link retransmits less per loss.
/// New streams pick up the controller's current values; a mid-flight
/// stream keeps the geometry it was announced with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdaptiveLink {
    base_window: u32,
    max_window: u32,
    chunk_size: u32,
    window: u32,
}

impl AdaptiveLink {
    /// Seeds a controller from the provisioned config.
    #[must_use]
    pub fn new(config: &TransferConfig) -> Self {
        AdaptiveLink {
            base_window: config.window,
            max_window: config.max_window.max(config.window),
            chunk_size: config.chunk_size.max(MIN_CHUNK_SIZE),
            window: config.window,
        }
    }

    /// Chunk size the next stream to this destination will use.
    #[must_use]
    pub fn chunk_size(&self) -> u32 {
        self.chunk_size
    }

    /// Current send window (chunks in flight).
    #[must_use]
    pub fn window(&self) -> u32 {
        self.window
    }

    /// A cumulative ack arrived in order: grow the window additively.
    pub fn on_clean_ack(&mut self) {
        self.window = (self.window + 1).min(self.max_window);
    }

    /// The stream was disrupted (resume renegotiation): shrink the chunk
    /// size and fall back to the provisioned window.
    pub fn on_disruption(&mut self) {
        self.chunk_size = (self.chunk_size / 2).max(MIN_CHUNK_SIZE);
        self.window = self.base_window;
    }
}

/// One stream's appetite in a [`DrrScheduler::allocate`] round: how many
/// chunks it still wants to put on the wire and what one chunk costs in
/// bytes (its announced chunk size — streams announced under different
/// link conditions carry different geometry).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamDemand {
    /// Chunks the stream could send right now (unsent, inside the
    /// payload).
    pub pending_chunks: u32,
    /// Wire cost of one chunk in bytes.
    pub chunk_cost: u64,
}

/// Deficit-round-robin scheduler apportioning a shared per-destination
/// link budget among concurrently multiplexed chunk streams.
///
/// Classic DRR (Shreedhar & Varghese): every ready stream accrues one
/// `quantum` of byte credit per round and spends it on whole chunks; the
/// leftover deficit carries into the next round, so a stream with small
/// chunks is not systematically out-scheduled by one with large chunks,
/// and a 64 MiB migration cannot starve a 64 KiB one — each gets its
/// proportional share of every refill. State (round-robin order, cursor,
/// deficits) persists across calls for long-run fairness but is
/// deliberately ephemeral in the ME: after a restart the first refill
/// simply starts a fresh round.
#[derive(Debug)]
pub struct DrrScheduler<K: Copy + Eq + Hash> {
    order: Vec<K>,
    cursor: usize,
    deficit: HashMap<K, u64>,
}

impl<K: Copy + Eq + Hash> Default for DrrScheduler<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Copy + Eq + Hash> DrrScheduler<K> {
    /// Creates an empty scheduler.
    #[must_use]
    pub fn new() -> Self {
        DrrScheduler {
            order: Vec::new(),
            cursor: 0,
            deficit: HashMap::new(),
        }
    }

    /// Synchronizes the round-robin ring with the currently active
    /// streams: departed keys drop out (with their deficit), new keys
    /// join at the end of the ring.
    fn sync(&mut self, demands: &[(K, StreamDemand)]) {
        let cursor_key = self.order.get(self.cursor).copied();
        self.order.retain(|k| demands.iter().any(|(dk, _)| dk == k));
        self.deficit
            .retain(|k, _| demands.iter().any(|(dk, _)| dk == k));
        for (k, _) in demands {
            if !self.order.contains(k) {
                self.order.push(*k);
            }
        }
        self.cursor = cursor_key
            .and_then(|k| self.order.iter().position(|o| *o == k))
            .unwrap_or(0);
        if self.order.is_empty() {
            self.cursor = 0;
        } else {
            self.cursor %= self.order.len();
        }
    }

    /// Distributes a budget of `budget_chunks` send slots over the
    /// demanding streams, returning the emission order (one entry per
    /// granted chunk, interleaved the way the frames should hit the
    /// wire).
    pub fn allocate(&mut self, mut budget_chunks: u32, demands: &[(K, StreamDemand)]) -> Vec<K> {
        self.sync(demands);
        let mut pending: HashMap<K, u32> = demands
            .iter()
            .map(|(k, d)| (*k, d.pending_chunks))
            .collect();
        let cost: HashMap<K, u64> = demands.iter().map(|(k, d)| (*k, d.chunk_cost)).collect();
        // One quantum lets the hungriest stream send at least one chunk
        // per round, so every round makes progress.
        let quantum = demands
            .iter()
            .filter(|(_, d)| d.pending_chunks > 0)
            .map(|(_, d)| d.chunk_cost)
            .max()
            .unwrap_or(0);
        let mut grants = Vec::new();
        if quantum == 0 || self.order.is_empty() {
            return grants;
        }
        while budget_chunks > 0 && pending.values().any(|p| *p > 0) {
            // mig-lint: allow(enclave-panic, "cursor is maintained mod order.len() and order is non-empty (checked above)")
            let key = self.order[self.cursor];
            self.cursor = (self.cursor + 1) % self.order.len();
            let p = pending.entry(key).or_insert(0);
            if *p == 0 {
                // An idle stream carries no credit into its next busy
                // period (standard DRR: deficit resets when the queue
                // empties).
                self.deficit.insert(key, 0);
                continue;
            }
            let c = cost.get(&key).copied().unwrap_or(quantum).max(1);
            let deficit = self.deficit.entry(key).or_insert(0);
            *deficit += quantum;
            while *deficit >= c && *p > 0 && budget_chunks > 0 {
                grants.push(key);
                *deficit -= c;
                *p -= 1;
                budget_chunks -= 1;
            }
            if *p == 0 {
                *deficit = 0;
            }
        }
        grants
    }
}

/// Everything the wire layer tracks for one destination link: the
/// [`AdaptiveLink`] chunk/window controller, the [`DrrScheduler`]
/// sharing the window among concurrent streams, and the current wire
/// cell.
///
/// Lifecycles differ deliberately: the adaptive controller is link
/// memory that survives a `RETRY` reconnect ([`LinkShaper::reset_framing`]
/// keeps it), while the scheduler and the cell describe in-flight frames
/// that died with the old channel and are reset. The whole shaper is
/// ephemeral across an ME restart — re-seeded from the provisioned
/// config on the next stream.
#[derive(Debug)]
pub struct LinkShaper {
    adaptive: AdaptiveLink,
    scheduler: DrrScheduler<MrEnclave>,
    cell: u32,
    batch: u32,
}

impl LinkShaper {
    /// Seeds a shaper for a fresh destination link.
    #[must_use]
    pub fn new(config: &TransferConfig) -> Self {
        LinkShaper {
            adaptive: AdaptiveLink::new(config),
            scheduler: DrrScheduler::new(),
            cell: 0,
            batch: 1,
        }
    }

    /// The link's negotiated batch size: how many sealed cells one
    /// `TRANSFER_BATCH` container carries. 1 (the default) keeps the
    /// legacy one-frame-per-transition path.
    #[must_use]
    pub fn batch(&self) -> u32 {
        self.batch
    }

    /// Fixes the link's batch size from the channel negotiation
    /// (`min(own config, peer advertisement)`, clamped to
    /// `1..=`[`MAX_BATCH`]). Set once per channel establishment,
    /// *before* any stream frame flies — changing it with containers in
    /// flight would break the uniform-size FIFO discipline.
    pub fn set_batch(&mut self, batch: u32) {
        self.batch = batch.clamp(1, MAX_BATCH);
    }

    /// The adaptive chunk/window controller.
    #[must_use]
    pub fn adaptive(&self) -> &AdaptiveLink {
        &self.adaptive
    }

    /// Mutable access to the adaptive controller (ack/disruption
    /// feedback).
    pub fn adaptive_mut(&mut self) -> &mut AdaptiveLink {
        &mut self.adaptive
    }

    /// The destination's current wire cell (0 before any stream frame).
    #[must_use]
    pub fn cell(&self) -> u32 {
        self.cell
    }

    /// Drops the framing state bound to a dead channel (scheduler round
    /// and wire cell) while keeping the adaptive link memory — the
    /// `RETRY` path: in-flight frames died with the channel, but the
    /// link's observed behaviour did not change.
    pub fn reset_framing(&mut self) {
        self.scheduler = DrrScheduler::new();
        self.cell = 0;
        // Batching is negotiated per channel; the replacement channel
        // re-advertises before any stream frame flies.
        self.batch = 1;
    }

    /// The destination's wire cell for the next frame batch: the uniform
    /// padded size of every stream frame on that link. Grows to `needed`
    /// while frames are in flight (a larger frame sealed later cannot
    /// overtake) and shrinks back only when the link is drained — a
    /// smaller frame sealed behind in-flight larger ones would arrive
    /// first on the size-ordered network and desync the channel.
    pub fn bump_cell(&mut self, needed: u32, in_flight_before: u32) -> u32 {
        if in_flight_before == 0 {
            self.cell = needed;
        } else {
            self.cell = self.cell.max(needed);
        }
        self.cell = self.cell.max(MIN_CHUNK_SIZE);
        self.cell
    }

    /// Deficit-round-robin share-out of `budget` send slots over the
    /// ready streams (see [`DrrScheduler::allocate`]).
    pub fn allocate(
        &mut self,
        budget: u32,
        demands: &[(MrEnclave, StreamDemand)],
    ) -> Vec<MrEnclave> {
        self.scheduler.allocate(budget, demands)
    }

    /// The scheduler's carried byte deficits, sorted by measurement for
    /// deterministic export (telemetry gauges).
    #[must_use]
    pub fn deficits(&self) -> Vec<(MrEnclave, u64)> {
        let mut deficits: Vec<(MrEnclave, u64)> = self
            .scheduler
            .deficit
            .iter()
            .map(|(mr, d)| (*mr, *d))
            .collect();
        deficits.sort_by_key(|(mr, _)| mr.0);
        deficits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_frame_len_matches_encoding() {
        for (payload, pad) in [(0usize, 4096u32), (100, 3996), (4096, 0)] {
            let frame = MeToMe::encode_chunk(&[1; 16], 0, &vec![7; payload], &[2; 32], pad);
            assert_eq!(frame.len(), chunk_frame_len(4096));
        }
        // cell_for_frame_len inverts chunk_frame_len.
        for cell in [MIN_CHUNK_SIZE, 64 * 1024] {
            assert_eq!(cell_for_frame_len(chunk_frame_len(cell)).unwrap(), cell);
        }
    }

    #[test]
    fn sub_overhead_frame_rejected_as_framing_error() {
        // A frame shorter than the fixed chunk overhead cannot be a
        // well-formed stream frame; it must surface as a framing error,
        // not silently map to a 0-byte cell.
        for len in [0, 1, CHUNK_FRAME_OVERHEAD - 1] {
            assert!(matches!(
                cell_for_frame_len(len),
                Err(MigError::Transfer(_))
            ));
        }
        // The boundary itself is the legitimate empty-payload frame.
        assert_eq!(cell_for_frame_len(CHUNK_FRAME_OVERHEAD).unwrap(), 0);
    }

    #[test]
    fn batch_container_round_trips_and_pads_uniformly() {
        let cell = MIN_CHUNK_SIZE;
        let sealed_len = chunk_frame_len(cell) + TAG_LEN;
        let full: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i; sealed_len]).collect();
        let packed_full = pack_batch(&full, cell, 4);
        assert_eq!(packed_full.len(), batch_frame_len(cell, 4));
        let cells = unpack_batch(&packed_full).unwrap();
        assert_eq!(cells.len(), 4);
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(*c, &full[i][..]);
        }
        // A partial batch pads to the same uniform container length, so
        // it cannot overtake a full batch on the size-ordered network.
        let partial = pack_batch(&full[..1], cell, 4);
        assert_eq!(partial.len(), packed_full.len());
        assert_eq!(unpack_batch(&partial).unwrap().len(), 1);
    }

    #[test]
    fn seal_batch_matches_pack_batch_of_seal_many() {
        use crate::secure_channel::ChannelRole;
        let cell = MIN_CHUNK_SIZE;
        let plaintexts: Vec<Vec<u8>> = (0..3u8).map(|i| vec![i; chunk_frame_len(cell)]).collect();
        for lanes in [1u32, 2, 4] {
            // Two-pass oracle: seal the cells, then pack the ciphertexts.
            let mut oracle = SecureChannel::new([9; 16], ChannelRole::Initiator);
            let expected = pack_batch(&oracle.seal_many(&plaintexts, lanes), cell, 4);
            // Single-pass path under test: seal straight into the container.
            let mut direct = SecureChannel::new([9; 16], ChannelRole::Initiator);
            let container = seal_batch(&mut direct, &plaintexts, cell, 4, lanes);
            assert_eq!(container, expected, "lanes={lanes}");
            assert_eq!(container.len(), batch_frame_len(cell, 4));
            // And the receiver parses the sealed cells back out in order.
            assert_eq!(unpack_batch(&container).unwrap().len(), 3);
        }
    }

    #[test]
    fn truncated_or_malformed_batch_rejected() {
        let cell = MIN_CHUNK_SIZE;
        let sealed_len = chunk_frame_len(cell) + TAG_LEN;
        let cells: Vec<Vec<u8>> = (0..2u8).map(|i| vec![i; sealed_len]).collect();
        let packed = pack_batch(&cells, cell, 2);
        // Truncation mid-cell must be rejected before any AEAD work.
        for cut in [3, 10, sealed_len + 6, packed.len() - 1] {
            assert!(unpack_batch(&packed[..cut]).is_err(), "cut at {cut}");
        }
        // Zero cells and oversized counts are out of range.
        let mut w = WireWriter::new();
        w.u32(0);
        w.bytes(&[]);
        assert!(unpack_batch(&w.finish()).is_err());
        let mut w = WireWriter::new();
        w.u32(MAX_BATCH + 1);
        assert!(unpack_batch(&w.finish()).is_err());
    }

    #[test]
    fn link_shaper_batch_negotiation_clamps_and_resets() {
        let mut shaper = LinkShaper::new(&TransferConfig::default());
        assert_eq!(shaper.batch(), 1, "unbatched until negotiated");
        shaper.set_batch(16);
        assert_eq!(shaper.batch(), 16);
        shaper.set_batch(0);
        assert_eq!(shaper.batch(), 1, "zero clamps to the legacy path");
        shaper.set_batch(MAX_BATCH * 2);
        assert_eq!(shaper.batch(), MAX_BATCH);
        // A channel reset renegotiates: framing reset drops to 1.
        shaper.set_batch(8);
        shaper.reset_framing();
        assert_eq!(shaper.batch(), 1);
    }

    #[test]
    fn padded_start_frames_parse_identically() {
        let data = crate::library::state::MigrationData {
            counters_active: [false; crate::library::state::COUNTER_SLOTS],
            counter_values: [0; crate::library::state::COUNTER_SLOTS],
            msk: [7; 16],
        };
        let start = MeToMe::ChunkStart {
            mr_enclave: MrEnclave([5; 32]),
            nonce: [8; 16],
            generation: 3,
            total_len: 1_000_000,
            chunk_size: 4096,
            state_digest: [9; 32],
            data,
        };
        let mut frame = start.to_bytes();
        pad_frame(&mut frame, chunk_frame_len(64 * 1024));
        assert_eq!(frame.len(), chunk_frame_len(64 * 1024));
        assert_eq!(MeToMe::from_bytes(&frame).unwrap(), start);
        // A frame already above the target is untouched.
        let mut big = start.to_bytes();
        let natural = big.len();
        pad_frame(&mut big, 10);
        assert_eq!(big.len(), natural);
    }

    fn demand(pending: u32, cost: u64) -> StreamDemand {
        StreamDemand {
            pending_chunks: pending,
            chunk_cost: cost,
        }
    }

    #[test]
    fn drr_shares_budget_evenly_between_equal_streams() {
        let mut sched: DrrScheduler<u8> = DrrScheduler::new();
        let grants = sched.allocate(8, &[(1, demand(100, 4096)), (2, demand(100, 4096))]);
        assert_eq!(grants.len(), 8);
        let a = grants.iter().filter(|k| **k == 1).count();
        let b = grants.iter().filter(|k| **k == 2).count();
        assert_eq!((a, b), (4, 4), "equal streams split the budget evenly");
        // Emission interleaves rather than bursting one stream.
        assert_ne!(grants[0], grants[1]);
    }

    #[test]
    fn drr_small_stream_finishes_inside_large_stream_refills() {
        let mut sched: DrrScheduler<u8> = DrrScheduler::new();
        // A 256-chunk elephant and a 4-chunk mouse: the mouse drains in
        // the very first window.
        let grants = sched.allocate(8, &[(1, demand(256, 65536)), (2, demand(4, 65536))]);
        assert_eq!(grants.iter().filter(|k| **k == 2).count(), 4);
        assert_eq!(grants.iter().filter(|k| **k == 1).count(), 4);
    }

    #[test]
    fn drr_is_work_conserving() {
        let mut sched: DrrScheduler<u8> = DrrScheduler::new();
        // One stream has little to send; the other absorbs the leftover.
        let grants = sched.allocate(10, &[(1, demand(2, 4096)), (2, demand(100, 4096))]);
        assert_eq!(grants.iter().filter(|k| **k == 1).count(), 2);
        assert_eq!(grants.iter().filter(|k| **k == 2).count(), 8);
    }

    #[test]
    fn drr_deficit_compensates_unequal_chunk_costs() {
        let mut sched: DrrScheduler<u8> = DrrScheduler::new();
        // Stream 1 carries 64 KiB chunks, stream 2 16 KiB chunks: over a
        // large budget, stream 2 must get ~4x the chunks (equal bytes).
        let grants = sched.allocate(
            100,
            &[(1, demand(1000, 64 * 1024)), (2, demand(1000, 16 * 1024))],
        );
        let a = grants.iter().filter(|k| **k == 1).count() as f64;
        let b = grants.iter().filter(|k| **k == 2).count() as f64;
        assert!(
            (b / a - 4.0).abs() < 0.5,
            "byte-fair split expected ~1:4 chunks, got {a}:{b}"
        );
    }

    #[test]
    fn drr_survives_departures_and_arrivals() {
        let mut sched: DrrScheduler<u8> = DrrScheduler::new();
        let _ = sched.allocate(4, &[(1, demand(10, 4096)), (2, demand(10, 4096))]);
        // Stream 1 departs, stream 3 arrives; allocation stays sane.
        let grants = sched.allocate(4, &[(2, demand(10, 4096)), (3, demand(10, 4096))]);
        assert_eq!(grants.len(), 4);
        assert!(grants.iter().all(|k| *k == 2 || *k == 3));
        // Empty demand yields nothing and does not spin.
        assert!(sched.allocate(4, &[]).is_empty());
        assert!(sched.allocate(0, &[(2, demand(1, 4096))]).is_empty());
    }

    #[test]
    fn adaptive_link_grows_on_acks_and_shrinks_on_disruption() {
        let config = TransferConfig {
            chunk_size: 64 * 1024,
            window: 2,
            max_window: 5,
            ..TransferConfig::default()
        };
        let mut link = AdaptiveLink::new(&config);
        assert_eq!((link.chunk_size(), link.window()), (64 * 1024, 2));
        for _ in 0..10 {
            link.on_clean_ack();
        }
        assert_eq!(link.window(), 5, "window capped at max_window");
        link.on_disruption();
        assert_eq!(link.chunk_size(), 32 * 1024, "chunk size halves");
        assert_eq!(link.window(), 2, "window resets to provisioned base");
        for _ in 0..20 {
            link.on_disruption();
        }
        assert_eq!(
            link.chunk_size(),
            MIN_CHUNK_SIZE,
            "floored at MIN_CHUNK_SIZE"
        );
    }

    #[test]
    fn link_shaper_cell_grows_under_flight_and_resets_when_drained() {
        let mut shaper = LinkShaper::new(&TransferConfig::default());
        assert_eq!(shaper.cell(), 0);
        // Quiet link: the cell snaps to what the batch needs (floored).
        assert_eq!(shaper.bump_cell(16 * 1024, 0), 16 * 1024);
        // Frames in flight: the cell only grows.
        assert_eq!(shaper.bump_cell(4 * 1024, 3), 16 * 1024);
        assert_eq!(shaper.bump_cell(64 * 1024, 3), 64 * 1024);
        // Drained again: shrink is allowed, floored at MIN_CHUNK_SIZE.
        assert_eq!(shaper.bump_cell(1, 0), MIN_CHUNK_SIZE);
        // A retry keeps the adaptive memory but clears the framing.
        shaper.adaptive_mut().on_disruption();
        let chunk = shaper.adaptive().chunk_size();
        shaper.reset_framing();
        assert_eq!(shaper.cell(), 0);
        assert_eq!(shaper.adaptive().chunk_size(), chunk);
    }
}
