//! The **telemetry layer** of the Migration Enclave: in-enclave
//! migration counters, the quarantine ledger, and the `TELEMETRY` ECALL
//! that exports them to the untrusted host.
//!
//! Everything exported here is deliberately *public* information: raw
//! counts, link geometry, scheduler deficits, and per-migration **trace
//! ids** — one-way hashes of the transfer nonce computed inside the
//! enclave ([`crate::transfer::chunker::trace_id`]). The nonce itself
//! keys the chunk HMAC chain and never crosses the ECALL boundary.
//!
//! The counters are intentionally **ephemeral** (not part of the
//! `PERSIST` checkpoint): a management-VM restart resets observability
//! state to zero without touching the durable-state wire format, and
//! the host-side recorder keeps its own view across the restart.

use crate::error::MigError;
use crate::me::MigrationEnclave;
use sgx_sim::machine::MachineId;
use sgx_sim::measurement::MrEnclave;
use sgx_sim::wire::{WireReader, WireWriter};
use sgx_sim::SgxError;

/// In-enclave migration telemetry: monotonic counters plus the ordered
/// ledger of quarantined inbound streams.
#[derive(Debug, Default)]
pub(crate) struct MeTelemetry {
    /// Host-directed incoming-state aborts executed (`ABORT` ECALL;
    /// refusals are not counted).
    pub(crate) aborts_incoming: u64,
    /// Stream announcements dispatched (`ChunkStart` / `DeltaStart`).
    pub(crate) announcements: u64,
    /// `TRANSFER_BATCH` containers accepted (destination side).
    pub(crate) batches_received: u64,
    /// `TRANSFER_BATCH` containers packed onto the wire (source side).
    pub(crate) batches_sealed: u64,
    /// Generation-cache entries evicted by the LRU byte budget.
    pub(crate) cache_evictions: u64,
    /// Chunks received and chain-verified (destination side).
    pub(crate) chunks_received: u64,
    /// Chunks re-sealed after a resume rewound the send cursor.
    pub(crate) chunks_retransmitted: u64,
    /// Chunks sealed onto the wire (source side; includes retransmits).
    pub(crate) chunks_sealed: u64,
    /// Delta streams that fell back to a full stream (`DeltaNack` sent
    /// or received, or a deferred base found missing).
    pub(crate) delta_fallbacks: u64,
    /// Inbound streams quarantined on chain-MAC/length evidence.
    pub(crate) quarantines: u64,
    /// Resume requests dispatched after a channel loss.
    pub(crate) resume_requests: u64,
    /// Whole-payload (non-streamed) transfers dispatched.
    pub(crate) singleshot_transfers: u64,
    /// Trace ids of quarantined inbound streams, in quarantine order.
    /// The host diffs this ledger after a failed `TRANSFER` ECALL to
    /// timestamp quarantine edges without the enclave leaking when.
    pub(crate) quarantined: Vec<[u8; 8]>,
}

impl MeTelemetry {
    /// Counter (name, value) pairs in stable sorted-by-name order.
    fn counters(&self) -> [(&'static str, u64); 12] {
        [
            ("me.aborts_incoming", self.aborts_incoming),
            ("me.announcements", self.announcements),
            ("me.batches_received", self.batches_received),
            ("me.batches_sealed", self.batches_sealed),
            ("me.cache_evictions", self.cache_evictions),
            ("me.chunks_received", self.chunks_received),
            ("me.chunks_retransmitted", self.chunks_retransmitted),
            ("me.chunks_sealed", self.chunks_sealed),
            ("me.delta_fallbacks", self.delta_fallbacks),
            ("me.quarantines", self.quarantines),
            ("me.resume_requests", self.resume_requests),
            ("me.singleshot_transfers", self.singleshot_transfers),
        ]
    }
}

/// One destination link's live wire-layer gauges.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinkTelemetry {
    /// The link's destination machine.
    pub destination: MachineId,
    /// Adaptive controller: chunk size the next stream will use.
    pub chunk_size: u32,
    /// Adaptive controller: current send window (chunks in flight).
    pub window: u32,
    /// Current wire cell (uniform padded frame size; 0 when drained).
    pub cell: u32,
    /// DRR scheduler deficits, sorted by measurement.
    pub deficits: Vec<(MrEnclave, u64)>,
}

/// The decoded output of the `TELEMETRY` ECALL.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TelemetryReport {
    /// Monotonic counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Generation-cache retained bytes (gauge).
    pub cache_bytes: u64,
    /// Per-destination link gauges, sorted by machine id.
    pub links: Vec<LinkTelemetry>,
    /// Quarantined inbound streams' trace ids, in quarantine order.
    pub quarantined: Vec<[u8; 8]>,
}

impl TelemetryReport {
    /// Parses a `TELEMETRY` ECALL output.
    ///
    /// # Errors
    ///
    /// [`SgxError::Decode`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SgxError> {
        let mut r = WireReader::new(bytes);
        let n_counters = r.u32()? as usize;
        let mut counters = Vec::with_capacity(n_counters);
        for _ in 0..n_counters {
            let name = String::from_utf8(r.bytes_vec()?).map_err(|_| SgxError::Decode)?;
            let value = r.u64()?;
            counters.push((name, value));
        }
        let cache_bytes = r.u64()?;
        let n_links = r.u32()? as usize;
        let mut links = Vec::with_capacity(n_links);
        for _ in 0..n_links {
            let destination = MachineId(r.u64()?);
            let chunk_size = r.u32()?;
            let window = r.u32()?;
            let cell = r.u32()?;
            let n_deficits = r.u32()? as usize;
            let mut deficits = Vec::with_capacity(n_deficits);
            for _ in 0..n_deficits {
                let mr = MrEnclave(r.array()?);
                deficits.push((mr, r.u64()?));
            }
            links.push(LinkTelemetry {
                destination,
                chunk_size,
                window,
                cell,
                deficits,
            });
        }
        let n_quarantined = r.u32()? as usize;
        let mut quarantined = Vec::with_capacity(n_quarantined);
        for _ in 0..n_quarantined {
            quarantined.push(r.array()?);
        }
        r.finish()?;
        Ok(TelemetryReport {
            counters,
            cache_bytes,
            links,
            quarantined,
        })
    }
}

impl MigrationEnclave {
    /// `TELEMETRY`: exports the enclave's counters, live wire-layer
    /// gauges, and the quarantine ledger. Read-only and always
    /// available (works before provisioning — an unprovisioned ME
    /// reports zeros). Iteration orders are sorted so the export is
    /// byte-identical for identical state.
    pub(super) fn op_telemetry(&self) -> Result<Vec<u8>, MigError> {
        let mut w = WireWriter::new();
        let counters = self.telemetry.counters();
        w.u32(counters.len() as u32);
        for (name, value) in counters {
            w.bytes(name.as_bytes());
            w.u64(value);
        }
        w.u64(self.cache.total_bytes());
        let mut links: Vec<_> = self.shapers.iter().collect();
        links.sort_by_key(|(m, _)| m.0);
        w.u32(links.len() as u32);
        for (destination, shaper) in links {
            w.u64(destination.0);
            w.u32(shaper.adaptive().chunk_size());
            w.u32(shaper.adaptive().window());
            w.u32(shaper.cell());
            let deficits = shaper.deficits();
            w.u32(deficits.len() as u32);
            for (mr, deficit) in deficits {
                w.array(&mr.0);
                w.u64(deficit);
            }
        }
        w.u32(self.telemetry.quarantined.len() as u32);
        for trace in &self.telemetry.quarantined {
            w.array(trace);
        }
        Ok(w.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_round_trips() {
        let me = MigrationEnclave::new();
        let bytes = me.op_telemetry().unwrap();
        let report = TelemetryReport::from_bytes(&bytes).unwrap();
        assert_eq!(report.counters.len(), 12);
        assert!(report.counters.iter().all(|(_, v)| *v == 0));
        assert!(report.links.is_empty() && report.quarantined.is_empty());
        // Counter names arrive sorted (stable export order).
        let names: Vec<&str> = report.counters.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }

    #[test]
    fn counters_and_quarantine_ledger_survive_the_wire() {
        let mut me = MigrationEnclave::new();
        me.telemetry.chunks_sealed = 7;
        me.telemetry.quarantines = 1;
        me.telemetry.quarantined.push([9; 8]);
        let report = TelemetryReport::from_bytes(&me.op_telemetry().unwrap()).unwrap();
        let get = |name: &str| {
            report
                .counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
        };
        assert_eq!(get("me.chunks_sealed"), Some(7));
        assert_eq!(get("me.quarantines"), Some(1));
        assert_eq!(report.quarantined, vec![[9; 8]]);
    }
}
