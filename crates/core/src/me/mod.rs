//! The **Migration Enclave** (ME) — the per-machine trusted migration
//! manager (§V-B, §VI-A), structured as three layers under a thin ECALL
//! dispatch:
//!
//! * [`session`] — typed per-migration / per-nonce state machines
//!   ([`session::SenderFsm`] / [`session::ReceiverFsm`]) covering
//!   announce → chunk/delta → resume/retry → stored/delivered, plus
//!   destination-side speculative restore;
//! * [`wire`] — framing policy for one destination link: wire cells,
//!   control-frame sizing, the adaptive chunk/window controller, and
//!   the deficit-round-robin scheduler ([`wire::LinkShaper`]);
//! * [`persist`] — the generation-numbered me-state checkpoint codec
//!   and the byte-budgeted delta-base LRU cache.
//!
//! One ME runs in each machine's management VM. It:
//!
//! * accepts local attestations from application enclaves and keeps one
//!   attested channel per application MRENCLAVE;
//! * on an outgoing `MigrateRequest`, mutually remote-attests the peer ME
//!   (same MRENCLAVE required), authenticates it as belonging to the same
//!   cloud operator via credential + transcript signatures, checks the
//!   migration policy, and forwards the migration data over the resulting
//!   secure channel;
//! * on an incoming transfer, matches the migrating enclave's MRENCLAVE
//!   to a locally attested enclave — forwarding immediately — or stores
//!   the data until such an enclave attests (§VI-A);
//! * retains outgoing migration data until the destination confirms
//!   delivery (`DONE`), per Fig. 2's error-handling rule.
//!
//! The ME is driven through its ECALL ABI ([`ops`]) by the untrusted
//! [`MeHost`](crate::host::MeHost); every input arrives over untrusted
//! channels and every secret crosses only inside attested channels.

pub mod persist;
pub mod session;
pub mod telemetry;
pub mod wire;

pub use session::{
    MeAction, ReceiverFsm, ReceiverRelease, SenderFsm, StreamFrames, StreamProgress, FRAME_BATCH,
    FRAME_SINGLE,
};
pub use telemetry::{LinkTelemetry, TelemetryReport};

use crate::error::MigError;
use crate::msgs::MeToLib;
use crate::operator::MeCredential;
use crate::policy::MigrationPolicy;
use crate::remote_attest::{transcript_bytes, RaConfig, RaInitiator, RaResponder, RaResponseQuote};
use crate::secure_channel::{ChannelRole, SecureChannel};
use crate::transfer::chunker::{ChunkStream, TransferNonce};
use crate::transfer::delta::DeltaManifest;
use crate::transfer::TransferConfig;
use mig_crypto::ed25519::{Signature, SigningKey, VerifyingKey};
use mig_crypto::x25519::PublicKey;
use persist::GenerationCache;
use session::OutgoingMigration;
use sgx_sim::dh::{DhMsg2, DhResponder};
use sgx_sim::enclave::{EnclaveCode, EnclaveEnv};
use sgx_sim::ias::AttestationEvidence;
use sgx_sim::machine::MachineId;
use sgx_sim::measurement::{EnclaveImage, EnclaveSigner, MrEnclave};
use sgx_sim::wire::{WireReader, WireWriter};
use sgx_sim::SgxError;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};
use wire::LinkShaper;

/// ECALL opcodes of the Migration Enclave.
pub mod ops {
    /// Generate the ME's transcript-signing keypair; returns the public key.
    pub const KEYGEN: u32 = 1;
    /// Provision credential, operator root, IAS key, and policy.
    pub const PROVISION: u32 = 2;
    /// Begin a local-attestation session (returns DH Msg1).
    pub const LA_START: u32 = 3;
    /// Complete a local attestation (processes Msg2, returns Msg3 + info).
    pub const LA_MSG2: u32 = 4;
    /// Deliver an encrypted library→ME message.
    pub const LIB_MSG: u32 = 5;
    /// Remote attestation: incoming hello (destination side).
    pub const RA_HELLO: u32 = 6;
    /// Remote attestation: response received (source side).
    pub const RA_RESPONSE: u32 = 7;
    /// Remote attestation: finish received (destination side).
    pub const RA_FINISH: u32 = 8;
    /// Encrypted ME→ME transfer received (destination side).
    pub const TRANSFER: u32 = 9;
    /// Encrypted ME→ME acknowledgement received (source side).
    pub const ACK: u32 = 10;
    /// Re-dispatch retained migration data, optionally to a new
    /// destination (Fig. 2's error rule: "the migration data remains in
    /// the Migration Enclave on the source machine until the error is
    /// resolved or another destination machine is selected").
    pub const RETRY: u32 = 11;
    /// Seal the ME's durable state (identity, credential, retained
    /// migration data) for storage by the untrusted host, so retained
    /// data survives management-VM restarts.
    pub const PERSIST: u32 = 12;
    /// Restore the ME's durable state after a restart. Attested sessions
    /// and channels are ephemeral and must be re-established.
    pub const RESTORE: u32 = 13;
    /// Streaming-transfer progress query for a retained outgoing
    /// migration (diagnostics / resumable-migration orchestration).
    pub const STREAM_STAT: u32 = 14;
    /// Adaptive-controller state query for a destination link
    /// (diagnostics: current chunk size and send window).
    pub const LINK_STAT: u32 = 15;
    /// Export the ME's telemetry: migration counters, live wire-layer
    /// gauges, and the quarantine ledger (trace ids only — one-way
    /// hashes of the transfer nonce; the nonce never leaves the
    /// enclave). Read-only.
    pub const TELEMETRY: u32 = 16;
    /// Host-directed discard of staged **incoming** migration state for
    /// one enclave measurement (supervisor graceful degradation).
    /// Refused once the data has been handed to the destination
    /// library, so an abort can never race a completed delivery into a
    /// double release.
    pub const ABORT: u32 = 17;
    /// Encrypted ME→ME transfer **batch** received (destination side):
    /// one container of up to the link's negotiated batch size of
    /// sealed stream cells, verified and staged in one enclave
    /// transition with a single combined ack per touched stream.
    pub const TRANSFER_BATCH: u32 = 18;
}

/// The canonical Migration Enclave image. Identical on every machine, as
/// required for the MRENCLAVE-equality check during ME↔ME attestation.
#[must_use]
pub fn me_image() -> EnclaveImage {
    static IMAGE: OnceLock<EnclaveImage> = OnceLock::new();
    IMAGE
        .get_or_init(|| {
            let signer = EnclaveSigner::from_seed(*b"sgx-migrate me reference signer!");
            EnclaveImage::build(
                "sgx-migrate.migration-enclave",
                1,
                b"migration enclave reference implementation",
                &signer,
            )
        })
        .clone()
}

/// Writes an optional byte string (flag + length-prefixed bytes).
pub(crate) fn write_opt(w: &mut WireWriter, value: Option<&[u8]>) {
    match value {
        None => {
            w.u8(0);
        }
        Some(bytes) => {
            w.u8(1);
            w.bytes(bytes);
        }
    }
}

/// Reads an optional byte string.
pub(crate) fn read_opt(r: &mut WireReader<'_>) -> Result<Option<Vec<u8>>, SgxError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.bytes_vec()?)),
        _ => Err(SgxError::Decode),
    }
}

/// The authenticated RA response: responder's key+quote plus operator
/// credential and transcript signature (§V-B's "exchange signatures on
/// the transcript of the attestation protocol").
#[derive(Clone, Debug)]
pub struct RaResponseAuth {
    /// Responder's ephemeral key and quote.
    pub response: RaResponseQuote,
    /// Responder's operator credential.
    pub credential: MeCredential,
    /// Responder's advertised `TRANSFER_BATCH` capacity (its provisioned
    /// [`TransferConfig::batch_size`]); the link uses the minimum of
    /// both sides, so a peer advertising 1 keeps the legacy per-frame
    /// path. Covered by `signature`, so the untrusted relay cannot
    /// renegotiate the batch size.
    pub batch: u32,
    /// Signature over `transcript || "R" || batch_le` under the
    /// credentialed key.
    pub signature: Signature,
}

impl RaResponseAuth {
    /// Serializes for transport.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.bytes(&self.response.to_bytes());
        w.bytes(&self.credential.to_bytes());
        w.u32(self.batch);
        w.array(&self.signature.0);
        w.finish()
    }

    /// Parses from bytes.
    ///
    /// # Errors
    ///
    /// [`SgxError::Decode`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SgxError> {
        let mut r = WireReader::new(bytes);
        let response = RaResponseQuote::from_bytes(r.bytes()?)?;
        let credential = MeCredential::from_bytes(r.bytes()?)?;
        let batch = r.u32()?;
        let signature = Signature(r.array::<64>()?);
        r.finish()?;
        Ok(RaResponseAuth {
            response,
            credential,
            batch,
            signature,
        })
    }
}

/// The initiator's closing authentication message.
#[derive(Clone, Debug)]
pub struct RaFinishAuth {
    /// Initiator's operator credential.
    pub credential: MeCredential,
    /// Signature over `transcript || "I"` under the credentialed key.
    pub signature: Signature,
}

impl RaFinishAuth {
    /// Serializes for transport.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.bytes(&self.credential.to_bytes());
        w.array(&self.signature.0);
        w.finish()
    }

    /// Parses from bytes.
    ///
    /// # Errors
    ///
    /// [`SgxError::Decode`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SgxError> {
        let mut r = WireReader::new(bytes);
        let credential = MeCredential::from_bytes(r.bytes()?)?;
        let signature = Signature(r.array::<64>()?);
        r.finish()?;
        Ok(RaFinishAuth {
            credential,
            signature,
        })
    }
}

pub(crate) struct MeConfig {
    pub(crate) operator_root: VerifyingKey,
    pub(crate) ias_key: VerifyingKey,
    pub(crate) credential: MeCredential,
    pub(crate) policy: MigrationPolicy,
    pub(crate) transfer: TransferConfig,
}

struct PendingInbound {
    key: [u8; 16],
    g_i: PublicKey,
    g_r: PublicKey,
}

/// The Migration Enclave's trusted state and logic.
///
/// Construct with [`MigrationEnclave::new`], load with
/// [`me_image`], then drive through [`ops`]. The migration-protocol
/// handlers live in [`session`], framing policy in [`wire`], and the
/// durable-state codec in [`persist`]; this type holds the state they
/// share and the attestation glue.
#[derive(Default)]
pub struct MigrationEnclave {
    pub(crate) signing: Option<SigningKey>,
    pub(crate) config: Option<MeConfig>,
    /// In-progress local attestations, keyed by host-chosen token.
    la_handshakes: HashMap<Vec<u8>, DhResponder>,
    /// Attested channels to local application enclaves, by MRENCLAVE
    /// (§VI-A: sessions are matched to enclaves by measurement).
    pub(crate) local_sessions: HashMap<MrEnclave, SecureChannel>,
    /// Outgoing migrations retained until the destination confirms,
    /// each wrapped in its [`SenderFsm`].
    pub(crate) outgoing: HashMap<MrEnclave, OutgoingMigration>,
    /// In-progress outbound RA handshakes, keyed by requested destination.
    pub(crate) ra_out_pending: HashMap<MachineId, RaInitiator>,
    /// Inbound RA sessions awaiting the finish message.
    ra_in_pending: HashMap<MachineId, PendingInbound>,
    /// Established channels to destination MEs (this side initiated).
    pub(crate) channels_out: HashMap<MachineId, SecureChannel>,
    /// Established channels from source MEs (this side responded).
    pub(crate) channels_in: HashMap<MachineId, SecureChannel>,
    /// Incoming migration data (Table I payload + bulk state) stored
    /// until a matching enclave attests.
    pub(crate) pending_incoming:
        HashMap<MrEnclave, (crate::library::state::MigrationData, Arc<[u8]>, MachineId)>,
    /// Delivered incoming data awaiting the library's DONE.
    pub(crate) awaiting_done: HashMap<MrEnclave, MachineId>,
    /// Chunked transfers in reception, keyed by transfer nonce — each a
    /// [`ReceiverFsm`] staging the verified prefix.
    pub(crate) inbound: HashMap<TransferNonce, ReceiverFsm>,
    /// Transient source-side chunk caches (chain MACs precomputed);
    /// rebuilt on demand after a restore.
    pub(crate) out_streams: HashMap<MrEnclave, ChunkStream>,
    /// Transient manifests of outgoing delta streams (kept in lockstep
    /// with `out_streams`, rebuilt by the same O(state) diff — so a
    /// resume-to-zero re-announcement does not diff twice).
    pub(crate) out_manifests: HashMap<MrEnclave, DeltaManifest>,
    /// Last state generation held per enclave measurement (both roles:
    /// what we last shipped out and what we last received). Persisted;
    /// the delta base for repeat migrations. LRU-evicted beyond
    /// [`TransferConfig::cache_budget`].
    pub(crate) cache: GenerationCache,
    /// Per-destination wire-layer state ([`LinkShaper`]: adaptive
    /// controller, DRR scheduler, wire cell). Ephemeral — a restarted
    /// ME re-seeds them from the provisioned config.
    pub(crate) shapers: HashMap<MachineId, LinkShaper>,
    /// Migration telemetry counters and the quarantine ledger, exported
    /// via [`ops::TELEMETRY`]. Ephemeral by design (see [`telemetry`]).
    pub(crate) telemetry: telemetry::MeTelemetry,
}

impl std::fmt::Debug for MigrationEnclave {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MigrationEnclave")
            .field("provisioned", &self.config.is_some())
            .field("local_sessions", &self.local_sessions.len())
            .field("outgoing", &self.outgoing.len())
            .field("pending_incoming", &self.pending_incoming.len())
            .finish_non_exhaustive()
    }
}

impl MigrationEnclave {
    /// Creates an unprovisioned ME.
    #[must_use]
    pub fn new() -> Self {
        MigrationEnclave::default()
    }

    pub(crate) fn config(&self) -> Result<&MeConfig, MigError> {
        self.config.as_ref().ok_or(MigError::NotInitialized)
    }

    fn signing(&self) -> Result<&SigningKey, MigError> {
        self.signing.as_ref().ok_or(MigError::NotInitialized)
    }

    fn ra_config(&self, env: &EnclaveEnv<'_>) -> Result<RaConfig, MigError> {
        Ok(RaConfig {
            ias_key: self.config()?.ias_key,
            // Peer MEs must run the exact same ME build (§VI-A).
            expected_mr_enclave: env.identity().mr_enclave,
        })
    }

    /// Verifies a peer credential + transcript signature + policy.
    fn authenticate_peer(
        &self,
        credential: &MeCredential,
        claimed_machine: MachineId,
        transcript: &[u8],
        role_tag: &[u8],
        signature: &Signature,
    ) -> Result<(), MigError> {
        let cfg = self.config()?;
        credential.verify(&cfg.operator_root)?;
        if credential.machine != claimed_machine {
            return Err(MigError::PeerAuthenticationFailed(
                "credential machine mismatch",
            ));
        }
        let mut signed = transcript.to_vec();
        signed.extend_from_slice(role_tag);
        credential
            .me_key
            .verify(&signed, signature)
            .map_err(|_| MigError::PeerAuthenticationFailed("transcript signature"))?;
        cfg.policy.check(&cfg.credential, credential)?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Attestation + provisioning opcode handlers
    // ------------------------------------------------------------------

    fn op_keygen(&mut self, env: &mut EnclaveEnv<'_>) -> Result<Vec<u8>, MigError> {
        let mut seed = [0u8; 32];
        env.random_bytes(&mut seed);
        let key = SigningKey::from_seed(seed);
        let public = key.verifying_key();
        self.signing = Some(key);
        Ok(public.0.to_vec())
    }

    fn op_provision(&mut self, input: &[u8]) -> Result<Vec<u8>, MigError> {
        let mut r = WireReader::new(input);
        let credential = MeCredential::from_bytes(r.bytes()?)?;
        let operator_root = VerifyingKey(r.array()?);
        let ias_key = VerifyingKey(r.array()?);
        let policy = MigrationPolicy::from_bytes(r.bytes()?)?;
        // Optional trailing transfer tuning (older provisioning payloads
        // omit it).
        let transfer = if r.remaining() > 0 {
            TransferConfig::decode(&mut r)?
        } else {
            TransferConfig::default()
        };
        r.finish()?;

        // The credential must certify *our* signing key under the root we
        // are being provisioned with.
        let signing = self.signing()?;
        if credential.me_key != signing.verifying_key() {
            return Err(MigError::PeerAuthenticationFailed(
                "credential does not match our key",
            ));
        }
        credential.verify(&operator_root)?;
        self.config = Some(MeConfig {
            operator_root,
            ias_key,
            credential,
            policy,
            transfer,
        });
        Ok(vec![])
    }

    fn op_la_start(&mut self, env: &mut EnclaveEnv<'_>, input: &[u8]) -> Result<Vec<u8>, MigError> {
        let mut r = WireReader::new(input);
        let token = r.bytes_vec()?;
        r.finish()?;
        let (responder, msg1) = DhResponder::start(env);
        self.la_handshakes.insert(token, responder);
        Ok(msg1.to_bytes())
    }

    fn op_la_msg2(&mut self, env: &mut EnclaveEnv<'_>, input: &[u8]) -> Result<Vec<u8>, MigError> {
        let mut r = WireReader::new(input);
        let token = r.bytes_vec()?;
        let msg2 = DhMsg2::from_bytes(r.bytes()?)?;
        r.finish()?;

        let responder = self
            .la_handshakes
            .remove(&token)
            .ok_or(MigError::Protocol("unknown local-attestation token"))?;
        let (msg3, key, peer) = responder.process_msg2(env, &msg2)?;
        let mr = peer.mr_enclave;
        let mut channel = SecureChannel::new(key, ChannelRole::Responder);

        // If migration data for this measurement is parked, forward it now
        // (§VI-A: "the migration data will be stored until an enclave with
        // the matching MRENCLAVE value performs a local attestation"). The
        // parked copy is retained until the library confirms with DONE, so
        // an ME restart between forward and confirmation loses nothing.
        let forward = if let Some((data, state, source)) = self.pending_incoming.get(&mr) {
            let ct = channel.seal(&MeToLib::encode_incoming_migration(data, state));
            self.awaiting_done.insert(mr, *source);
            Some(ct)
        } else {
            None
        };
        self.local_sessions.insert(mr, channel);

        let mut w = WireWriter::new();
        w.bytes(&msg3.to_bytes());
        w.array(&mr.0);
        write_opt(&mut w, forward.as_deref());
        Ok(w.finish())
    }

    fn op_ra_hello(&mut self, env: &mut EnclaveEnv<'_>, input: &[u8]) -> Result<Vec<u8>, MigError> {
        let mut r = WireReader::new(input);
        let source = MachineId(r.u64()?);
        let g_i = PublicKey(r.array()?);
        let evidence = AttestationEvidence::from_bytes(r.bytes()?)?;
        r.finish()?;

        let cfg = self.ra_config(env)?;
        let (session, response) = RaResponder::respond(env, &cfg, g_i, &evidence)?;
        let (g_i, g_r) = session.keys();
        let transcript = transcript_bytes(&g_i, &g_r, &env.identity().mr_enclave);
        // Advertise our TRANSFER_BATCH capacity inside the signed
        // transcript: the source uses min(its own, ours), and the relay
        // cannot strip or inflate the advertisement without breaking
        // the signature.
        let batch = self.config()?.transfer.batch_size;
        let mut signed = transcript;
        signed.extend_from_slice(b"R");
        signed.extend_from_slice(&batch.to_le_bytes());
        let signature = self.signing()?.sign(&signed);
        let auth = RaResponseAuth {
            response,
            credential: self.config()?.credential.clone(),
            batch,
            signature,
        };
        self.ra_in_pending.insert(
            source,
            PendingInbound {
                key: session.session_key(),
                g_i,
                g_r,
            },
        );
        Ok(auth.to_bytes())
    }

    fn op_ra_response(
        &mut self,
        env: &mut EnclaveEnv<'_>,
        input: &[u8],
    ) -> Result<Vec<u8>, MigError> {
        let mut r = WireReader::new(input);
        let destination = MachineId(r.u64()?);
        let g_r = PublicKey(r.array()?);
        let evidence = AttestationEvidence::from_bytes(r.bytes()?)?;
        let credential = MeCredential::from_bytes(r.bytes()?)?;
        let advertised_batch = r.u32()?;
        let signature = Signature(r.array::<64>()?);
        r.finish()?;

        let session = self
            .ra_out_pending
            .remove(&destination)
            .ok_or(MigError::Protocol("no RA handshake for destination"))?;
        let g_i = session.g_i();
        let cfg = self.ra_config(env)?;
        let key = session.process_response(&cfg, g_r, &evidence)?;

        let transcript = transcript_bytes(&g_i, &g_r, &env.identity().mr_enclave);
        // The responder signed its batch advertisement into the role
        // tag, so a relay-tampered batch value fails authentication.
        let mut role_tag = b"R".to_vec();
        role_tag.extend_from_slice(&advertised_batch.to_le_bytes());
        self.authenticate_peer(&credential, destination, &transcript, &role_tag, &signature)?;

        // Channel up: authenticate ourselves and dispatch the first
        // queued migration (chunked transfers serialize per destination;
        // the rest of the queue drains as Delivered/Stored acks free the
        // channel — see `op_ack`).
        let mut signed = transcript;
        signed.extend_from_slice(b"I");
        let finish = RaFinishAuth {
            credential: self.config()?.credential.clone(),
            signature: self.signing()?.sign(&signed),
        };
        self.channels_out
            .insert(destination, SecureChannel::new(key, ChannelRole::Initiator));
        // Negotiate the link's batch size before anything is sealed:
        // min(our provisioned size, the peer's authenticated
        // advertisement) — a peer advertising 1 keeps this link on the
        // legacy per-frame TRANSFER path.
        let transfer_cfg = self.config()?.transfer;
        let negotiated = transfer_cfg.batch_size.min(advertised_batch.max(1));
        self.shapers
            .entry(destination)
            .or_insert_with(|| LinkShaper::new(&transfer_cfg))
            .set_batch(negotiated);
        let transfers = match self.dispatch_outgoing(env, destination)? {
            MeAction::None => Vec::new(),
            MeAction::SendRemote { transfer, .. } => vec![(session::FRAME_SINGLE, transfer)],
            MeAction::StreamRemote { frames, .. } => frames,
            _ => return Err(MigError::Protocol("unexpected dispatch action")),
        };

        let mut w = WireWriter::new();
        w.bytes(&finish.to_bytes());
        w.u32(transfers.len() as u32);
        for (kind, transfer) in &transfers {
            w.u8(*kind);
            w.bytes(transfer);
        }
        Ok(w.finish())
    }

    /// RA finish with access to the enclave's own identity.
    fn op_ra_finish(
        &mut self,
        env: &mut EnclaveEnv<'_>,
        input: &[u8],
    ) -> Result<Vec<u8>, MigError> {
        let mut r = WireReader::new(input);
        let source = MachineId(r.u64()?);
        let finish = RaFinishAuth::from_bytes(r.bytes()?)?;
        r.finish()?;

        let pending = self
            .ra_in_pending
            .remove(&source)
            .ok_or(MigError::Protocol("no inbound RA session"))?;
        let transcript = transcript_bytes(&pending.g_i, &pending.g_r, &env.identity().mr_enclave);
        self.authenticate_peer(
            &finish.credential,
            source,
            &transcript,
            b"I",
            &finish.signature,
        )?;
        self.channels_in.insert(
            source,
            SecureChannel::new(pending.key, ChannelRole::Responder),
        );
        Ok(vec![])
    }
}

impl EnclaveCode for MigrationEnclave {
    fn ecall(
        &mut self,
        env: &mut EnclaveEnv<'_>,
        opcode: u32,
        input: &[u8],
    ) -> Result<Vec<u8>, SgxError> {
        let result = match opcode {
            ops::KEYGEN => self.op_keygen(env),
            ops::PROVISION => self.op_provision(input),
            ops::LA_START => self.op_la_start(env, input),
            ops::LA_MSG2 => self.op_la_msg2(env, input),
            ops::LIB_MSG => self.op_lib_msg(env, input),
            ops::RA_HELLO => self.op_ra_hello(env, input),
            ops::RA_RESPONSE => self.op_ra_response(env, input),
            ops::RA_FINISH => self.op_ra_finish(env, input),
            ops::TRANSFER => self.op_transfer(env, input),
            ops::TRANSFER_BATCH => self.op_transfer_batch(env, input),
            ops::ACK => self.op_ack(env, input),
            ops::RETRY => self.op_retry(env, input),
            ops::PERSIST => self.op_persist(env),
            ops::RESTORE => self.op_restore(env, input),
            // Read-only diagnostics: a host polling these mid-stream
            // must never inflate a migration's per-trace transition
            // tally (they are not transfer work).
            ops::STREAM_STAT => {
                env.exclude_transition_attribution();
                self.op_stream_stat(input)
            }
            ops::LINK_STAT => {
                env.exclude_transition_attribution();
                self.op_link_stat(input)
            }
            ops::TELEMETRY => {
                env.exclude_transition_attribution();
                self.op_telemetry()
            }
            ops::ABORT => self.op_abort(input),
            _ => Err(MigError::Protocol("unknown opcode")),
        };
        result.map_err(SgxError::from)
    }
}
