//! The cloud operator's root of trust and Migration Enclave credentials.
//!
//! The paper's §V-B setup phase: *"the setup phase could provide the
//! Migration Enclaves with a key or a certificate from an operator of the
//! data center"*, so that enclaves are only migrated between machines of
//! the same provider (Requirement R2). Here the operator holds an Ed25519
//! root key and issues [`MeCredential`]s binding a Migration Enclave's
//! public key to its machine and placement labels; MEs exchange transcript
//! signatures under these credentials during remote attestation.

use crate::error::MigError;
use cloud_sim::machine::MachineLabels;
use mig_crypto::ed25519::{Signature, SigningKey, VerifyingKey};
use sgx_sim::machine::MachineId;
use sgx_sim::wire::{WireReader, WireWriter};
use sgx_sim::SgxError;

/// The datacenter operator: issues and signs ME credentials.
///
/// # Example
///
/// ```
/// use mig_core::operator::CloudOperator;
/// use cloud_sim::machine::MachineLabels;
/// use mig_crypto::ed25519::SigningKey;
/// use rand::SeedableRng;
/// use sgx_sim::machine::MachineId;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let operator = CloudOperator::new(&mut rng);
/// let me_key = SigningKey::random(&mut rng);
/// let cred = operator.issue_credential(
///     me_key.verifying_key(),
///     MachineId(1),
///     &MachineLabels::new("dc-1", "eu"),
/// );
/// assert!(cred.verify(&operator.root_key()).is_ok());
/// ```
pub struct CloudOperator {
    root: SigningKey,
}

impl std::fmt::Debug for CloudOperator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CloudOperator")
            .field("root_key", &self.root.verifying_key())
            .finish_non_exhaustive()
    }
}

impl CloudOperator {
    /// Creates an operator with a fresh root key.
    #[must_use]
    pub fn new(rng: &mut impl rand::RngCore) -> Self {
        CloudOperator {
            root: SigningKey::random(rng),
        }
    }

    /// The root verification key provisioned into every ME.
    #[must_use]
    pub fn root_key(&self) -> VerifyingKey {
        self.root.verifying_key()
    }

    /// Issues a credential binding `me_key` to a machine and its labels.
    #[must_use]
    pub fn issue_credential(
        &self,
        me_key: VerifyingKey,
        machine: MachineId,
        labels: &MachineLabels,
    ) -> MeCredential {
        let unsigned = MeCredential {
            me_key,
            machine,
            datacenter: labels.datacenter.clone(),
            region: labels.region.clone(),
            signature: Signature([0; 64]),
        };
        let signature = self.root.sign(&unsigned.signed_bytes());
        MeCredential {
            signature,
            ..unsigned
        }
    }
}

/// A Migration Enclave's operator-issued credential.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MeCredential {
    /// The ME's transcript-signing public key (generated inside the ME).
    pub me_key: VerifyingKey,
    /// The machine the ME serves.
    pub machine: MachineId,
    /// Datacenter label (policy input).
    pub datacenter: String,
    /// Region label (policy input).
    pub region: String,
    /// Operator root signature over all of the above.
    pub signature: Signature,
}

impl MeCredential {
    fn signed_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.array(b"sgx-migrate.cred");
        w.array(&self.me_key.0);
        w.u64(self.machine.0);
        w.bytes(self.datacenter.as_bytes());
        w.bytes(self.region.as_bytes());
        w.finish()
    }

    /// Verifies the operator signature.
    ///
    /// # Errors
    ///
    /// [`MigError::PeerAuthenticationFailed`] if the signature does not
    /// verify under `root`.
    pub fn verify(&self, root: &VerifyingKey) -> Result<(), MigError> {
        root.verify(&self.signed_bytes(), &self.signature)
            .map_err(|_| MigError::PeerAuthenticationFailed("operator credential"))
    }

    /// The credential's placement labels.
    #[must_use]
    pub fn labels(&self) -> MachineLabels {
        MachineLabels::new(&self.datacenter, &self.region)
    }

    /// Serializes the credential.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.array(&self.me_key.0);
        w.u64(self.machine.0);
        w.bytes(self.datacenter.as_bytes());
        w.bytes(self.region.as_bytes());
        w.array(&self.signature.0);
        w.finish()
    }

    /// Parses a credential.
    ///
    /// # Errors
    ///
    /// [`SgxError::Decode`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SgxError> {
        let mut r = WireReader::new(bytes);
        let cred = Self::decode(&mut r)?;
        r.finish()?;
        Ok(cred)
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, SgxError> {
        let me_key = VerifyingKey(r.array()?);
        let machine = MachineId(r.u64()?);
        let datacenter = String::from_utf8(r.bytes_vec()?).map_err(|_| SgxError::Decode)?;
        let region = String::from_utf8(r.bytes_vec()?).map_err(|_| SgxError::Decode)?;
        let signature = Signature(r.array::<64>()?);
        Ok(MeCredential {
            me_key,
            machine,
            datacenter,
            region,
            signature,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (CloudOperator, SigningKey, StdRng) {
        let mut rng = StdRng::seed_from_u64(5);
        let operator = CloudOperator::new(&mut rng);
        let me_key = SigningKey::random(&mut rng);
        (operator, me_key, rng)
    }

    #[test]
    fn issued_credential_verifies() {
        let (operator, me_key, _) = setup();
        let cred = operator.issue_credential(
            me_key.verifying_key(),
            MachineId(3),
            &MachineLabels::new("dc-1", "eu"),
        );
        cred.verify(&operator.root_key()).unwrap();
        assert_eq!(cred.machine, MachineId(3));
        assert_eq!(cred.labels(), MachineLabels::new("dc-1", "eu"));
    }

    #[test]
    fn credential_from_other_operator_rejected() {
        let (operator, me_key, mut rng) = setup();
        let rogue = CloudOperator::new(&mut rng);
        let cred = rogue.issue_credential(
            me_key.verifying_key(),
            MachineId(3),
            &MachineLabels::default(),
        );
        assert!(cred.verify(&operator.root_key()).is_err());
    }

    #[test]
    fn tampered_fields_rejected() {
        let (operator, me_key, _) = setup();
        let cred = operator.issue_credential(
            me_key.verifying_key(),
            MachineId(3),
            &MachineLabels::new("dc-1", "eu"),
        );
        let mut bad = cred.clone();
        bad.machine = MachineId(4);
        assert!(bad.verify(&operator.root_key()).is_err());

        let mut bad = cred.clone();
        bad.datacenter = "dc-evil".into();
        assert!(bad.verify(&operator.root_key()).is_err());

        let mut bad = cred;
        bad.region = "mars".into();
        assert!(bad.verify(&operator.root_key()).is_err());
    }

    #[test]
    fn credential_bytes_round_trip() {
        let (operator, me_key, _) = setup();
        let cred = operator.issue_credential(
            me_key.verifying_key(),
            MachineId(9),
            &MachineLabels::new("dc-2", "us"),
        );
        let parsed = MeCredential::from_bytes(&cred.to_bytes()).unwrap();
        assert_eq!(parsed, cred);
        parsed.verify(&operator.root_key()).unwrap();
        assert!(MeCredential::from_bytes(&cred.to_bytes()[..20]).is_err());
    }
}
