//! The **Migration Library** — the in-enclave component of the paper's
//! framework (§V-C, §VI-B).
//!
//! The library is linked into every migratable enclave and provides:
//!
//! * migratable sealing — [`MigrationLibrary::seal_migratable_data`] /
//!   [`MigrationLibrary::unseal_migratable_data`] encrypt under the
//!   Migration Sealing Key (MSK) instead of the machine-bound SGX sealing
//!   key (Listing 2's `sgx_seal_migratable_data`);
//! * migratable monotonic counters — hardware counters wrapped with a
//!   per-counter *offset* so the effective value survives migration at
//!   constant cost (Listing 2's `sgx_*_migratable_counter` family, keyed
//!   by a library-assigned counter id instead of the SGX UUID);
//! * the initialization entry point (Listing 1's `migration_init`) with
//!   the three start states of Fig. 1 — new, restored, migrated — and the
//!   migration entry point (`migration_start`);
//! * the attested channel to the local Migration Enclave.
//!
//! The library's own persistent data (Table II) is sealed with *native*
//! machine-bound sealing and handed to the untrusted host for storage;
//! the host returns it at every restart via `migration_init`.

pub mod state;

use crate::error::MigError;
use crate::msgs::{LibToMe, MeToLib};
use crate::secure_channel::{ChannelRole, SecureChannel};
use sgx_sim::cpu::KeyPolicy;
use sgx_sim::dh::{DhInitiator, DhMsg1, DhMsg3};
use sgx_sim::enclave::EnclaveEnv;
use sgx_sim::machine::MachineId;
use sgx_sim::measurement::MrEnclave;
use sgx_sim::wire::{WireReader, WireWriter};
use sgx_sim::SgxError;
use state::{LibraryState, COUNTER_SLOTS};
use std::sync::Arc;

/// AAD tag binding sealed blobs to their role as library state.
const STATE_AAD: &[u8] = b"sgx-migrate.library-state.v1";
/// Format version byte of migratable sealed blobs.
const MIGSEAL_VERSION: u8 = 1;

/// How the library should initialize (Listing 1's `init_state`; Fig. 1's
/// "new / restored / migrated" enclave start states).
#[derive(Clone, Debug)]
pub enum InitRequest {
    /// First start of this enclave's lifetime: generate a fresh MSK.
    New,
    /// Restart on the same machine: restore from the sealed Table II blob.
    Restore {
        /// The sealed library state previously handed to the host.
        blob: Vec<u8>,
    },
    /// Start as a migration target: wait for incoming migration data.
    Migrate,
}

/// The library's operating phase.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LibPhase {
    /// Normal operation; migratable primitives available.
    Operational,
    /// Initialized with [`InitRequest::Migrate`]; waiting for data.
    AwaitingMigration,
    /// State was migrated away; this incarnation is permanently inert.
    Frozen,
}

enum MeSession {
    None,
    Handshaking(DhInitiator),
    Established { channel: Box<SecureChannel> },
}

/// The Migration Library instance embedded in a migratable enclave.
///
/// All methods take the [`EnclaveEnv`] of the current ECALL, mirroring how
/// the real library runs inside the calling enclave's protection domain.
pub struct MigrationLibrary {
    expected_me: MrEnclave,
    state: Option<LibraryState>,
    phase: LibPhase,
    me_session: MeSession,
    pending_persist: Option<Vec<u8>>,
    /// Staged bulk state (the app's migratable-sealed working set),
    /// included in persistent checkpoints and shipped on migration via
    /// the streaming transfer engine when large. `Arc`-backed so the
    /// snapshot is shared, not copied, across the staging/persist paths.
    bulk_state: Option<Arc<[u8]>>,
}

impl std::fmt::Debug for MigrationLibrary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MigrationLibrary")
            .field("phase", &self.phase)
            .field(
                "has_me_session",
                &matches!(self.me_session, MeSession::Established { .. }),
            )
            .finish_non_exhaustive()
    }
}

impl MigrationLibrary {
    // ------------------------------------------------------------------
    // Initialization (Listing 1: migration_init)
    // ------------------------------------------------------------------

    /// Initializes the library (`migration_init`).
    ///
    /// `expected_me` is the measurement of the trusted Migration Enclave
    /// build; the library verifies it during local attestation (§VII-A:
    /// "The identity of the Migration Enclave is verified during the
    /// local attestation process").
    ///
    /// # Errors
    ///
    /// * [`MigError::Frozen`] if a restored blob has the freeze flag set
    ///   (this incarnation was already migrated away);
    /// * [`MigError::StaleState`] if a restored blob references hardware
    ///   counters that no longer exist (a fork attempt with stale state);
    /// * [`MigError::Sgx`] if the blob fails unsealing (wrong machine,
    ///   wrong enclave, or tampering).
    pub fn init(
        env: &mut EnclaveEnv<'_>,
        expected_me: MrEnclave,
        request: InitRequest,
    ) -> Result<Self, MigError> {
        match request {
            InitRequest::New => {
                let mut msk = [0u8; 16];
                env.random_bytes(&mut msk);
                let mut lib = MigrationLibrary {
                    expected_me,
                    state: Some(LibraryState::fresh(msk)),
                    phase: LibPhase::Operational,
                    me_session: MeSession::None,
                    pending_persist: None,
                    bulk_state: None,
                };
                lib.persist(env);
                Ok(lib)
            }
            InitRequest::Restore { blob } => {
                let (plaintext, aad) = env.unseal_data(&blob)?;
                if aad != STATE_AAD {
                    return Err(MigError::Sgx(SgxError::Decode));
                }
                // The checkpoint carries Table II plus any staged bulk
                // state (see `persist`).
                let mut r = WireReader::new(&plaintext);
                let state = LibraryState::from_bytes(r.bytes()?)?;
                let bulk_state = crate::me::read_opt(&mut r)?.map(Arc::from);
                r.finish()?;
                if state.frozen != 0 {
                    return Err(MigError::Frozen);
                }
                // Fork detection (§VII-A): every active counter in the blob
                // must still exist in the platform NVRAM. A blob captured
                // before a migration references destroyed counters.
                for id in state.active_ids() {
                    // mig-lint: allow(enclave-panic, "active_ids() yields indices into the COUNTER_SLOTS arrays")
                    match env.read_counter(&state.counter_uuids[id]) {
                        Ok(_) => {}
                        Err(SgxError::CounterNotFound) => return Err(MigError::StaleState),
                        Err(e) => return Err(MigError::Sgx(e)),
                    }
                }
                Ok(MigrationLibrary {
                    expected_me,
                    state: Some(state),
                    phase: LibPhase::Operational,
                    me_session: MeSession::None,
                    pending_persist: None,
                    bulk_state,
                })
            }
            InitRequest::Migrate => Ok(MigrationLibrary {
                expected_me,
                state: None,
                phase: LibPhase::AwaitingMigration,
                me_session: MeSession::None,
                pending_persist: None,
                bulk_state: None,
            }),
        }
    }

    /// The current phase.
    #[must_use]
    pub fn phase(&self) -> LibPhase {
        self.phase
    }

    /// Whether an attested ME session is established.
    #[must_use]
    pub fn has_me_session(&self) -> bool {
        matches!(self.me_session, MeSession::Established { .. })
    }

    /// Number of active migratable counters.
    #[must_use]
    pub fn active_counters(&self) -> usize {
        self.state.as_ref().map_or(0, |s| s.active_ids().count())
    }

    /// Takes the freshly sealed Table II blob produced by the last
    /// mutating operation, if any. The enclave wrapper hands it to the
    /// untrusted host for storage after every ECALL.
    pub fn take_persist(&mut self) -> Option<Vec<u8>> {
        self.pending_persist.take()
    }

    fn persist(&mut self, env: &mut EnclaveEnv<'_>) {
        if let Some(state) = &self.state {
            let mut w = WireWriter::new();
            w.bytes(&state.to_bytes());
            crate::me::write_opt(&mut w, self.bulk_state.as_deref());
            let blob = env.seal_data(KeyPolicy::MrEnclave, STATE_AAD, &w.finish());
            self.pending_persist = Some(blob);
        }
    }

    // ------------------------------------------------------------------
    // Bulk state (the streaming-transfer payload)
    // ------------------------------------------------------------------

    /// Stages the app's bulk state (its migratable-sealed working set)
    /// for checkpointing and migration. Replaces any previous staging and
    /// reseals the persistent checkpoint.
    ///
    /// # Errors
    ///
    /// Phase errors outside normal operation;
    /// [`MigError::Transfer`] for payloads beyond the streaming engine's
    /// [`crate::transfer::chunker::MAX_STREAM_LEN`].
    pub fn stage_bulk_state(
        &mut self,
        env: &mut EnclaveEnv<'_>,
        bytes: &[u8],
    ) -> Result<(), MigError> {
        let _ = self.operational_state()?;
        if bytes.len() as u64 > crate::transfer::chunker::MAX_STREAM_LEN {
            return Err(MigError::Transfer("bulk state exceeds stream limit"));
        }
        // Idempotent re-staging (e.g. restoring the very snapshot that
        // just migrated in) skips the O(state) reseal.
        if self.bulk_state.as_deref() == Some(bytes) {
            return Ok(());
        }
        self.bulk_state = if bytes.is_empty() {
            None
        } else {
            Some(Arc::from(bytes))
        };
        self.persist(env);
        Ok(())
    }

    /// The currently staged bulk state, if any (on a migration target,
    /// the bulk state that arrived with the migration).
    #[must_use]
    pub fn bulk_state(&self) -> Option<&[u8]> {
        self.bulk_state.as_deref()
    }

    fn state(&self) -> Result<&LibraryState, MigError> {
        self.state.as_ref().ok_or(MigError::AwaitingMigration)
    }

    fn operational_state(&self) -> Result<&LibraryState, MigError> {
        match self.phase {
            LibPhase::Operational => self.state(),
            LibPhase::AwaitingMigration => Err(MigError::AwaitingMigration),
            LibPhase::Frozen => Err(MigError::Frozen),
        }
    }

    fn operational_state_mut(&mut self) -> Result<&mut LibraryState, MigError> {
        match self.phase {
            LibPhase::Operational => self.state.as_mut().ok_or(MigError::AwaitingMigration),
            LibPhase::AwaitingMigration => Err(MigError::AwaitingMigration),
            LibPhase::Frozen => Err(MigError::Frozen),
        }
    }

    // ------------------------------------------------------------------
    // Local attestation with the Migration Enclave
    // ------------------------------------------------------------------

    /// Processes the ME's DH Msg1, producing Msg2 (library initiates the
    /// attested channel; §VI-A: "This channel is opened when the
    /// Migration Library initializes itself").
    ///
    /// # Errors
    ///
    /// [`MigError::Sgx`] on malformed input.
    pub fn me_attest_msg1(
        &mut self,
        env: &mut EnclaveEnv<'_>,
        msg1_bytes: &[u8],
    ) -> Result<Vec<u8>, MigError> {
        let msg1 = DhMsg1::from_bytes(msg1_bytes)?;
        // The responder's claimed identity is verified cryptographically
        // in msg3; checking here fails fast on misconfiguration.
        if msg1.responder.mr_enclave != self.expected_me {
            return Err(MigError::PeerAuthenticationFailed(
                "migration enclave measurement",
            ));
        }
        let (initiator, msg2) = DhInitiator::start(env, &msg1);
        self.me_session = MeSession::Handshaking(initiator);
        Ok(msg2.to_bytes())
    }

    /// Processes the ME's DH Msg3, establishing the channel.
    ///
    /// # Errors
    ///
    /// [`MigError::PeerAuthenticationFailed`] if the attested peer is not
    /// the expected Migration Enclave; [`MigError::Protocol`] if no
    /// handshake is in progress.
    pub fn me_attest_msg3(
        &mut self,
        env: &mut EnclaveEnv<'_>,
        msg3_bytes: &[u8],
    ) -> Result<(), MigError> {
        let msg3 = DhMsg3::from_bytes(msg3_bytes)?;
        let initiator = match std::mem::replace(&mut self.me_session, MeSession::None) {
            MeSession::Handshaking(initiator) => initiator,
            other => {
                self.me_session = other;
                return Err(MigError::Protocol("no ME handshake in progress"));
            }
        };
        let (key, peer) = initiator.process_msg3(env, &msg3)?;
        if peer.mr_enclave != self.expected_me {
            return Err(MigError::PeerAuthenticationFailed(
                "migration enclave measurement",
            ));
        }
        self.me_session = MeSession::Established {
            channel: Box::new(SecureChannel::new(key, ChannelRole::Initiator)),
        };
        Ok(())
    }

    fn channel(&mut self) -> Result<&mut SecureChannel, MigError> {
        match &mut self.me_session {
            MeSession::Established { channel } => Ok(channel),
            _ => Err(MigError::NoMeSession),
        }
    }

    // ------------------------------------------------------------------
    // Migratable sealing (Listing 2)
    // ------------------------------------------------------------------

    /// Seals data under the MSK (`sgx_seal_migratable_data`).
    ///
    /// Unlike native sealing, no `EGETKEY` derivation is needed — the MSK
    /// is at hand — which is why the paper measures migratable sealing as
    /// *faster* than the standard functions (Fig. 4).
    ///
    /// # Errors
    ///
    /// [`MigError::Frozen`] / [`MigError::AwaitingMigration`] outside the
    /// operational phase.
    pub fn seal_migratable_data(
        &mut self,
        env: &mut EnclaveEnv<'_>,
        aad: &[u8],
        plaintext: &[u8],
    ) -> Result<Vec<u8>, MigError> {
        let state = self.operational_state()?;
        let aead = mig_crypto::gcm::AesGcm::new(state.msk);
        let mut nonce = [0u8; 12];
        env.random_bytes(&mut nonce);

        let mut header = WireWriter::new();
        header.u8(MIGSEAL_VERSION).array(&nonce).bytes(aad);
        let header_bytes = header.finish();

        let ct = aead.seal(&nonce, &header_bytes, plaintext);
        let mut out = header_bytes;
        let mut tail = WireWriter::new();
        tail.bytes(&ct);
        out.extend_from_slice(&tail.finish());
        Ok(out)
    }

    /// Unseals migratable data (`sgx_unseal_migratable_data`), returning
    /// `(plaintext, aad)`.
    ///
    /// # Errors
    ///
    /// [`MigError::Sgx`] (MAC mismatch) on tampering or a blob sealed
    /// under a different MSK; phase errors as for sealing.
    pub fn unseal_migratable_data(
        &mut self,
        _env: &mut EnclaveEnv<'_>,
        blob: &[u8],
    ) -> Result<(Vec<u8>, Vec<u8>), MigError> {
        let state = self.operational_state()?;
        let mut r = WireReader::new(blob);
        let version = r.u8()?;
        if version != MIGSEAL_VERSION {
            return Err(MigError::Sgx(SgxError::Decode));
        }
        let nonce: [u8; 12] = r.array()?;
        let aad = r.bytes_vec()?;
        let ct = r.bytes_vec()?;
        r.finish()?;

        let mut header = WireWriter::new();
        header.u8(MIGSEAL_VERSION).array(&nonce).bytes(&aad);
        let header_bytes = header.finish();

        let aead = mig_crypto::gcm::AesGcm::new(state.msk);
        let plaintext = aead
            .open(&nonce, &header_bytes, &ct)
            .map_err(|_| MigError::Sgx(SgxError::MacMismatch))?;
        Ok((plaintext, aad))
    }

    // ------------------------------------------------------------------
    // Migratable monotonic counters (Listing 2)
    // ------------------------------------------------------------------

    /// Creates a migratable counter (`sgx_create_migratable_counter`),
    /// returning the library-assigned counter id and the initial
    /// effective value (0).
    ///
    /// Mutates the Table II state, so the internal buffer is resealed
    /// (the extra cost the paper attributes to migratable create, §VII-B).
    ///
    /// # Errors
    ///
    /// [`MigError::Sgx`] ([`SgxError::CounterQuotaExceeded`]) past 256
    /// counters; phase errors as above.
    pub fn create_migratable_counter(
        &mut self,
        env: &mut EnclaveEnv<'_>,
    ) -> Result<(u8, u32), MigError> {
        let state = self.operational_state_mut()?;
        let id = state
            .counters_active
            .iter()
            .position(|active| !active)
            .ok_or(MigError::Sgx(SgxError::CounterQuotaExceeded))?;
        let (uuid, value) = env.create_counter()?;
        let state = self.operational_state_mut()?;
        state.counters_active[id] = true; // mig-lint: allow(enclave-panic, "id is a position() into this same 256-slot array")
        state.counter_uuids[id] = uuid; // mig-lint: allow(enclave-panic, "id is a position() into this same 256-slot array")
        state.counter_offsets[id] = 0; // mig-lint: allow(enclave-panic, "id is a position() into this same 256-slot array")
        self.persist(env);
        Ok((id as u8, value))
    }

    /// Destroys a migratable counter (`sgx_destroy_migratable_counter`).
    ///
    /// # Errors
    ///
    /// [`MigError::UnknownCounterId`] for inactive ids; underlying
    /// platform errors propagate.
    pub fn destroy_migratable_counter(
        &mut self,
        env: &mut EnclaveEnv<'_>,
        id: u8,
    ) -> Result<(), MigError> {
        let state = self.operational_state()?;
        // mig-lint: allow(enclave-panic, "a u8 id always indexes within the 256-slot arrays")
        if !state.counters_active[id as usize] {
            return Err(MigError::UnknownCounterId);
        }
        let uuid = state.counter_uuids[id as usize]; // mig-lint: allow(enclave-panic, "a u8 id always indexes within the 256-slot arrays")
        env.destroy_counter(&uuid)?;
        let state = self.operational_state_mut()?;
        state.counters_active[id as usize] = false; // mig-lint: allow(enclave-panic, "a u8 id always indexes within the 256-slot arrays")
        state.counter_offsets[id as usize] = 0; // mig-lint: allow(enclave-panic, "a u8 id always indexes within the 256-slot arrays")
        self.persist(env);
        Ok(())
    }

    /// Increments a migratable counter (`sgx_increment_migratable_counter`),
    /// returning the new *effective* value (hardware + offset), with the
    /// §VI-B overflow check.
    ///
    /// # Errors
    ///
    /// [`MigError::UnknownCounterId`], [`MigError::EffectiveCounterOverflow`],
    /// or platform errors (a destroyed counter surfaces
    /// [`SgxError::CounterNotFound`] — the fork-detection signal).
    pub fn increment_migratable_counter(
        &mut self,
        env: &mut EnclaveEnv<'_>,
        id: u8,
    ) -> Result<u32, MigError> {
        let state = self.operational_state()?;
        // mig-lint: allow(enclave-panic, "a u8 id always indexes within the 256-slot arrays")
        if !state.counters_active[id as usize] {
            return Err(MigError::UnknownCounterId);
        }
        let uuid = state.counter_uuids[id as usize]; // mig-lint: allow(enclave-panic, "a u8 id always indexes within the 256-slot arrays")
        let offset = state.counter_offsets[id as usize]; // mig-lint: allow(enclave-panic, "a u8 id always indexes within the 256-slot arrays")
        let value = env.increment_counter(&uuid)?;
        value
            .checked_add(offset)
            .ok_or(MigError::EffectiveCounterOverflow)
    }

    /// Reads a migratable counter's effective value
    /// (`sgx_read_migratable_counter`).
    ///
    /// # Errors
    ///
    /// As for [`MigrationLibrary::increment_migratable_counter`].
    pub fn read_migratable_counter(
        &mut self,
        env: &mut EnclaveEnv<'_>,
        id: u8,
    ) -> Result<u32, MigError> {
        let state = self.operational_state()?;
        // mig-lint: allow(enclave-panic, "a u8 id always indexes within the 256-slot arrays")
        if !state.counters_active[id as usize] {
            return Err(MigError::UnknownCounterId);
        }
        let uuid = state.counter_uuids[id as usize]; // mig-lint: allow(enclave-panic, "a u8 id always indexes within the 256-slot arrays")
        let offset = state.counter_offsets[id as usize]; // mig-lint: allow(enclave-panic, "a u8 id always indexes within the 256-slot arrays")
        let value = env.read_counter(&uuid)?;
        value
            .checked_add(offset)
            .ok_or(MigError::EffectiveCounterOverflow)
    }

    // ------------------------------------------------------------------
    // Migration (Listing 1: migration_start; Fig. 2)
    // ------------------------------------------------------------------

    /// Starts an outgoing migration (`migration_start`).
    ///
    /// Per §V-C, in order:
    /// 1. freezes the library (further operations refused) and reseals
    ///    the Table II blob with the freeze flag set;
    /// 2. computes the effective value of every active counter;
    /// 3. **destroys all hardware counters**, requiring success for each
    ///    (fork prevention: obsolete blobs now reference dead counters);
    /// 4. emits the encrypted `MigrateRequest` for the local ME.
    ///
    /// Returns the channel ciphertext the host must relay to the ME. The
    /// new (frozen) persistent blob is available via
    /// [`MigrationLibrary::take_persist`] and must be stored before the
    /// request is relayed.
    ///
    /// # Errors
    ///
    /// [`MigError::NoMeSession`] without an attested ME channel; phase
    /// errors; platform counter errors.
    pub fn start_migration(
        &mut self,
        env: &mut EnclaveEnv<'_>,
        destination: MachineId,
    ) -> Result<Vec<u8>, MigError> {
        // Validate phase and session before mutating anything.
        let _ = self.operational_state()?;
        if !self.has_me_session() {
            return Err(MigError::NoMeSession);
        }

        // (2) Effective values, with overflow checks.
        let state = self.state.as_ref().ok_or(MigError::NotInitialized)?;
        let mut effective = [0u32; COUNTER_SLOTS];
        let active: Vec<usize> = state.active_ids().collect();
        let uuids = state.counter_uuids;
        let offsets = state.counter_offsets;
        for &id in &active {
            let value = env.read_counter(&uuids[id])?; // mig-lint: allow(enclave-panic, "active_ids() yields indices into the COUNTER_SLOTS arrays")
            effective[id] = value // mig-lint: allow(enclave-panic, "active_ids() yields indices into the COUNTER_SLOTS arrays")
                .checked_add(offsets[id]) // mig-lint: allow(enclave-panic, "active_ids() yields indices into the COUNTER_SLOTS arrays")
                .ok_or(MigError::EffectiveCounterOverflow)?;
        }

        // (1) Freeze and persist before the counters disappear, so a crash
        // mid-migration leaves a blob that refuses to operate rather than
        // one that silently lost its counters.
        let state = self.state.as_mut().ok_or(MigError::NotInitialized)?;
        state.frozen = 1;
        self.phase = LibPhase::Frozen;
        self.persist(env);

        // (3) Destroy the hardware counters; each must succeed (§VI-B:
        // "The process does not proceed until it receives the SGX_SUCCESS
        // return code").
        for &id in &active {
            env.destroy_counter(&uuids[id])?; // mig-lint: allow(enclave-panic, "active_ids() yields indices into the COUNTER_SLOTS arrays")
        }

        // (4) Build and encrypt the Table I payload plus the staged bulk
        // state; above the ME's streaming threshold the bulk bytes will
        // be chunked over the remote channel rather than sent in one
        // message.
        let state = self.state.as_ref().ok_or(MigError::NotInitialized)?;
        let data = state.to_migration_data(&effective)?;
        let msg = LibToMe::MigrateRequest {
            destination,
            data,
            state: self.bulk_state.as_deref().unwrap_or_default().to_vec(),
        };
        let plaintext = msg.to_bytes();
        let channel = self.channel()?;
        Ok(channel.seal(&plaintext))
    }

    /// Processes an encrypted ME→library message.
    ///
    /// For [`MeToLib::IncomingMigration`] (destination side, phase
    /// [`LibPhase::AwaitingMigration`]): installs the MSK and counter
    /// offsets, creates fresh hardware counters (value 0) for every
    /// active id, reseals the Table II blob, and returns the encrypted
    /// `DONE` confirmation to relay back.
    ///
    /// For [`MeToLib::MigrationComplete`] (source side): returns `None`.
    ///
    /// # Errors
    ///
    /// Channel/authentication errors; [`MigError::Protocol`] for
    /// messages that do not fit the current phase.
    pub fn receive_me_message(
        &mut self,
        env: &mut EnclaveEnv<'_>,
        ciphertext: &[u8],
    ) -> Result<Option<Vec<u8>>, MigError> {
        let plaintext = self.channel()?.open(ciphertext)?;
        match MeToLib::from_bytes(&plaintext)? {
            MeToLib::IncomingMigration { data, state } => {
                // Idempotent re-delivery: if the ME restarted after we
                // installed but before our DONE arrived, the same payload
                // is delivered again — acknowledge without reinstalling.
                if self.phase == LibPhase::Operational {
                    let state = self
                        .state
                        .as_ref()
                        .ok_or(MigError::Protocol("operational phase without state"))?;
                    let same = mig_crypto::ct::ct_eq(&state.msk, &data.msk)
                        && state.counters_active == data.counters_active
                        && state.counter_offsets == data.counter_values;
                    if same {
                        let done = LibToMe::Done.to_bytes();
                        return Ok(Some(self.channel()?.seal(&done)));
                    }
                    return Err(MigError::Protocol(
                        "incoming migration conflicts with installed state",
                    ));
                }
                if self.phase != LibPhase::AwaitingMigration {
                    return Err(MigError::Protocol(
                        "incoming migration while not awaiting one",
                    ));
                }
                let mut lib_state = LibraryState::from_migration_data(&data);
                // Fresh hardware counters start at 0; the transferred
                // effective values live on as offsets.
                for id in 0..COUNTER_SLOTS {
                    // mig-lint: allow(enclave-panic, "id ranges over 0..COUNTER_SLOTS")
                    if lib_state.counters_active[id] {
                        let (uuid, _zero) = env.create_counter()?;
                        lib_state.counter_uuids[id] = uuid; // mig-lint: allow(enclave-panic, "id ranges over 0..COUNTER_SLOTS")
                    }
                }
                self.state = Some(lib_state);
                self.phase = LibPhase::Operational;
                // The migrated bulk state becomes this incarnation's
                // staged state: the app retrieves it to restore its
                // working set, and a further migration re-ships it.
                self.bulk_state = if state.is_empty() {
                    None
                } else {
                    Some(state.into())
                };
                self.persist(env);
                let done = LibToMe::Done.to_bytes();
                Ok(Some(self.channel()?.seal(&done)))
            }
            MeToLib::MigrationComplete => Ok(None),
        }
    }
}
