//! The Migration Library's data structures — Tables I and II of the paper,
//! reproduced field for field.
//!
//! [`MigrationData`] (Table I) is what travels to the destination: which
//! counters are active, their *effective values* (used as the next
//! offsets), and the Migration Sealing Key. [`LibraryState`] (Table II) is
//! the library's local persistent blob: the freeze flag, the counter
//! bookkeeping (including the machine-specific SGX counter UUIDs, which
//! never migrate), the offsets, and the MSK. The blob is sealed with the
//! *native* machine-bound sealing before it leaves the enclave.

use crate::error::MigError;
use sgx_sim::counters::CounterUuid;
use sgx_sim::wire::{WireReader, WireWriter};
use sgx_sim::SgxError;

/// Number of counter slots (the SGX per-enclave limit the library wraps;
/// §VI-B: "the Migration Library is still limited to the same 256
/// monotonic counters").
pub const COUNTER_SLOTS: usize = 256;

/// Table I — the data transferred during migration.
///
/// | Name            | Type          | Description          |
/// |-----------------|---------------|----------------------|
/// | counters active | `bool[256]`   | Shows used counters  |
/// | counter values  | `uint32[256]` | Used as next offset  |
/// | MSK             | 128-bit key   | Used by migratable seal |
#[derive(Clone, PartialEq, Eq)]
pub struct MigrationData {
    /// Which library counter ids are in use.
    pub counters_active: [bool; COUNTER_SLOTS],
    /// Effective counter values at migration time; the destination
    /// installs them as its counter offsets.
    pub counter_values: [u32; COUNTER_SLOTS],
    /// The Migration Sealing Key.
    pub msk: [u8; 16],
}

impl std::fmt::Debug for MigrationData {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print the MSK.
        f.debug_struct("MigrationData")
            .field(
                "active",
                &self.counters_active.iter().filter(|a| **a).count(),
            )
            .finish_non_exhaustive()
    }
}

impl Drop for MigrationData {
    fn drop(&mut self) {
        // The MSK lets anyone unseal every migratable blob of the enclave.
        mig_crypto::zeroize::zeroize_bytes(&mut self.msk);
    }
}

impl MigrationData {
    /// Wire size in bytes: 256 activity flags + 256 × u32 values + MSK.
    pub const WIRE_SIZE: usize = COUNTER_SLOTS + 4 * COUNTER_SLOTS + 16;

    /// Serializes (fixed size, [`Self::WIRE_SIZE`] bytes).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        for active in &self.counters_active {
            w.u8(u8::from(*active));
        }
        for value in &self.counter_values {
            w.u32(*value);
        }
        w.array(&self.msk);
        w.finish()
    }

    /// Parses migration data.
    ///
    /// # Errors
    ///
    /// [`SgxError::Decode`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SgxError> {
        let mut r = WireReader::new(bytes);
        let mut counters_active = [false; COUNTER_SLOTS];
        for slot in &mut counters_active {
            *slot = match r.u8()? {
                0 => false,
                1 => true,
                _ => return Err(SgxError::Decode),
            };
        }
        let mut counter_values = [0u32; COUNTER_SLOTS];
        for value in &mut counter_values {
            *value = r.u32()?;
        }
        let msk: [u8; 16] = r.array()?;
        r.finish()?;
        Ok(MigrationData {
            counters_active,
            counter_values,
            msk,
        })
    }
}

/// Table II — the library's local persistent data.
///
/// | Name            | Type               | Description              |
/// |-----------------|--------------------|--------------------------|
/// | frozen          | `uint8`            | Freeze flag for migration |
/// | counters active | `bool[256]`        | Shows used counters      |
/// | counter uuids   | `SGX counter[256]` | UUIDs of the SGX counters |
/// | counter offsets | `uint32[256]`      | Offsets of the counters  |
/// | MSK             | 128-bit key        | Used by migratable seal  |
#[derive(Clone, PartialEq, Eq)]
pub struct LibraryState {
    /// Non-zero once the enclave's state has been migrated away; a blob
    /// with this flag set must never be accepted for operation again.
    pub frozen: u8,
    /// Which library counter ids are in use.
    pub counters_active: [bool; COUNTER_SLOTS],
    /// Machine-specific SGX counter UUIDs (meaningless after migration).
    pub counter_uuids: [CounterUuid; COUNTER_SLOTS],
    /// Per-counter migration offsets (effective = hardware + offset).
    pub counter_offsets: [u32; COUNTER_SLOTS],
    /// The Migration Sealing Key.
    pub msk: [u8; 16],
}

impl std::fmt::Debug for LibraryState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LibraryState")
            .field("frozen", &self.frozen)
            .field(
                "active",
                &self.counters_active.iter().filter(|a| **a).count(),
            )
            .finish_non_exhaustive()
    }
}

const NULL_UUID: CounterUuid = CounterUuid {
    slot: 0,
    nonce: [0; 8],
};

impl Drop for LibraryState {
    fn drop(&mut self) {
        mig_crypto::zeroize::zeroize_bytes(&mut self.msk);
    }
}

impl LibraryState {
    /// Wire size in bytes: frozen + flags + 9-byte UUIDs + offsets + MSK.
    pub const WIRE_SIZE: usize = 1 + COUNTER_SLOTS + 9 * COUNTER_SLOTS + 4 * COUNTER_SLOTS + 16;

    /// A fresh state: nothing active, not frozen, caller-provided MSK.
    #[must_use]
    pub fn fresh(msk: [u8; 16]) -> Self {
        LibraryState {
            frozen: 0,
            counters_active: [false; COUNTER_SLOTS],
            counter_uuids: [NULL_UUID; COUNTER_SLOTS],
            counter_offsets: [0; COUNTER_SLOTS],
            msk,
        }
    }

    /// Builds the state a destination enclave installs from received
    /// migration data: offsets take the transferred effective values;
    /// UUIDs are cleared (fresh hardware counters are created next).
    #[must_use]
    pub fn from_migration_data(data: &MigrationData) -> Self {
        LibraryState {
            frozen: 0,
            counters_active: data.counters_active,
            counter_uuids: [NULL_UUID; COUNTER_SLOTS],
            counter_offsets: data.counter_values,
            msk: data.msk,
        }
    }

    /// Extracts the Table I migration payload, given the current
    /// *effective* values of all active counters.
    ///
    /// # Errors
    ///
    /// Never fails today; returns `Result` for interface stability with
    /// the overflow checks performed by the caller when computing
    /// effective values.
    pub fn to_migration_data(
        &self,
        effective_values: &[u32; COUNTER_SLOTS],
    ) -> Result<MigrationData, MigError> {
        Ok(MigrationData {
            counters_active: self.counters_active,
            counter_values: *effective_values,
            msk: self.msk,
        })
    }

    /// Serializes (fixed size, [`Self::WIRE_SIZE`] bytes).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.u8(self.frozen);
        for active in &self.counters_active {
            w.u8(u8::from(*active));
        }
        for uuid in &self.counter_uuids {
            uuid.encode(&mut w);
        }
        for offset in &self.counter_offsets {
            w.u32(*offset);
        }
        w.array(&self.msk);
        w.finish()
    }

    /// Parses a library state blob (after unsealing).
    ///
    /// # Errors
    ///
    /// [`SgxError::Decode`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SgxError> {
        let mut r = WireReader::new(bytes);
        let frozen = r.u8()?;
        let mut counters_active = [false; COUNTER_SLOTS];
        for slot in &mut counters_active {
            *slot = match r.u8()? {
                0 => false,
                1 => true,
                _ => return Err(SgxError::Decode),
            };
        }
        let mut counter_uuids = [NULL_UUID; COUNTER_SLOTS];
        for uuid in &mut counter_uuids {
            *uuid = CounterUuid::decode(&mut r)?;
        }
        let mut counter_offsets = [0u32; COUNTER_SLOTS];
        for offset in &mut counter_offsets {
            *offset = r.u32()?;
        }
        let msk: [u8; 16] = r.array()?;
        r.finish()?;
        Ok(LibraryState {
            frozen,
            counters_active,
            counter_uuids,
            counter_offsets,
            msk,
        })
    }

    /// Indices of all active counters.
    pub fn active_ids(&self) -> impl Iterator<Item = usize> + '_ {
        self.counters_active
            .iter()
            .enumerate()
            .filter_map(|(i, active)| active.then_some(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_state() -> LibraryState {
        let mut state = LibraryState::fresh([0xAA; 16]);
        state.counters_active[3] = true;
        state.counter_uuids[3] = CounterUuid {
            slot: 7,
            nonce: [1, 2, 3, 4, 5, 6, 7, 8],
        };
        state.counter_offsets[3] = 42;
        state.counters_active[200] = true;
        state.counter_uuids[200] = CounterUuid {
            slot: 9,
            nonce: [9; 8],
        };
        state.counter_offsets[200] = 7;
        state
    }

    #[test]
    fn migration_data_wire_size_matches_table_i() {
        // Table I: bool[256] + uint32[256] + 128-bit key.
        assert_eq!(MigrationData::WIRE_SIZE, 256 + 1024 + 16);
        let data = MigrationData {
            counters_active: [false; COUNTER_SLOTS],
            counter_values: [0; COUNTER_SLOTS],
            msk: [0; 16],
        };
        assert_eq!(data.to_bytes().len(), MigrationData::WIRE_SIZE);
    }

    #[test]
    fn library_state_wire_size_matches_table_ii() {
        // Table II: uint8 + bool[256] + uuid[256] (9B each) + uint32[256] + key.
        assert_eq!(LibraryState::WIRE_SIZE, 1 + 256 + 2304 + 1024 + 16);
        assert_eq!(sample_state().to_bytes().len(), LibraryState::WIRE_SIZE);
    }

    #[test]
    fn migration_data_round_trip() {
        let mut data = MigrationData {
            counters_active: [false; COUNTER_SLOTS],
            counter_values: [0; COUNTER_SLOTS],
            msk: [0x77; 16],
        };
        data.counters_active[0] = true;
        data.counter_values[0] = 123;
        data.counters_active[255] = true;
        data.counter_values[255] = u32::MAX;
        let parsed = MigrationData::from_bytes(&data.to_bytes()).unwrap();
        assert_eq!(parsed, data);
    }

    #[test]
    fn library_state_round_trip() {
        let state = sample_state();
        let parsed = LibraryState::from_bytes(&state.to_bytes()).unwrap();
        assert_eq!(parsed, state);
    }

    #[test]
    fn malformed_bool_rejected() {
        let mut bytes = sample_state().to_bytes();
        bytes[1] = 2; // invalid bool for counters_active[0]
        assert_eq!(
            LibraryState::from_bytes(&bytes).unwrap_err(),
            SgxError::Decode
        );
    }

    #[test]
    fn truncation_rejected() {
        let bytes = sample_state().to_bytes();
        assert!(LibraryState::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        let data = MigrationData {
            counters_active: [false; COUNTER_SLOTS],
            counter_values: [0; COUNTER_SLOTS],
            msk: [0; 16],
        };
        let bytes = data.to_bytes();
        assert!(MigrationData::from_bytes(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn from_migration_data_installs_offsets_and_clears_uuids() {
        let mut data = MigrationData {
            counters_active: [false; COUNTER_SLOTS],
            counter_values: [0; COUNTER_SLOTS],
            msk: [0xCC; 16],
        };
        data.counters_active[5] = true;
        data.counter_values[5] = 77;

        let state = LibraryState::from_migration_data(&data);
        assert_eq!(state.frozen, 0);
        assert!(state.counters_active[5]);
        assert_eq!(state.counter_offsets[5], 77);
        assert_eq!(state.counter_uuids[5], NULL_UUID);
        assert_eq!(state.msk, [0xCC; 16]);
    }

    #[test]
    fn to_migration_data_uses_effective_values() {
        let state = sample_state();
        let mut effective = [0u32; COUNTER_SLOTS];
        effective[3] = 50; // offset 42 + hardware 8, say
        effective[200] = 7;
        let data = state.to_migration_data(&effective).unwrap();
        assert_eq!(data.counter_values[3], 50);
        assert_eq!(data.counter_values[200], 7);
        assert_eq!(data.counters_active, state.counters_active);
        assert_eq!(data.msk, state.msk);
    }

    #[test]
    fn active_ids_enumerates_only_active() {
        let state = sample_state();
        let ids: Vec<usize> = state.active_ids().collect();
        assert_eq!(ids, vec![3, 200]);
    }

    #[test]
    fn debug_never_leaks_msk() {
        let state = sample_state();
        let dbg = format!("{state:?}");
        assert!(!dbg.contains("aa"), "MSK bytes must not appear: {dbg}");
        let data = MigrationData {
            counters_active: [false; COUNTER_SLOTS],
            counter_values: [0; COUNTER_SLOTS],
            msk: [0xBB; 16],
        };
        let dbg = format!("{data:?}");
        assert!(!dbg.contains("bb"), "MSK bytes must not appear: {dbg}");
    }
}
