//! Migration policies enforced by the Migration Enclave.
//!
//! The paper proposes (§V-B, §VIII) that operator authentication "can also
//! be used to limit the migration of enclaves to a certain subset of
//! servers, for example to achieve regulatory compliance", and names
//! per-enclave policies (geographic restriction) as future work. This
//! module implements both: a [`MigrationPolicy`] is provisioned into each
//! ME and checked against the *peer's authenticated credential* during
//! remote attestation, after the operator signature has been verified.

use crate::error::MigError;
use crate::operator::MeCredential;
use sgx_sim::wire::{WireReader, WireWriter};
use sgx_sim::SgxError;

/// Constraints on which machines an enclave may migrate between.
///
/// The default policy (`same_operator_only`) accepts any machine whose ME
/// holds a valid operator credential — the paper's base requirement R2.
///
/// # Example
///
/// ```
/// use mig_core::policy::MigrationPolicy;
///
/// let policy = MigrationPolicy::same_datacenter();
/// assert!(policy.require_same_datacenter);
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct MigrationPolicy {
    /// Peer must be in the same datacenter as this ME.
    pub require_same_datacenter: bool,
    /// If non-empty, the peer's region must appear in this list.
    pub allowed_regions: Vec<String>,
}

impl MigrationPolicy {
    /// Accept any machine of the same operator (base R2 policy).
    #[must_use]
    pub fn same_operator_only() -> Self {
        MigrationPolicy::default()
    }

    /// Restrict migration to the local datacenter.
    #[must_use]
    pub fn same_datacenter() -> Self {
        MigrationPolicy {
            require_same_datacenter: true,
            allowed_regions: Vec::new(),
        }
    }

    /// Restrict migration to an explicit region allow-list (e.g. for
    /// regulatory compliance, the paper's §VIII example).
    #[must_use]
    pub fn regions(allowed: &[&str]) -> Self {
        MigrationPolicy {
            require_same_datacenter: false,
            allowed_regions: allowed.iter().map(|s| (*s).to_string()).collect(),
        }
    }

    /// Checks the *authenticated* peer credential against this policy.
    ///
    /// `own` is the local ME's credential (for same-datacenter checks).
    /// Callers must have verified both credentials' operator signatures
    /// first; this function only evaluates placement.
    ///
    /// # Errors
    ///
    /// [`MigError::PolicyViolation`] describing the failed constraint.
    pub fn check(&self, own: &MeCredential, peer: &MeCredential) -> Result<(), MigError> {
        if self.require_same_datacenter && own.datacenter != peer.datacenter {
            return Err(MigError::PolicyViolation(format!(
                "peer datacenter {:?} differs from local {:?}",
                peer.datacenter, own.datacenter
            )));
        }
        if !self.allowed_regions.is_empty() && !self.allowed_regions.contains(&peer.region) {
            return Err(MigError::PolicyViolation(format!(
                "peer region {:?} not in allow-list {:?}",
                peer.region, self.allowed_regions
            )));
        }
        Ok(())
    }

    /// Serializes the policy (provisioning input to the ME).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.u8(u8::from(self.require_same_datacenter));
        w.u32(self.allowed_regions.len() as u32);
        for region in &self.allowed_regions {
            w.bytes(region.as_bytes());
        }
        w.finish()
    }

    /// Parses a policy.
    ///
    /// # Errors
    ///
    /// [`SgxError::Decode`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SgxError> {
        let mut r = WireReader::new(bytes);
        let require_same_datacenter = r.u8()? != 0;
        let n = r.u32()? as usize;
        if n > 1024 {
            return Err(SgxError::Decode);
        }
        let mut allowed_regions = Vec::with_capacity(n);
        for _ in 0..n {
            allowed_regions.push(String::from_utf8(r.bytes_vec()?).map_err(|_| SgxError::Decode)?);
        }
        r.finish()?;
        Ok(MigrationPolicy {
            require_same_datacenter,
            allowed_regions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::CloudOperator;
    use cloud_sim::machine::MachineLabels;
    use mig_crypto::ed25519::SigningKey;
    use rand::SeedableRng;
    use sgx_sim::machine::MachineId;

    fn cred(operator: &CloudOperator, machine: u64, dc: &str, region: &str) -> MeCredential {
        let mut rng = rand::rngs::StdRng::seed_from_u64(machine);
        let key = SigningKey::random(&mut rng);
        operator.issue_credential(
            key.verifying_key(),
            MachineId(machine),
            &MachineLabels::new(dc, region),
        )
    }

    fn operator() -> CloudOperator {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        CloudOperator::new(&mut rng)
    }

    #[test]
    fn base_policy_accepts_any_credentialed_peer() {
        let op = operator();
        let own = cred(&op, 1, "dc-1", "eu");
        let peer = cred(&op, 2, "dc-9", "ap");
        MigrationPolicy::same_operator_only()
            .check(&own, &peer)
            .unwrap();
    }

    #[test]
    fn same_datacenter_enforced() {
        let op = operator();
        let own = cred(&op, 1, "dc-1", "eu");
        let same = cred(&op, 2, "dc-1", "eu");
        let other = cred(&op, 3, "dc-2", "eu");
        let policy = MigrationPolicy::same_datacenter();
        policy.check(&own, &same).unwrap();
        let err = policy.check(&own, &other).unwrap_err();
        assert!(matches!(err, MigError::PolicyViolation(_)));
    }

    #[test]
    fn region_allow_list_enforced() {
        let op = operator();
        let own = cred(&op, 1, "dc-1", "eu");
        let eu_peer = cred(&op, 2, "dc-2", "eu");
        let us_peer = cred(&op, 3, "dc-3", "us");
        let policy = MigrationPolicy::regions(&["eu", "uk"]);
        policy.check(&own, &eu_peer).unwrap();
        assert!(policy.check(&own, &us_peer).is_err());
    }

    #[test]
    fn combined_constraints() {
        let op = operator();
        let own = cred(&op, 1, "dc-1", "eu");
        let policy = MigrationPolicy {
            require_same_datacenter: true,
            allowed_regions: vec!["eu".into()],
        };
        let good = cred(&op, 2, "dc-1", "eu");
        let wrong_dc = cred(&op, 3, "dc-2", "eu");
        policy.check(&own, &good).unwrap();
        assert!(policy.check(&own, &wrong_dc).is_err());
    }

    #[test]
    fn policy_bytes_round_trip() {
        for policy in [
            MigrationPolicy::same_operator_only(),
            MigrationPolicy::same_datacenter(),
            MigrationPolicy::regions(&["eu", "us", "ap"]),
        ] {
            let parsed = MigrationPolicy::from_bytes(&policy.to_bytes()).unwrap();
            assert_eq!(parsed, policy);
        }
        assert!(MigrationPolicy::from_bytes(&[1]).is_err());
    }
}
