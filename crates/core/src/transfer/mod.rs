//! The **state-transfer subsystem**: checkpointing and chunked,
//! resumable, integrity-chained streaming of large persistent state
//! between Migration Enclaves (the CTR-style extension of the paper's
//! single-message transfer).
//!
//! The DSN'18 protocol hands the destination one `transfer data` message
//! (Fig. 2) — fine for the 1.3 KiB Table I payload, hopeless for an
//! enclave whose migratable-sealed working set is megabytes. Following
//! *CTR: Checkpoint, Transfer, and Restore for Secure Enclaves*
//! (Nakatsuka et al.) this module adds:
//!
//! * [`checkpoint`] — a durable, generation-numbered checkpoint store on
//!   the untrusted per-machine disk ([`cloud_sim::disk::UntrustedDisk`]).
//!   Application hosts write the library's sealed Table II blob (plus
//!   any staged bulk state) there periodically; Migration Enclave hosts
//!   checkpoint transfer progress so a management-VM crash mid-migration
//!   resumes instead of restarting.
//! * [`chunker`] — the chunking/streaming engine: a source-side
//!   [`chunker::ChunkStream`] that splits the payload into fixed-size
//!   chunks bound together by an HMAC chain keyed from a secret
//!   per-transfer nonce, and a destination-side
//!   [`chunker::ChunkAssembler`] that verifies the chain chunk by chunk,
//!   survives serialization across enclave restarts, and reports the
//!   next index it needs so a resumed sender can continue from the last
//!   acknowledged chunk.
//!
//! * [`delta`] — dirty-page delta checkpoints: per-page digest tables,
//!   a compact [`delta::DeltaManifest`], and `diff`/`apply` so a repeat
//!   migration ships only the pages that changed since the generation
//!   the destination already holds, falling back to a full stream when
//!   the base is missing or the delta is too large a fraction of the
//!   state ([`TransferConfig::max_delta_percent`]).
//!
//! The wire messages (`ChunkStart` / `DeltaStart` / `Chunk` / `ChunkAck`
//! / `Resume` / `ResumeRequest` / `DeltaNack`) live in
//! [`crate::msgs::MeToMe`]; the Migration Enclave ([`crate::me`]) drives
//! the engine with windowed, pipelined sends over the existing attested
//! [`crate::secure_channel`], sizing chunks and windows through the
//! per-destination [`AdaptiveLink`] controller. Up to
//! [`TransferConfig::max_streams`] transfers towards one destination
//! run **concurrently**, keyed by their per-transfer nonce and
//! multiplexed on the shared channel; the [`DrrScheduler`] apportions
//! the link window among them (deficit round-robin) so a large-state
//! migration cannot starve a small one. State at or below
//! [`TransferConfig::stream_threshold`] still travels in the original
//! single-shot `Transfer` message (the small-state fast path) when the
//! link is quiet.

pub mod checkpoint;
pub mod chunker;
pub mod delta;

pub use crate::me::wire::{AdaptiveLink, DrrScheduler, StreamDemand};

use cloud_sim::network::LinkProfile;
use sgx_sim::wire::{WireReader, WireWriter};
use sgx_sim::SgxError;
use std::time::Duration;

/// Default streaming threshold: state strictly larger than this streams.
pub const DEFAULT_STREAM_THRESHOLD: u32 = 64 * 1024;
/// Default chunk size of the streaming engine.
pub const DEFAULT_CHUNK_SIZE: u32 = 256 * 1024;
/// Default send window (chunks in flight before the first ack).
pub const DEFAULT_WINDOW: u32 = 8;
/// Default ceiling the adaptive controller may grow the window to.
pub const DEFAULT_MAX_WINDOW: u32 = 32;
/// Default largest delta payload, in percent of the full state, still
/// shipped as a delta (larger deltas fall back to a full stream).
pub const DEFAULT_MAX_DELTA_PERCENT: u32 = 50;
/// Default cap on concurrently multiplexed chunk streams per
/// destination; further migrations queue until a stream completes.
pub const DEFAULT_MAX_STREAMS: u32 = 8;
/// Default byte budget of the ME's per-measurement generation cache
/// (delta bases). Least-recently-used entries are evicted beyond it;
/// evicted bases simply fall back to full streams via `DeltaNack`.
pub const DEFAULT_CACHE_BUDGET: u64 = 256 * 1024 * 1024;
/// Minimum accepted chunk size. Keeps every chunk ciphertext larger
/// than the RA handshake-finish frame, so chunks sent in the same step
/// as the finish cannot overtake it on the size-ordered simulated
/// network. Also the floor the adaptive controller shrinks to.
pub const MIN_CHUNK_SIZE: u32 = 4096;
/// Largest chunk size [`TransferConfig::for_link`] will derive.
pub const MAX_CHUNK_SIZE: u32 = 4 * 1024 * 1024;
/// Default virtual-time deadline for one supervised migration; past it
/// the supervisor aborts with the source still authoritative.
pub const DEFAULT_DEADLINE: Duration = Duration::from_secs(30);
/// Default supervisor recovery-attempt budget per migration.
pub const DEFAULT_RETRY_BUDGET: u32 = 6;
/// Default base of the supervisor's bounded exponential backoff
/// (attempt *n* waits `backoff_base * 2^(n-1)` of virtual time).
pub const DEFAULT_BACKOFF_BASE: Duration = Duration::from_millis(5);
/// Default hot-call batch size: 1 keeps the legacy one-frame-per-
/// transition `TRANSFER` path (and the exact 2×chunks transition
/// profile earlier telemetry asserts on).
pub const DEFAULT_BATCH_SIZE: u32 = 1;
/// Default seal/digest worker-lane count (1 = serial pipeline).
pub const DEFAULT_SEAL_LANES: u32 = 1;
/// Largest accepted seal/digest worker-lane count.
pub const MAX_SEAL_LANES: u32 = 64;

/// Tuning knobs of the streaming state transfer, provisioned into each
/// Migration Enclave alongside the migration policy. `chunk_size` and
/// `window` seed the per-destination [`AdaptiveLink`] controller; the
/// live values drift from there with the observed link behaviour.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TransferConfig {
    /// State payloads strictly larger than this (bytes) use the
    /// chunked streaming path; smaller ones ride the single-shot
    /// `Transfer` message.
    pub stream_threshold: u32,
    /// Bytes per chunk (initial; adapts downward on disruptions).
    pub chunk_size: u32,
    /// Maximum unacknowledged chunks in flight (initial; adapts upward
    /// on clean acks).
    pub window: u32,
    /// Ceiling for the adaptive window growth.
    pub max_window: u32,
    /// Largest delta payload, in percent of the full state size, still
    /// worth shipping as a dirty-page delta; anything larger streams the
    /// full state.
    pub max_delta_percent: u32,
    /// Maximum chunk streams multiplexed concurrently towards one
    /// destination; further migrations stay queued until a slot frees.
    pub max_streams: u32,
    /// Byte budget of the per-measurement generation cache (delta
    /// bases); least-recently-used entries are evicted beyond it.
    pub cache_budget: u64,
    /// Destination-side **speculative restore**: unseal and stage
    /// verified HMAC-chain prefixes as chunks arrive (incremental
    /// whole-state digest; delta bases staged and overlaid page by
    /// page), so the final chunk only finalizes the digest check and
    /// releases. Off = the legacy unseal-after-complete path. Release
    /// rules (digest-before-release, validate-before-apply, quarantine
    /// on tamper) are identical either way.
    pub speculative_restore: bool,
    /// Virtual-time deadline for one supervised migration. When it
    /// lapses the [`crate::supervisor::MigrationSupervisor`] stops
    /// retrying and aborts with the source still authoritative.
    pub deadline: Duration,
    /// Supervisor recovery attempts per migration before giving up.
    /// Zero means a single attempt with no recovery.
    pub retry_budget: u32,
    /// Base of the supervisor's bounded exponential backoff: recovery
    /// attempt *n* waits `backoff_base * 2^(n-1)` of virtual time.
    pub backoff_base: Duration,
    /// Hot-call batch size: how many wire cells one `TRANSFER_BATCH`
    /// ECALL moves (and, on the receive side, the advertisement made to
    /// peers during channel negotiation — the effective link batch is
    /// `min(sender config, receiver advertisement)`). 1 keeps the
    /// legacy one-frame-per-transition path.
    pub batch_size: u32,
    /// Seal/digest worker lanes: chunk digests and cell AEAD work fan
    /// out over this many deterministic lanes (assignment by chunk
    /// index, so wire bytes and TRACE.json stay byte-identical). 1 =
    /// serial.
    pub seal_lanes: u32,
}

impl Default for TransferConfig {
    fn default() -> Self {
        TransferConfig {
            stream_threshold: DEFAULT_STREAM_THRESHOLD,
            chunk_size: DEFAULT_CHUNK_SIZE,
            window: DEFAULT_WINDOW,
            max_window: DEFAULT_MAX_WINDOW,
            max_delta_percent: DEFAULT_MAX_DELTA_PERCENT,
            max_streams: DEFAULT_MAX_STREAMS,
            cache_budget: DEFAULT_CACHE_BUDGET,
            speculative_restore: true,
            deadline: DEFAULT_DEADLINE,
            retry_budget: DEFAULT_RETRY_BUDGET,
            backoff_base: DEFAULT_BACKOFF_BASE,
            batch_size: DEFAULT_BATCH_SIZE,
            seal_lanes: DEFAULT_SEAL_LANES,
        }
    }
}

impl TransferConfig {
    /// Derives a config from an observed link profile: the chunk size
    /// approximates the link's bandwidth-delay product (rounded to a
    /// power of two within `[MIN_CHUNK_SIZE, MAX_CHUNK_SIZE]`) and the
    /// initial window keeps roughly four BDPs in flight.
    #[must_use]
    pub fn for_link(link: &LinkProfile) -> Self {
        let bdp = (u128::from(link.bandwidth_bytes_per_sec) * 2 * link.latency.as_micros()
            / 1_000_000)
            .max(1) as u64;
        let chunk_size =
            bdp.next_power_of_two()
                .clamp(u64::from(MIN_CHUNK_SIZE), u64::from(MAX_CHUNK_SIZE)) as u32;
        let window = ((4 * bdp).div_ceil(u64::from(chunk_size)))
            .clamp(2, u64::from(DEFAULT_MAX_WINDOW)) as u32;
        TransferConfig {
            chunk_size,
            window,
            max_window: DEFAULT_MAX_WINDOW.max(window),
            ..TransferConfig::default()
        }
    }

    /// Serializes the config (PROVISION payload suffix).
    pub fn encode(&self, w: &mut WireWriter) {
        w.u32(self.stream_threshold);
        w.u32(self.chunk_size);
        w.u32(self.window);
        w.u32(self.max_window);
        w.u32(self.max_delta_percent);
        w.u32(self.max_streams);
        w.u64(self.cache_budget);
        w.u8(u8::from(self.speculative_restore));
        w.u64(self.deadline.as_nanos().min(u128::from(u64::MAX)) as u64);
        w.u32(self.retry_budget);
        w.u64(self.backoff_base.as_nanos().min(u128::from(u64::MAX)) as u64);
        w.u32(self.batch_size);
        w.u32(self.seal_lanes);
    }

    /// Parses a config, rejecting degenerate geometry.
    ///
    /// # Errors
    ///
    /// [`SgxError::Decode`] on malformed input, a chunk size below
    /// [`MIN_CHUNK_SIZE`], a zero window, a window ceiling below the
    /// initial window, a delta fraction above 100 %, a zero stream cap,
    /// a zero cache budget, a zero deadline, or a zero backoff base.
    pub fn decode(r: &mut WireReader<'_>) -> Result<Self, SgxError> {
        let config = TransferConfig {
            stream_threshold: r.u32()?,
            chunk_size: r.u32()?,
            window: r.u32()?,
            max_window: r.u32()?,
            max_delta_percent: r.u32()?,
            max_streams: r.u32()?,
            cache_budget: r.u64()?,
            speculative_restore: r.u8()? != 0,
            deadline: Duration::from_nanos(r.u64()?),
            retry_budget: r.u32()?,
            backoff_base: Duration::from_nanos(r.u64()?),
            // Trailing throughput knobs: older encodings omit them and
            // keep the legacy serial, unbatched behaviour.
            batch_size: if r.remaining() > 0 {
                r.u32()?
            } else {
                DEFAULT_BATCH_SIZE
            },
            seal_lanes: if r.remaining() > 0 {
                r.u32()?
            } else {
                DEFAULT_SEAL_LANES
            },
        };
        if config.chunk_size < MIN_CHUNK_SIZE
            || config.window == 0
            || config.max_window < config.window
            || config.max_delta_percent > 100
            || config.max_streams == 0
            || config.cache_budget == 0
            || config.deadline.is_zero()
            || config.backoff_base.is_zero()
            || config.batch_size == 0
            || config.batch_size > crate::me::wire::MAX_BATCH
            || config.seal_lanes == 0
            || config.seal_lanes > MAX_SEAL_LANES
        {
            return Err(SgxError::Decode);
        }
        Ok(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_round_trip() {
        let config = TransferConfig {
            stream_threshold: 1024,
            chunk_size: MIN_CHUNK_SIZE,
            window: 3,
            max_window: 24,
            max_delta_percent: 10,
            max_streams: 4,
            cache_budget: 8 * 1024 * 1024,
            speculative_restore: false,
            deadline: Duration::from_secs(7),
            retry_budget: 2,
            backoff_base: Duration::from_millis(1),
            batch_size: 16,
            seal_lanes: 4,
        };
        let mut w = WireWriter::new();
        config.encode(&mut w);
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        assert_eq!(TransferConfig::decode(&mut r).unwrap(), config);
        r.finish().unwrap();
    }

    #[test]
    fn config_without_trailing_throughput_knobs_defaults() {
        // Encodings predating the batch/lane knobs stop after the
        // backoff base; decode fills the legacy defaults.
        let config = TransferConfig::default();
        let mut w = WireWriter::new();
        config.encode(&mut w);
        let buf = w.finish();
        let trimmed = &buf[..buf.len() - 8];
        let mut r = WireReader::new(trimmed);
        let decoded = TransferConfig::decode(&mut r).unwrap();
        assert_eq!(decoded.batch_size, DEFAULT_BATCH_SIZE);
        assert_eq!(decoded.seal_lanes, DEFAULT_SEAL_LANES);
        r.finish().unwrap();
    }

    #[test]
    fn degenerate_config_rejected() {
        let ok = TransferConfig::default();
        let cases = [
            TransferConfig {
                chunk_size: 0,
                ..ok
            },
            TransferConfig {
                chunk_size: MIN_CHUNK_SIZE - 1,
                ..ok
            },
            TransferConfig { window: 0, ..ok },
            // Ceiling below the initial window.
            TransferConfig {
                window: 4,
                max_window: 3,
                ..ok
            },
            // Delta fraction above 100 %.
            TransferConfig {
                max_delta_percent: 101,
                ..ok
            },
            TransferConfig {
                max_streams: 0,
                ..ok
            },
            TransferConfig {
                cache_budget: 0,
                ..ok
            },
            TransferConfig {
                deadline: Duration::ZERO,
                ..ok
            },
            TransferConfig {
                backoff_base: Duration::ZERO,
                ..ok
            },
            TransferConfig {
                batch_size: 0,
                ..ok
            },
            TransferConfig {
                batch_size: crate::me::wire::MAX_BATCH + 1,
                ..ok
            },
            TransferConfig {
                seal_lanes: 0,
                ..ok
            },
            TransferConfig {
                seal_lanes: MAX_SEAL_LANES + 1,
                ..ok
            },
        ];
        for config in cases {
            let mut w = WireWriter::new();
            config.encode(&mut w);
            let buf = w.finish();
            let mut r = WireReader::new(&buf);
            assert!(TransferConfig::decode(&mut r).is_err(), "{config:?}");
        }
    }

    #[test]
    fn link_profile_derivation_is_sane() {
        let dc = TransferConfig::for_link(&LinkProfile::datacenter());
        assert!(dc.chunk_size >= MIN_CHUNK_SIZE && dc.chunk_size <= MAX_CHUNK_SIZE);
        assert!(dc.chunk_size.is_power_of_two());
        assert!(dc.window >= 2 && dc.window <= dc.max_window);
        // A faster link gets at least as large a chunk size.
        let local = TransferConfig::for_link(&LinkProfile::local());
        assert!(local.chunk_size >= MIN_CHUNK_SIZE);
    }
}
