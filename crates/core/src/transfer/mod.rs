//! The **state-transfer subsystem**: checkpointing and chunked,
//! resumable, integrity-chained streaming of large persistent state
//! between Migration Enclaves (the CTR-style extension of the paper's
//! single-message transfer).
//!
//! The DSN'18 protocol hands the destination one `transfer data` message
//! (Fig. 2) — fine for the 1.3 KiB Table I payload, hopeless for an
//! enclave whose migratable-sealed working set is megabytes. Following
//! *CTR: Checkpoint, Transfer, and Restore for Secure Enclaves*
//! (Nakatsuka et al.) this module adds:
//!
//! * [`checkpoint`] — a durable, generation-numbered checkpoint store on
//!   the untrusted per-machine disk ([`cloud_sim::disk::UntrustedDisk`]).
//!   Application hosts write the library's sealed Table II blob (plus
//!   any staged bulk state) there periodically; Migration Enclave hosts
//!   checkpoint transfer progress so a management-VM crash mid-migration
//!   resumes instead of restarting.
//! * [`chunker`] — the chunking/streaming engine: a source-side
//!   [`chunker::ChunkStream`] that splits the payload into fixed-size
//!   chunks bound together by an HMAC chain keyed from a secret
//!   per-transfer nonce, and a destination-side
//!   [`chunker::ChunkAssembler`] that verifies the chain chunk by chunk,
//!   survives serialization across enclave restarts, and reports the
//!   next index it needs so a resumed sender can continue from the last
//!   acknowledged chunk.
//!
//! The wire messages (`ChunkStart` / `Chunk` / `ChunkAck` / `Resume` /
//! `ResumeRequest`) live in [`crate::msgs::MeToMe`]; the Migration
//! Enclave ([`crate::me`]) drives the engine with windowed, pipelined
//! sends over the existing attested [`crate::secure_channel`]. State at
//! or below [`TransferConfig::stream_threshold`] still travels in the
//! original single-shot `Transfer` message (the small-state fast path).

pub mod checkpoint;
pub mod chunker;

use sgx_sim::wire::{WireReader, WireWriter};
use sgx_sim::SgxError;

/// Default streaming threshold: state strictly larger than this streams.
pub const DEFAULT_STREAM_THRESHOLD: u32 = 64 * 1024;
/// Default chunk size of the streaming engine.
pub const DEFAULT_CHUNK_SIZE: u32 = 256 * 1024;
/// Default send window (chunks in flight before the first ack).
pub const DEFAULT_WINDOW: u32 = 8;
/// Minimum accepted chunk size. Keeps every chunk ciphertext larger
/// than the RA handshake-finish frame, so chunks sent in the same step
/// as the finish cannot overtake it on the size-ordered simulated
/// network.
pub const MIN_CHUNK_SIZE: u32 = 4096;

/// Tuning knobs of the streaming state transfer, provisioned into each
/// Migration Enclave alongside the migration policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TransferConfig {
    /// State payloads strictly larger than this (bytes) use the
    /// chunked streaming path; smaller ones ride the single-shot
    /// `Transfer` message.
    pub stream_threshold: u32,
    /// Bytes per chunk.
    pub chunk_size: u32,
    /// Maximum unacknowledged chunks in flight (pipelined sending).
    pub window: u32,
}

impl Default for TransferConfig {
    fn default() -> Self {
        TransferConfig {
            stream_threshold: DEFAULT_STREAM_THRESHOLD,
            chunk_size: DEFAULT_CHUNK_SIZE,
            window: DEFAULT_WINDOW,
        }
    }
}

impl TransferConfig {
    /// Serializes the config (PROVISION payload suffix).
    pub fn encode(&self, w: &mut WireWriter) {
        w.u32(self.stream_threshold);
        w.u32(self.chunk_size);
        w.u32(self.window);
    }

    /// Parses a config, rejecting degenerate geometry.
    ///
    /// # Errors
    ///
    /// [`SgxError::Decode`] on malformed input, a chunk size below
    /// [`MIN_CHUNK_SIZE`], or a zero window.
    pub fn decode(r: &mut WireReader<'_>) -> Result<Self, SgxError> {
        let config = TransferConfig {
            stream_threshold: r.u32()?,
            chunk_size: r.u32()?,
            window: r.u32()?,
        };
        if config.chunk_size < MIN_CHUNK_SIZE || config.window == 0 {
            return Err(SgxError::Decode);
        }
        Ok(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_round_trip() {
        let config = TransferConfig {
            stream_threshold: 1024,
            chunk_size: MIN_CHUNK_SIZE,
            window: 3,
        };
        let mut w = WireWriter::new();
        config.encode(&mut w);
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        assert_eq!(TransferConfig::decode(&mut r).unwrap(), config);
        r.finish().unwrap();
    }

    #[test]
    fn degenerate_config_rejected() {
        for (chunk_size, window) in [(0u32, 1u32), (MIN_CHUNK_SIZE - 1, 1), (MIN_CHUNK_SIZE, 0)] {
            let mut w = WireWriter::new();
            TransferConfig {
                stream_threshold: 0,
                chunk_size,
                window,
            }
            .encode(&mut w);
            let buf = w.finish();
            let mut r = WireReader::new(&buf);
            assert!(TransferConfig::decode(&mut r).is_err());
        }
    }
}
