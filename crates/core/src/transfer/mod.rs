//! The **state-transfer subsystem**: checkpointing and chunked,
//! resumable, integrity-chained streaming of large persistent state
//! between Migration Enclaves (the CTR-style extension of the paper's
//! single-message transfer).
//!
//! The DSN'18 protocol hands the destination one `transfer data` message
//! (Fig. 2) — fine for the 1.3 KiB Table I payload, hopeless for an
//! enclave whose migratable-sealed working set is megabytes. Following
//! *CTR: Checkpoint, Transfer, and Restore for Secure Enclaves*
//! (Nakatsuka et al.) this module adds:
//!
//! * [`checkpoint`] — a durable, generation-numbered checkpoint store on
//!   the untrusted per-machine disk ([`cloud_sim::disk::UntrustedDisk`]).
//!   Application hosts write the library's sealed Table II blob (plus
//!   any staged bulk state) there periodically; Migration Enclave hosts
//!   checkpoint transfer progress so a management-VM crash mid-migration
//!   resumes instead of restarting.
//! * [`chunker`] — the chunking/streaming engine: a source-side
//!   [`chunker::ChunkStream`] that splits the payload into fixed-size
//!   chunks bound together by an HMAC chain keyed from a secret
//!   per-transfer nonce, and a destination-side
//!   [`chunker::ChunkAssembler`] that verifies the chain chunk by chunk,
//!   survives serialization across enclave restarts, and reports the
//!   next index it needs so a resumed sender can continue from the last
//!   acknowledged chunk.
//!
//! * [`delta`] — dirty-page delta checkpoints: per-page digest tables,
//!   a compact [`delta::DeltaManifest`], and `diff`/`apply` so a repeat
//!   migration ships only the pages that changed since the generation
//!   the destination already holds, falling back to a full stream when
//!   the base is missing or the delta is too large a fraction of the
//!   state ([`TransferConfig::max_delta_percent`]).
//!
//! The wire messages (`ChunkStart` / `DeltaStart` / `Chunk` / `ChunkAck`
//! / `Resume` / `ResumeRequest` / `DeltaNack`) live in
//! [`crate::msgs::MeToMe`]; the Migration Enclave ([`crate::me`]) drives
//! the engine with windowed, pipelined sends over the existing attested
//! [`crate::secure_channel`], sizing chunks and windows through the
//! per-destination [`AdaptiveLink`] controller. State at or below
//! [`TransferConfig::stream_threshold`] still travels in the original
//! single-shot `Transfer` message (the small-state fast path).

pub mod checkpoint;
pub mod chunker;
pub mod delta;

use cloud_sim::network::LinkProfile;
use sgx_sim::wire::{WireReader, WireWriter};
use sgx_sim::SgxError;

/// Default streaming threshold: state strictly larger than this streams.
pub const DEFAULT_STREAM_THRESHOLD: u32 = 64 * 1024;
/// Default chunk size of the streaming engine.
pub const DEFAULT_CHUNK_SIZE: u32 = 256 * 1024;
/// Default send window (chunks in flight before the first ack).
pub const DEFAULT_WINDOW: u32 = 8;
/// Default ceiling the adaptive controller may grow the window to.
pub const DEFAULT_MAX_WINDOW: u32 = 32;
/// Default largest delta payload, in percent of the full state, still
/// shipped as a delta (larger deltas fall back to a full stream).
pub const DEFAULT_MAX_DELTA_PERCENT: u32 = 50;
/// Minimum accepted chunk size. Keeps every chunk ciphertext larger
/// than the RA handshake-finish frame, so chunks sent in the same step
/// as the finish cannot overtake it on the size-ordered simulated
/// network. Also the floor the adaptive controller shrinks to.
pub const MIN_CHUNK_SIZE: u32 = 4096;
/// Largest chunk size [`TransferConfig::for_link`] will derive.
pub const MAX_CHUNK_SIZE: u32 = 4 * 1024 * 1024;

/// Tuning knobs of the streaming state transfer, provisioned into each
/// Migration Enclave alongside the migration policy. `chunk_size` and
/// `window` seed the per-destination [`AdaptiveLink`] controller; the
/// live values drift from there with the observed link behaviour.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TransferConfig {
    /// State payloads strictly larger than this (bytes) use the
    /// chunked streaming path; smaller ones ride the single-shot
    /// `Transfer` message.
    pub stream_threshold: u32,
    /// Bytes per chunk (initial; adapts downward on disruptions).
    pub chunk_size: u32,
    /// Maximum unacknowledged chunks in flight (initial; adapts upward
    /// on clean acks).
    pub window: u32,
    /// Ceiling for the adaptive window growth.
    pub max_window: u32,
    /// Largest delta payload, in percent of the full state size, still
    /// worth shipping as a dirty-page delta; anything larger streams the
    /// full state.
    pub max_delta_percent: u32,
}

impl Default for TransferConfig {
    fn default() -> Self {
        TransferConfig {
            stream_threshold: DEFAULT_STREAM_THRESHOLD,
            chunk_size: DEFAULT_CHUNK_SIZE,
            window: DEFAULT_WINDOW,
            max_window: DEFAULT_MAX_WINDOW,
            max_delta_percent: DEFAULT_MAX_DELTA_PERCENT,
        }
    }
}

impl TransferConfig {
    /// Derives a config from an observed link profile: the chunk size
    /// approximates the link's bandwidth-delay product (rounded to a
    /// power of two within `[MIN_CHUNK_SIZE, MAX_CHUNK_SIZE]`) and the
    /// initial window keeps roughly four BDPs in flight.
    #[must_use]
    pub fn for_link(link: &LinkProfile) -> Self {
        let bdp = (u128::from(link.bandwidth_bytes_per_sec) * 2 * link.latency.as_micros()
            / 1_000_000)
            .max(1) as u64;
        let chunk_size =
            bdp.next_power_of_two()
                .clamp(u64::from(MIN_CHUNK_SIZE), u64::from(MAX_CHUNK_SIZE)) as u32;
        let window = ((4 * bdp).div_ceil(u64::from(chunk_size)))
            .clamp(2, u64::from(DEFAULT_MAX_WINDOW)) as u32;
        TransferConfig {
            chunk_size,
            window,
            max_window: DEFAULT_MAX_WINDOW.max(window),
            ..TransferConfig::default()
        }
    }

    /// Serializes the config (PROVISION payload suffix).
    pub fn encode(&self, w: &mut WireWriter) {
        w.u32(self.stream_threshold);
        w.u32(self.chunk_size);
        w.u32(self.window);
        w.u32(self.max_window);
        w.u32(self.max_delta_percent);
    }

    /// Parses a config, rejecting degenerate geometry.
    ///
    /// # Errors
    ///
    /// [`SgxError::Decode`] on malformed input, a chunk size below
    /// [`MIN_CHUNK_SIZE`], a zero window, a window ceiling below the
    /// initial window, or a delta fraction above 100 %.
    pub fn decode(r: &mut WireReader<'_>) -> Result<Self, SgxError> {
        let config = TransferConfig {
            stream_threshold: r.u32()?,
            chunk_size: r.u32()?,
            window: r.u32()?,
            max_window: r.u32()?,
            max_delta_percent: r.u32()?,
        };
        if config.chunk_size < MIN_CHUNK_SIZE
            || config.window == 0
            || config.max_window < config.window
            || config.max_delta_percent > 100
        {
            return Err(SgxError::Decode);
        }
        Ok(config)
    }
}

/// Per-destination adaptive chunk/window controller.
///
/// Seeded from the provisioned [`TransferConfig`], then driven by the
/// observed link behaviour: every clean cumulative ack grows the send
/// window by one (up to [`TransferConfig::max_window`]) — additive
/// increase keeps the pipe filling on a healthy link — and every
/// disruption (a `Resume` renegotiation after a crash or loss) halves
/// the chunk size (floor [`MIN_CHUNK_SIZE`]) and resets the window to
/// the provisioned base, so a flaky link retransmits less per loss.
/// New streams pick up the controller's current values; a mid-flight
/// stream keeps the geometry it was announced with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdaptiveLink {
    base_window: u32,
    max_window: u32,
    chunk_size: u32,
    window: u32,
}

impl AdaptiveLink {
    /// Seeds a controller from the provisioned config.
    #[must_use]
    pub fn new(config: &TransferConfig) -> Self {
        AdaptiveLink {
            base_window: config.window,
            max_window: config.max_window.max(config.window),
            chunk_size: config.chunk_size.max(MIN_CHUNK_SIZE),
            window: config.window,
        }
    }

    /// Chunk size the next stream to this destination will use.
    #[must_use]
    pub fn chunk_size(&self) -> u32 {
        self.chunk_size
    }

    /// Current send window (chunks in flight).
    #[must_use]
    pub fn window(&self) -> u32 {
        self.window
    }

    /// A cumulative ack arrived in order: grow the window additively.
    pub fn on_clean_ack(&mut self) {
        self.window = (self.window + 1).min(self.max_window);
    }

    /// The stream was disrupted (resume renegotiation): shrink the chunk
    /// size and fall back to the provisioned window.
    pub fn on_disruption(&mut self) {
        self.chunk_size = (self.chunk_size / 2).max(MIN_CHUNK_SIZE);
        self.window = self.base_window;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_round_trip() {
        let config = TransferConfig {
            stream_threshold: 1024,
            chunk_size: MIN_CHUNK_SIZE,
            window: 3,
            max_window: 24,
            max_delta_percent: 10,
        };
        let mut w = WireWriter::new();
        config.encode(&mut w);
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        assert_eq!(TransferConfig::decode(&mut r).unwrap(), config);
        r.finish().unwrap();
    }

    #[test]
    fn degenerate_config_rejected() {
        let cases = [
            (0u32, 1u32, 8u32, 50u32),
            (MIN_CHUNK_SIZE - 1, 1, 8, 50),
            (MIN_CHUNK_SIZE, 0, 8, 50),
            (MIN_CHUNK_SIZE, 4, 3, 50),  // ceiling below initial window
            (MIN_CHUNK_SIZE, 4, 8, 101), // delta fraction above 100 %
        ];
        for (chunk_size, window, max_window, max_delta_percent) in cases {
            let mut w = WireWriter::new();
            TransferConfig {
                stream_threshold: 0,
                chunk_size,
                window,
                max_window,
                max_delta_percent,
            }
            .encode(&mut w);
            let buf = w.finish();
            let mut r = WireReader::new(&buf);
            assert!(TransferConfig::decode(&mut r).is_err());
        }
    }

    #[test]
    fn link_profile_derivation_is_sane() {
        let dc = TransferConfig::for_link(&LinkProfile::datacenter());
        assert!(dc.chunk_size >= MIN_CHUNK_SIZE && dc.chunk_size <= MAX_CHUNK_SIZE);
        assert!(dc.chunk_size.is_power_of_two());
        assert!(dc.window >= 2 && dc.window <= dc.max_window);
        // A faster link gets at least as large a chunk size.
        let local = TransferConfig::for_link(&LinkProfile::local());
        assert!(local.chunk_size >= MIN_CHUNK_SIZE);
    }

    #[test]
    fn adaptive_link_grows_on_acks_and_shrinks_on_disruption() {
        let config = TransferConfig {
            chunk_size: 64 * 1024,
            window: 2,
            max_window: 5,
            ..TransferConfig::default()
        };
        let mut link = AdaptiveLink::new(&config);
        assert_eq!((link.chunk_size(), link.window()), (64 * 1024, 2));
        for _ in 0..10 {
            link.on_clean_ack();
        }
        assert_eq!(link.window(), 5, "window capped at max_window");
        link.on_disruption();
        assert_eq!(link.chunk_size(), 32 * 1024, "chunk size halves");
        assert_eq!(link.window(), 2, "window resets to provisioned base");
        for _ in 0..20 {
            link.on_disruption();
        }
        assert_eq!(
            link.chunk_size(),
            MIN_CHUNK_SIZE,
            "floored at MIN_CHUNK_SIZE"
        );
    }
}
