//! The **state-transfer subsystem**: checkpointing and chunked,
//! resumable, integrity-chained streaming of large persistent state
//! between Migration Enclaves (the CTR-style extension of the paper's
//! single-message transfer).
//!
//! The DSN'18 protocol hands the destination one `transfer data` message
//! (Fig. 2) — fine for the 1.3 KiB Table I payload, hopeless for an
//! enclave whose migratable-sealed working set is megabytes. Following
//! *CTR: Checkpoint, Transfer, and Restore for Secure Enclaves*
//! (Nakatsuka et al.) this module adds:
//!
//! * [`checkpoint`] — a durable, generation-numbered checkpoint store on
//!   the untrusted per-machine disk ([`cloud_sim::disk::UntrustedDisk`]).
//!   Application hosts write the library's sealed Table II blob (plus
//!   any staged bulk state) there periodically; Migration Enclave hosts
//!   checkpoint transfer progress so a management-VM crash mid-migration
//!   resumes instead of restarting.
//! * [`chunker`] — the chunking/streaming engine: a source-side
//!   [`chunker::ChunkStream`] that splits the payload into fixed-size
//!   chunks bound together by an HMAC chain keyed from a secret
//!   per-transfer nonce, and a destination-side
//!   [`chunker::ChunkAssembler`] that verifies the chain chunk by chunk,
//!   survives serialization across enclave restarts, and reports the
//!   next index it needs so a resumed sender can continue from the last
//!   acknowledged chunk.
//!
//! * [`delta`] — dirty-page delta checkpoints: per-page digest tables,
//!   a compact [`delta::DeltaManifest`], and `diff`/`apply` so a repeat
//!   migration ships only the pages that changed since the generation
//!   the destination already holds, falling back to a full stream when
//!   the base is missing or the delta is too large a fraction of the
//!   state ([`TransferConfig::max_delta_percent`]).
//!
//! The wire messages (`ChunkStart` / `DeltaStart` / `Chunk` / `ChunkAck`
//! / `Resume` / `ResumeRequest` / `DeltaNack`) live in
//! [`crate::msgs::MeToMe`]; the Migration Enclave ([`crate::me`]) drives
//! the engine with windowed, pipelined sends over the existing attested
//! [`crate::secure_channel`], sizing chunks and windows through the
//! per-destination [`AdaptiveLink`] controller. Up to
//! [`TransferConfig::max_streams`] transfers towards one destination
//! run **concurrently**, keyed by their per-transfer nonce and
//! multiplexed on the shared channel; the [`DrrScheduler`] apportions
//! the link window among them (deficit round-robin) so a large-state
//! migration cannot starve a small one. State at or below
//! [`TransferConfig::stream_threshold`] still travels in the original
//! single-shot `Transfer` message (the small-state fast path) when the
//! link is quiet.

pub mod checkpoint;
pub mod chunker;
pub mod delta;

use cloud_sim::network::LinkProfile;
use sgx_sim::wire::{WireReader, WireWriter};
use sgx_sim::SgxError;
use std::collections::HashMap;
use std::hash::Hash;

/// Default streaming threshold: state strictly larger than this streams.
pub const DEFAULT_STREAM_THRESHOLD: u32 = 64 * 1024;
/// Default chunk size of the streaming engine.
pub const DEFAULT_CHUNK_SIZE: u32 = 256 * 1024;
/// Default send window (chunks in flight before the first ack).
pub const DEFAULT_WINDOW: u32 = 8;
/// Default ceiling the adaptive controller may grow the window to.
pub const DEFAULT_MAX_WINDOW: u32 = 32;
/// Default largest delta payload, in percent of the full state, still
/// shipped as a delta (larger deltas fall back to a full stream).
pub const DEFAULT_MAX_DELTA_PERCENT: u32 = 50;
/// Default cap on concurrently multiplexed chunk streams per
/// destination; further migrations queue until a stream completes.
pub const DEFAULT_MAX_STREAMS: u32 = 8;
/// Default byte budget of the ME's per-measurement generation cache
/// (delta bases). Least-recently-used entries are evicted beyond it;
/// evicted bases simply fall back to full streams via `DeltaNack`.
pub const DEFAULT_CACHE_BUDGET: u64 = 256 * 1024 * 1024;
/// Minimum accepted chunk size. Keeps every chunk ciphertext larger
/// than the RA handshake-finish frame, so chunks sent in the same step
/// as the finish cannot overtake it on the size-ordered simulated
/// network. Also the floor the adaptive controller shrinks to.
pub const MIN_CHUNK_SIZE: u32 = 4096;
/// Largest chunk size [`TransferConfig::for_link`] will derive.
pub const MAX_CHUNK_SIZE: u32 = 4 * 1024 * 1024;

/// Tuning knobs of the streaming state transfer, provisioned into each
/// Migration Enclave alongside the migration policy. `chunk_size` and
/// `window` seed the per-destination [`AdaptiveLink`] controller; the
/// live values drift from there with the observed link behaviour.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TransferConfig {
    /// State payloads strictly larger than this (bytes) use the
    /// chunked streaming path; smaller ones ride the single-shot
    /// `Transfer` message.
    pub stream_threshold: u32,
    /// Bytes per chunk (initial; adapts downward on disruptions).
    pub chunk_size: u32,
    /// Maximum unacknowledged chunks in flight (initial; adapts upward
    /// on clean acks).
    pub window: u32,
    /// Ceiling for the adaptive window growth.
    pub max_window: u32,
    /// Largest delta payload, in percent of the full state size, still
    /// worth shipping as a dirty-page delta; anything larger streams the
    /// full state.
    pub max_delta_percent: u32,
    /// Maximum chunk streams multiplexed concurrently towards one
    /// destination; further migrations stay queued until a slot frees.
    pub max_streams: u32,
    /// Byte budget of the per-measurement generation cache (delta
    /// bases); least-recently-used entries are evicted beyond it.
    pub cache_budget: u64,
}

impl Default for TransferConfig {
    fn default() -> Self {
        TransferConfig {
            stream_threshold: DEFAULT_STREAM_THRESHOLD,
            chunk_size: DEFAULT_CHUNK_SIZE,
            window: DEFAULT_WINDOW,
            max_window: DEFAULT_MAX_WINDOW,
            max_delta_percent: DEFAULT_MAX_DELTA_PERCENT,
            max_streams: DEFAULT_MAX_STREAMS,
            cache_budget: DEFAULT_CACHE_BUDGET,
        }
    }
}

impl TransferConfig {
    /// Derives a config from an observed link profile: the chunk size
    /// approximates the link's bandwidth-delay product (rounded to a
    /// power of two within `[MIN_CHUNK_SIZE, MAX_CHUNK_SIZE]`) and the
    /// initial window keeps roughly four BDPs in flight.
    #[must_use]
    pub fn for_link(link: &LinkProfile) -> Self {
        let bdp = (u128::from(link.bandwidth_bytes_per_sec) * 2 * link.latency.as_micros()
            / 1_000_000)
            .max(1) as u64;
        let chunk_size =
            bdp.next_power_of_two()
                .clamp(u64::from(MIN_CHUNK_SIZE), u64::from(MAX_CHUNK_SIZE)) as u32;
        let window = ((4 * bdp).div_ceil(u64::from(chunk_size)))
            .clamp(2, u64::from(DEFAULT_MAX_WINDOW)) as u32;
        TransferConfig {
            chunk_size,
            window,
            max_window: DEFAULT_MAX_WINDOW.max(window),
            ..TransferConfig::default()
        }
    }

    /// Serializes the config (PROVISION payload suffix).
    pub fn encode(&self, w: &mut WireWriter) {
        w.u32(self.stream_threshold);
        w.u32(self.chunk_size);
        w.u32(self.window);
        w.u32(self.max_window);
        w.u32(self.max_delta_percent);
        w.u32(self.max_streams);
        w.u64(self.cache_budget);
    }

    /// Parses a config, rejecting degenerate geometry.
    ///
    /// # Errors
    ///
    /// [`SgxError::Decode`] on malformed input, a chunk size below
    /// [`MIN_CHUNK_SIZE`], a zero window, a window ceiling below the
    /// initial window, a delta fraction above 100 %, a zero stream cap,
    /// or a zero cache budget.
    pub fn decode(r: &mut WireReader<'_>) -> Result<Self, SgxError> {
        let config = TransferConfig {
            stream_threshold: r.u32()?,
            chunk_size: r.u32()?,
            window: r.u32()?,
            max_window: r.u32()?,
            max_delta_percent: r.u32()?,
            max_streams: r.u32()?,
            cache_budget: r.u64()?,
        };
        if config.chunk_size < MIN_CHUNK_SIZE
            || config.window == 0
            || config.max_window < config.window
            || config.max_delta_percent > 100
            || config.max_streams == 0
            || config.cache_budget == 0
        {
            return Err(SgxError::Decode);
        }
        Ok(config)
    }
}

/// Per-destination adaptive chunk/window controller.
///
/// Seeded from the provisioned [`TransferConfig`], then driven by the
/// observed link behaviour: every clean cumulative ack grows the send
/// window by one (up to [`TransferConfig::max_window`]) — additive
/// increase keeps the pipe filling on a healthy link — and every
/// disruption (a `Resume` renegotiation after a crash or loss) halves
/// the chunk size (floor [`MIN_CHUNK_SIZE`]) and resets the window to
/// the provisioned base, so a flaky link retransmits less per loss.
/// New streams pick up the controller's current values; a mid-flight
/// stream keeps the geometry it was announced with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdaptiveLink {
    base_window: u32,
    max_window: u32,
    chunk_size: u32,
    window: u32,
}

impl AdaptiveLink {
    /// Seeds a controller from the provisioned config.
    #[must_use]
    pub fn new(config: &TransferConfig) -> Self {
        AdaptiveLink {
            base_window: config.window,
            max_window: config.max_window.max(config.window),
            chunk_size: config.chunk_size.max(MIN_CHUNK_SIZE),
            window: config.window,
        }
    }

    /// Chunk size the next stream to this destination will use.
    #[must_use]
    pub fn chunk_size(&self) -> u32 {
        self.chunk_size
    }

    /// Current send window (chunks in flight).
    #[must_use]
    pub fn window(&self) -> u32 {
        self.window
    }

    /// A cumulative ack arrived in order: grow the window additively.
    pub fn on_clean_ack(&mut self) {
        self.window = (self.window + 1).min(self.max_window);
    }

    /// The stream was disrupted (resume renegotiation): shrink the chunk
    /// size and fall back to the provisioned window.
    pub fn on_disruption(&mut self) {
        self.chunk_size = (self.chunk_size / 2).max(MIN_CHUNK_SIZE);
        self.window = self.base_window;
    }
}

/// One stream's appetite in a [`DrrScheduler::allocate`] round: how many
/// chunks it still wants to put on the wire and what one chunk costs in
/// bytes (its announced chunk size — streams announced under different
/// link conditions carry different geometry).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamDemand {
    /// Chunks the stream could send right now (unsent, inside the
    /// payload).
    pub pending_chunks: u32,
    /// Wire cost of one chunk in bytes.
    pub chunk_cost: u64,
}

/// Deficit-round-robin scheduler apportioning a shared per-destination
/// link budget among concurrently multiplexed chunk streams.
///
/// Classic DRR (Shreedhar & Varghese): every ready stream accrues one
/// `quantum` of byte credit per round and spends it on whole chunks; the
/// leftover deficit carries into the next round, so a stream with small
/// chunks is not systematically out-scheduled by one with large chunks,
/// and a 64 MiB migration cannot starve a 64 KiB one — each gets its
/// proportional share of every refill. State (round-robin order, cursor,
/// deficits) persists across calls for long-run fairness but is
/// deliberately ephemeral in the ME: after a restart the first refill
/// simply starts a fresh round.
#[derive(Debug)]
pub struct DrrScheduler<K: Copy + Eq + Hash> {
    order: Vec<K>,
    cursor: usize,
    deficit: HashMap<K, u64>,
}

impl<K: Copy + Eq + Hash> Default for DrrScheduler<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Copy + Eq + Hash> DrrScheduler<K> {
    /// Creates an empty scheduler.
    #[must_use]
    pub fn new() -> Self {
        DrrScheduler {
            order: Vec::new(),
            cursor: 0,
            deficit: HashMap::new(),
        }
    }

    /// Synchronizes the round-robin ring with the currently active
    /// streams: departed keys drop out (with their deficit), new keys
    /// join at the end of the ring.
    fn sync(&mut self, demands: &[(K, StreamDemand)]) {
        let cursor_key = self.order.get(self.cursor).copied();
        self.order.retain(|k| demands.iter().any(|(dk, _)| dk == k));
        self.deficit
            .retain(|k, _| demands.iter().any(|(dk, _)| dk == k));
        for (k, _) in demands {
            if !self.order.contains(k) {
                self.order.push(*k);
            }
        }
        self.cursor = cursor_key
            .and_then(|k| self.order.iter().position(|o| *o == k))
            .unwrap_or(0);
        if self.order.is_empty() {
            self.cursor = 0;
        } else {
            self.cursor %= self.order.len();
        }
    }

    /// Distributes a budget of `budget_chunks` send slots over the
    /// demanding streams, returning the emission order (one entry per
    /// granted chunk, interleaved the way the frames should hit the
    /// wire).
    pub fn allocate(&mut self, mut budget_chunks: u32, demands: &[(K, StreamDemand)]) -> Vec<K> {
        self.sync(demands);
        let mut pending: HashMap<K, u32> = demands
            .iter()
            .map(|(k, d)| (*k, d.pending_chunks))
            .collect();
        let cost: HashMap<K, u64> = demands.iter().map(|(k, d)| (*k, d.chunk_cost)).collect();
        // One quantum lets the hungriest stream send at least one chunk
        // per round, so every round makes progress.
        let quantum = demands
            .iter()
            .filter(|(_, d)| d.pending_chunks > 0)
            .map(|(_, d)| d.chunk_cost)
            .max()
            .unwrap_or(0);
        let mut grants = Vec::new();
        if quantum == 0 || self.order.is_empty() {
            return grants;
        }
        while budget_chunks > 0 && pending.values().any(|p| *p > 0) {
            let key = self.order[self.cursor];
            self.cursor = (self.cursor + 1) % self.order.len();
            let p = pending.entry(key).or_insert(0);
            if *p == 0 {
                // An idle stream carries no credit into its next busy
                // period (standard DRR: deficit resets when the queue
                // empties).
                self.deficit.insert(key, 0);
                continue;
            }
            let c = cost.get(&key).copied().unwrap_or(quantum).max(1);
            let deficit = self.deficit.entry(key).or_insert(0);
            *deficit += quantum;
            while *deficit >= c && *p > 0 && budget_chunks > 0 {
                grants.push(key);
                *deficit -= c;
                *p -= 1;
                budget_chunks -= 1;
            }
            if *p == 0 {
                *deficit = 0;
            }
        }
        grants
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_round_trip() {
        let config = TransferConfig {
            stream_threshold: 1024,
            chunk_size: MIN_CHUNK_SIZE,
            window: 3,
            max_window: 24,
            max_delta_percent: 10,
            max_streams: 4,
            cache_budget: 8 * 1024 * 1024,
        };
        let mut w = WireWriter::new();
        config.encode(&mut w);
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        assert_eq!(TransferConfig::decode(&mut r).unwrap(), config);
        r.finish().unwrap();
    }

    #[test]
    fn degenerate_config_rejected() {
        let ok = TransferConfig::default();
        let cases = [
            TransferConfig {
                chunk_size: 0,
                ..ok
            },
            TransferConfig {
                chunk_size: MIN_CHUNK_SIZE - 1,
                ..ok
            },
            TransferConfig { window: 0, ..ok },
            // Ceiling below the initial window.
            TransferConfig {
                window: 4,
                max_window: 3,
                ..ok
            },
            // Delta fraction above 100 %.
            TransferConfig {
                max_delta_percent: 101,
                ..ok
            },
            TransferConfig {
                max_streams: 0,
                ..ok
            },
            TransferConfig {
                cache_budget: 0,
                ..ok
            },
        ];
        for config in cases {
            let mut w = WireWriter::new();
            config.encode(&mut w);
            let buf = w.finish();
            let mut r = WireReader::new(&buf);
            assert!(TransferConfig::decode(&mut r).is_err(), "{config:?}");
        }
    }

    #[test]
    fn link_profile_derivation_is_sane() {
        let dc = TransferConfig::for_link(&LinkProfile::datacenter());
        assert!(dc.chunk_size >= MIN_CHUNK_SIZE && dc.chunk_size <= MAX_CHUNK_SIZE);
        assert!(dc.chunk_size.is_power_of_two());
        assert!(dc.window >= 2 && dc.window <= dc.max_window);
        // A faster link gets at least as large a chunk size.
        let local = TransferConfig::for_link(&LinkProfile::local());
        assert!(local.chunk_size >= MIN_CHUNK_SIZE);
    }

    fn demand(pending: u32, cost: u64) -> StreamDemand {
        StreamDemand {
            pending_chunks: pending,
            chunk_cost: cost,
        }
    }

    #[test]
    fn drr_shares_budget_evenly_between_equal_streams() {
        let mut sched: DrrScheduler<u8> = DrrScheduler::new();
        let grants = sched.allocate(8, &[(1, demand(100, 4096)), (2, demand(100, 4096))]);
        assert_eq!(grants.len(), 8);
        let a = grants.iter().filter(|k| **k == 1).count();
        let b = grants.iter().filter(|k| **k == 2).count();
        assert_eq!((a, b), (4, 4), "equal streams split the budget evenly");
        // Emission interleaves rather than bursting one stream.
        assert_ne!(grants[0], grants[1]);
    }

    #[test]
    fn drr_small_stream_finishes_inside_large_stream_refills() {
        let mut sched: DrrScheduler<u8> = DrrScheduler::new();
        // A 256-chunk elephant and a 4-chunk mouse: the mouse drains in
        // the very first window.
        let grants = sched.allocate(8, &[(1, demand(256, 65536)), (2, demand(4, 65536))]);
        assert_eq!(grants.iter().filter(|k| **k == 2).count(), 4);
        assert_eq!(grants.iter().filter(|k| **k == 1).count(), 4);
    }

    #[test]
    fn drr_is_work_conserving() {
        let mut sched: DrrScheduler<u8> = DrrScheduler::new();
        // One stream has little to send; the other absorbs the leftover.
        let grants = sched.allocate(10, &[(1, demand(2, 4096)), (2, demand(100, 4096))]);
        assert_eq!(grants.iter().filter(|k| **k == 1).count(), 2);
        assert_eq!(grants.iter().filter(|k| **k == 2).count(), 8);
    }

    #[test]
    fn drr_deficit_compensates_unequal_chunk_costs() {
        let mut sched: DrrScheduler<u8> = DrrScheduler::new();
        // Stream 1 carries 64 KiB chunks, stream 2 16 KiB chunks: over a
        // large budget, stream 2 must get ~4x the chunks (equal bytes).
        let grants = sched.allocate(
            100,
            &[(1, demand(1000, 64 * 1024)), (2, demand(1000, 16 * 1024))],
        );
        let a = grants.iter().filter(|k| **k == 1).count() as f64;
        let b = grants.iter().filter(|k| **k == 2).count() as f64;
        assert!(
            (b / a - 4.0).abs() < 0.5,
            "byte-fair split expected ~1:4 chunks, got {a}:{b}"
        );
    }

    #[test]
    fn drr_survives_departures_and_arrivals() {
        let mut sched: DrrScheduler<u8> = DrrScheduler::new();
        let _ = sched.allocate(4, &[(1, demand(10, 4096)), (2, demand(10, 4096))]);
        // Stream 1 departs, stream 3 arrives; allocation stays sane.
        let grants = sched.allocate(4, &[(2, demand(10, 4096)), (3, demand(10, 4096))]);
        assert_eq!(grants.len(), 4);
        assert!(grants.iter().all(|k| *k == 2 || *k == 3));
        // Empty demand yields nothing and does not spin.
        assert!(sched.allocate(4, &[]).is_empty());
        assert!(sched.allocate(0, &[(2, demand(1, 4096))]).is_empty());
    }

    #[test]
    fn adaptive_link_grows_on_acks_and_shrinks_on_disruption() {
        let config = TransferConfig {
            chunk_size: 64 * 1024,
            window: 2,
            max_window: 5,
            ..TransferConfig::default()
        };
        let mut link = AdaptiveLink::new(&config);
        assert_eq!((link.chunk_size(), link.window()), (64 * 1024, 2));
        for _ in 0..10 {
            link.on_clean_ack();
        }
        assert_eq!(link.window(), 5, "window capped at max_window");
        link.on_disruption();
        assert_eq!(link.chunk_size(), 32 * 1024, "chunk size halves");
        assert_eq!(link.window(), 2, "window resets to provisioned base");
        for _ in 0..20 {
            link.on_disruption();
        }
        assert_eq!(
            link.chunk_size(),
            MIN_CHUNK_SIZE,
            "floored at MIN_CHUNK_SIZE"
        );
    }
}
