//! The chunking/streaming engine: split a state payload into fixed-size
//! chunks bound by an HMAC chain, reassemble and verify them in order,
//! and resume from an arbitrary chunk boundary after a crash.
//!
//! Every chunk `i` carries `mac_i = HMAC(K, mac_{i-1} || i || d_i)` with
//! `d_i = SHA-256(payload_i)`, `mac_{-1} = HMAC(K, "seed")`, and `K`
//! derived from a secret per-transfer nonce that travels only inside
//! the attested ME↔ME channel. The chain means a chunk is only accepted
//! in its unique position within its own transfer: a replayed,
//! reordered, or cross-transfer-spliced chunk fails verification even
//! when it is re-injected across a *resumed* session (where the secure
//! channel's per-session sequence numbers restart). The stream digest
//! announced in `ChunkStart` — `SHA-256(d_0 || … || d_{n-1})` over the
//! per-chunk digests — is checked once more on completion.
//!
//! Chaining over the 32-byte chunk *digests* (rather than the raw
//! payloads) keeps the serial chain O(n) in the chunk count: the
//! payload-proportional hashing is embarrassingly parallel and
//! [`ChunkStream::with_lanes`] fans it out over a fixed worker-lane
//! pool with deterministic lane assignment (`idx % lanes`), so the
//! MACs, the stream digest, and every wire byte are identical for any
//! lane count. Each chunk is digested with one [`sha256`] call over the
//! whole payload slice, which the hash folds through its bulk
//! compression kernel — no per-block buffering anywhere on the digest
//! path, so chunk hashing runs at raw kernel speed on a single lane
//! too.

use crate::error::MigError;
use mig_crypto::ct::ct_eq;
use mig_crypto::hmac::HmacSha256;
use mig_crypto::sha256::{sha256, Sha256};
use sgx_sim::wire::{WireReader, WireWriter};
use std::sync::Arc;

/// A per-transfer nonce (secret inside the attested channel).
pub type TransferNonce = [u8; 16];
/// A chunk-chain MAC.
pub type ChunkMac = [u8; 32];

/// Upper bound on a streamed payload (adversarial-allocation guard).
pub const MAX_STREAM_LEN: u64 = 1 << 30;

/// Domain-separation label for the chain key derivation.
const CHAIN_KEY_LABEL: &[u8] = b"sgx-migrate.transfer.chain-key.v1";
/// Label for the chain seed MAC.
const CHAIN_SEED_LABEL: &[u8] = b"sgx-migrate.transfer.chain-seed.v1";
/// Label for the public trace-id derivation.
const TRACE_ID_LABEL: &[u8] = b"sgx-migrate.trace-id.v1";

/// Derives the public trace id for a transfer nonce.
///
/// The nonce itself keys the chunk HMAC chain and must never leave the
/// attested channel; telemetry instead identifies a migration by this
/// one-way hash, which both endpoints derive independently.
#[must_use]
pub fn trace_id(nonce: &TransferNonce) -> [u8; 8] {
    let mut h = Sha256::new();
    h.update(TRACE_ID_LABEL);
    h.update(nonce);
    let digest = h.finalize();
    let mut id = [0u8; 8];
    id.copy_from_slice(&digest[..8]);
    id
}

/// Number of chunks a payload of `total_len` splits into.
#[must_use]
pub fn chunk_count(total_len: u64, chunk_size: u32) -> u32 {
    debug_assert!(chunk_size > 0);
    u32::try_from(total_len.div_ceil(u64::from(chunk_size))).expect("bounded by MAX_STREAM_LEN")
}

fn chain_key(nonce: &TransferNonce) -> [u8; 32] {
    HmacSha256::mac(CHAIN_KEY_LABEL, nonce)
}

fn chain_seed(key: &[u8; 32]) -> ChunkMac {
    HmacSha256::mac(key, CHAIN_SEED_LABEL)
}

fn chunk_mac(key: &[u8; 32], prev: &ChunkMac, idx: u32, chunk_digest: &[u8; 32]) -> ChunkMac {
    let mut mac = HmacSha256::new(key);
    mac.update(prev);
    mac.update(&idx.to_le_bytes());
    mac.update(chunk_digest);
    mac.finalize()
}

/// Per-chunk SHA-256 digests of `payload`, computed on `lanes` worker
/// threads with deterministic assignment (`idx % lanes`) — identical
/// output for any lane count.
fn chunk_digests(payload: &[u8], chunk_size: u32, n: u32, lanes: u32) -> Vec<[u8; 32]> {
    // Clamp to the host's parallelism: assignment is idx % lanes with
    // results written back by index, so the clamp changes scheduling
    // only, never output bytes.
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let lanes = (lanes.max(1) as usize).min((n as usize).max(1)).min(cores);
    if lanes <= 1 {
        return (0..n)
            .map(|idx| sha256(slice_chunk(payload, chunk_size, idx)))
            .collect();
    }
    let mut digests = vec![[0u8; 32]; n as usize];
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..lanes)
            .map(|lane| {
                s.spawn(move || {
                    (0..n)
                        .skip(lane)
                        .step_by(lanes)
                        .map(|idx| (idx, sha256(slice_chunk(payload, chunk_size, idx))))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            // mig-lint: allow(enclave-panic, "a panicked digest lane is a caller bug (sha256 is infallible); propagating the panic preserves fail-stop semantics")
            for (idx, digest) in handle.join().expect("digest lane panicked") {
                digests[idx as usize] = digest;
            }
        }
    });
    digests
}

fn slice_chunk(payload: &[u8], chunk_size: u32, idx: u32) -> &[u8] {
    let start = idx as usize * chunk_size as usize;
    let end = (start + chunk_size as usize).min(payload.len());
    &payload[start..end]
}

/// The stream digest: SHA-256 over the concatenated per-chunk digests.
fn digest_of_digests(digests: &[[u8; 32]]) -> [u8; 32] {
    let mut h = Sha256::new();
    for d in digests {
        h.update(d);
    }
    h.finalize()
}

/// Source side: a payload split into chunks with precomputed chain MACs.
///
/// The payload is held behind an `Arc<[u8]>` so callers (the Migration
/// Enclave's retained state, delta payloads) share one allocation with
/// the stream instead of cloning megabytes; [`ChunkStream::chunk`] hands
/// out borrowed slices.
pub struct ChunkStream {
    nonce: TransferNonce,
    chunk_size: u32,
    payload: Arc<[u8]>,
    macs: Vec<ChunkMac>,
    digest: [u8; 32],
}

impl std::fmt::Debug for ChunkStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChunkStream")
            .field("total_len", &self.payload.len())
            .field("chunk_size", &self.chunk_size)
            .field("n_chunks", &self.n_chunks())
            .finish_non_exhaustive()
    }
}

impl ChunkStream {
    /// Prepares `payload` for streaming under `nonce` with the given
    /// chunk size (one pass to MAC-chain, one to digest). Accepts any
    /// `Arc<[u8]>`-convertible payload; passing an existing `Arc` is
    /// zero-copy.
    ///
    /// # Panics
    ///
    /// Panics on a zero chunk size or a payload over [`MAX_STREAM_LEN`]
    /// — caller invariants, enforced by [`super::TransferConfig`]
    /// validation and the Migration Library.
    #[must_use]
    pub fn new(nonce: TransferNonce, chunk_size: u32, payload: impl Into<Arc<[u8]>>) -> Self {
        Self::with_lanes(nonce, chunk_size, payload, 1)
    }

    /// [`ChunkStream::new`] with the payload-proportional hashing fanned
    /// out over `lanes` worker threads (deterministic `idx % lanes`
    /// assignment). MACs and digest are identical for any lane count;
    /// the serial HMAC chain runs over the 32-byte chunk digests only.
    ///
    /// # Panics
    ///
    /// Same caller invariants as [`ChunkStream::new`].
    #[must_use]
    pub fn with_lanes(
        nonce: TransferNonce,
        chunk_size: u32,
        payload: impl Into<Arc<[u8]>>,
        lanes: u32,
    ) -> Self {
        let payload: Arc<[u8]> = payload.into();
        assert!(chunk_size > 0, "zero chunk size");
        assert!(
            payload.len() as u64 <= MAX_STREAM_LEN,
            "payload exceeds MAX_STREAM_LEN"
        );
        let key = chain_key(&nonce);
        let n = chunk_count(payload.len() as u64, chunk_size);
        let digests = chunk_digests(&payload, chunk_size, n, lanes);
        let mut macs = Vec::with_capacity(n as usize);
        let mut prev = chain_seed(&key);
        for (idx, d) in digests.iter().enumerate() {
            let mac = chunk_mac(&key, &prev, idx as u32, d);
            macs.push(mac);
            prev = mac;
        }
        let digest = digest_of_digests(&digests);
        ChunkStream {
            nonce,
            chunk_size,
            payload,
            macs,
            digest,
        }
    }

    fn slice(payload: &[u8], chunk_size: u32, idx: u32) -> &[u8] {
        slice_chunk(payload, chunk_size, idx)
    }

    /// The transfer nonce.
    #[must_use]
    pub fn nonce(&self) -> TransferNonce {
        self.nonce
    }

    /// Total payload length in bytes.
    #[must_use]
    pub fn total_len(&self) -> u64 {
        self.payload.len() as u64
    }

    /// Number of chunks.
    #[must_use]
    pub fn n_chunks(&self) -> u32 {
        self.macs.len() as u32
    }

    /// The configured chunk size.
    #[must_use]
    pub fn chunk_size(&self) -> u32 {
        self.chunk_size
    }

    /// SHA-256 digest of the whole payload.
    #[must_use]
    pub fn digest(&self) -> [u8; 32] {
        self.digest
    }

    /// Payload and chain MAC of chunk `idx`.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range index (caller bug).
    #[must_use]
    pub fn chunk(&self, idx: u32) -> (&[u8], ChunkMac) {
        (
            Self::slice(&self.payload, self.chunk_size, idx),
            self.macs[idx as usize],
        )
    }
}

/// Destination side: in-order reassembly with chain verification,
/// serializable for crash-safe persistence.
pub struct ChunkAssembler {
    nonce: TransferNonce,
    chunk_size: u32,
    n_chunks: u32,
    total_len: u64,
    digest: [u8; 32],
    key: [u8; 32],
    buf: Vec<u8>,
    next_idx: u32,
    prev_mac: ChunkMac,
    /// Running SHA-256 over the verified prefix (speculative restore):
    /// when enabled, every accepted chunk is folded into the digest as
    /// it arrives, so [`ChunkAssembler::finish`] only *finalizes* the
    /// hash instead of re-walking the whole payload after the final
    /// chunk. Not serialized; re-enabled (and re-seeded from the buffer)
    /// after a restore.
    hasher: Option<Sha256>,
}

impl std::fmt::Debug for ChunkAssembler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChunkAssembler")
            .field("next_idx", &self.next_idx)
            .field("n_chunks", &self.n_chunks)
            .field("total_len", &self.total_len)
            .finish_non_exhaustive()
    }
}

impl ChunkAssembler {
    /// Opens an assembler for an announced transfer.
    ///
    /// # Errors
    ///
    /// [`MigError::Transfer`] when the announced geometry is
    /// inconsistent (chunk count vs. length) or exceeds
    /// [`MAX_STREAM_LEN`].
    pub fn new(
        nonce: TransferNonce,
        chunk_size: u32,
        total_len: u64,
        digest: [u8; 32],
    ) -> Result<Self, MigError> {
        if chunk_size == 0 {
            return Err(MigError::Transfer("zero chunk size"));
        }
        if total_len == 0 || total_len > MAX_STREAM_LEN {
            return Err(MigError::Transfer("stream length out of bounds"));
        }
        let key = chain_key(&nonce);
        Ok(ChunkAssembler {
            nonce,
            chunk_size,
            n_chunks: chunk_count(total_len, chunk_size),
            total_len,
            digest,
            prev_mac: chain_seed(&key),
            key,
            buf: Vec::new(),
            next_idx: 0,
            hasher: None,
        })
    }

    /// Switches the assembler to incremental digesting (speculative
    /// restore): chunks already received and every chunk accepted from
    /// now on are folded into a running SHA-256, making the final
    /// digest check O(1) in the payload size. Idempotent.
    pub fn enable_incremental_digest(&mut self) {
        if self.hasher.is_none() {
            // The stream digest is a digest-of-digests, so fold the
            // 32-byte digest of every fully buffered chunk — not the
            // raw bytes — and let `accept` continue from there.
            let mut hasher = Sha256::new();
            for chunk in self.buf.chunks(self.chunk_size as usize) {
                hasher.update(&sha256(chunk));
            }
            self.hasher = Some(hasher);
        }
    }

    /// The verified payload prefix received so far (every byte covered
    /// by the chain MACs of the accepted chunks).
    #[must_use]
    pub fn received(&self) -> &[u8] {
        &self.buf
    }

    /// The transfer nonce.
    #[must_use]
    pub fn nonce(&self) -> TransferNonce {
        self.nonce
    }

    /// Index of the next chunk the assembler will accept — equivalently,
    /// the cumulative acknowledgement (`idx < next_idx` are received).
    #[must_use]
    pub fn next_idx(&self) -> u32 {
        self.next_idx
    }

    /// Total chunk count of the transfer.
    #[must_use]
    pub fn n_chunks(&self) -> u32 {
        self.n_chunks
    }

    /// Whether every chunk has been accepted.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.next_idx == self.n_chunks
    }

    fn expected_len(&self, idx: u32) -> u64 {
        if idx + 1 == self.n_chunks {
            self.total_len - u64::from(idx) * u64::from(self.chunk_size)
        } else {
            u64::from(self.chunk_size)
        }
    }

    /// Verifies and appends chunk `idx`.
    ///
    /// # Errors
    ///
    /// [`MigError::Transfer`] on an out-of-order index, a wrong payload
    /// length, or a chain-MAC mismatch (replay / reorder / splice).
    pub fn accept(&mut self, idx: u32, payload: &[u8], mac: &ChunkMac) -> Result<(), MigError> {
        if idx != self.next_idx {
            return Err(MigError::Transfer("chunk index out of order"));
        }
        if payload.len() as u64 != self.expected_len(idx) {
            return Err(MigError::Transfer("chunk length mismatch"));
        }
        let d = sha256(payload);
        let expected = chunk_mac(&self.key, &self.prev_mac, idx, &d);
        if !ct_eq(&expected, mac) {
            return Err(MigError::Transfer("chunk chain MAC mismatch"));
        }
        self.buf.extend_from_slice(payload);
        if let Some(hasher) = &mut self.hasher {
            hasher.update(&d);
        }
        self.prev_mac = expected;
        self.next_idx += 1;
        Ok(())
    }

    /// Consumes the assembler, returning the verified payload.
    ///
    /// # Errors
    ///
    /// [`MigError::Transfer`] when chunks are missing or the final
    /// SHA-256 digest does not match the announcement.
    pub fn finish(self) -> Result<Vec<u8>, MigError> {
        if !self.is_complete() {
            return Err(MigError::Transfer("stream incomplete"));
        }
        // Speculative restore: the digest was folded in chunk by chunk,
        // leaving only the finalize here; otherwise walk the payload
        // chunk-wise now (the legacy unseal-after-complete path).
        let digest = match self.hasher {
            Some(hasher) => hasher.finalize(),
            None => {
                let mut hasher = Sha256::new();
                for chunk in self.buf.chunks(self.chunk_size as usize) {
                    hasher.update(&sha256(chunk));
                }
                hasher.finalize()
            }
        };
        if !ct_eq(&digest, &self.digest) {
            return Err(MigError::Transfer("state digest mismatch"));
        }
        Ok(self.buf)
    }

    /// Serializes the assembler (ME durable-state persistence).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.array(&self.nonce);
        w.u32(self.chunk_size);
        w.u64(self.total_len);
        w.array(&self.digest);
        w.u32(self.next_idx);
        w.array(&self.prev_mac);
        w.bytes(&self.buf);
        w.finish()
    }

    /// Restores a persisted assembler.
    ///
    /// # Errors
    ///
    /// [`MigError::Transfer`] / [`MigError::Sgx`] on malformed or
    /// internally inconsistent input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, MigError> {
        let mut r = WireReader::new(bytes);
        let nonce: TransferNonce = r.array()?;
        let chunk_size = r.u32()?;
        let total_len = r.u64()?;
        let digest: [u8; 32] = r.array()?;
        let next_idx = r.u32()?;
        let prev_mac: ChunkMac = r.array()?;
        let buf = r.bytes_vec()?;
        r.finish()?;

        let mut assembler = Self::new(nonce, chunk_size, total_len, digest)?;
        if next_idx > assembler.n_chunks {
            return Err(MigError::Transfer("restored index out of range"));
        }
        let expected_buf: u64 = (0..next_idx).map(|i| assembler.expected_len(i)).sum();
        if buf.len() as u64 != expected_buf {
            return Err(MigError::Transfer("restored buffer length mismatch"));
        }
        assembler.next_idx = next_idx;
        assembler.prev_mac = prev_mac;
        assembler.buf = buf;
        Ok(assembler)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i % 251) as u8).collect()
    }

    fn stream_through(
        stream: &ChunkStream,
        assembler: &mut ChunkAssembler,
        from: u32,
    ) -> Result<(), MigError> {
        for idx in from..stream.n_chunks() {
            let (chunk, mac) = stream.chunk(idx);
            assembler.accept(idx, chunk, &mac)?;
        }
        Ok(())
    }

    #[test]
    fn round_trip_various_sizes() {
        for len in [1usize, 7, 256, 257, 1024, 5000] {
            let data = payload(len);
            let stream = ChunkStream::new([7; 16], 256, data.clone());
            let mut asm =
                ChunkAssembler::new([7; 16], 256, stream.total_len(), stream.digest()).unwrap();
            assert_eq!(asm.n_chunks(), stream.n_chunks());
            stream_through(&stream, &mut asm, 0).unwrap();
            assert_eq!(asm.finish().unwrap(), data);
        }
    }

    #[test]
    fn lane_count_never_changes_macs_or_digest() {
        // Deterministic idx % lanes assignment: every lane count
        // (including more lanes than chunks) yields byte-identical
        // chain MACs and stream digest.
        for len in [1usize, 255, 256, 1000] {
            let data = payload(len);
            let base = ChunkStream::new([9; 16], 64, data.clone());
            for lanes in [1u32, 2, 3, 4, 8, 64] {
                let fanned = ChunkStream::with_lanes([9; 16], 64, data.clone(), lanes);
                assert_eq!(fanned.digest(), base.digest(), "lanes={lanes} len={len}");
                for idx in 0..base.n_chunks() {
                    assert_eq!(
                        fanned.chunk(idx),
                        base.chunk(idx),
                        "lanes={lanes} idx={idx}"
                    );
                }
            }
        }
    }

    #[test]
    fn out_of_order_and_replay_rejected() {
        let stream = ChunkStream::new([1; 16], 16, payload(64));
        let mut asm = ChunkAssembler::new([1; 16], 16, 64, stream.digest()).unwrap();
        let (c0, m0) = stream.chunk(0);
        let (c1, m1) = stream.chunk(1);
        // Skipping ahead fails.
        assert!(matches!(asm.accept(1, c1, &m1), Err(MigError::Transfer(_))));
        asm.accept(0, c0, &m0).unwrap();
        // Replay of an accepted chunk fails.
        assert!(matches!(asm.accept(0, c0, &m0), Err(MigError::Transfer(_))));
        // A chunk presented at the wrong position fails the chain even if
        // the index field is rewritten to match.
        assert!(matches!(asm.accept(1, c0, &m0), Err(MigError::Transfer(_))));
    }

    #[test]
    fn cross_transfer_splice_rejected() {
        let a = ChunkStream::new([1; 16], 16, payload(64));
        let b = ChunkStream::new([2; 16], 16, payload(64));
        let mut asm = ChunkAssembler::new([1; 16], 16, 64, a.digest()).unwrap();
        let (c0, m0) = b.chunk(0);
        assert!(matches!(asm.accept(0, c0, &m0), Err(MigError::Transfer(_))));
    }

    #[test]
    fn tampered_payload_rejected() {
        let stream = ChunkStream::new([3; 16], 32, payload(100));
        let mut asm = ChunkAssembler::new([3; 16], 32, 100, stream.digest()).unwrap();
        let (c0, m0) = stream.chunk(0);
        let mut evil = c0.to_vec();
        evil[0] ^= 1;
        assert!(matches!(
            asm.accept(0, &evil, &m0),
            Err(MigError::Transfer(_))
        ));
    }

    #[test]
    fn resume_from_serialized_state() {
        let data = payload(1000);
        let stream = ChunkStream::new([9; 16], 128, data.clone());
        let mut asm = ChunkAssembler::new([9; 16], 128, 1000, stream.digest()).unwrap();
        for idx in 0..3 {
            let (c, m) = stream.chunk(idx);
            asm.accept(idx, c, &m).unwrap();
        }
        // Crash: persist, restore, resume from next_idx.
        let blob = asm.to_bytes();
        let mut restored = ChunkAssembler::from_bytes(&blob).unwrap();
        assert_eq!(restored.next_idx(), 3);
        stream_through(&stream, &mut restored, 3).unwrap();
        assert_eq!(restored.finish().unwrap(), data);
    }

    #[test]
    fn incremental_digest_matches_final_hash() {
        let data = payload(1000);
        let stream = ChunkStream::new([9; 16], 128, data.clone());
        // Enabled from the start.
        let mut asm = ChunkAssembler::new([9; 16], 128, 1000, stream.digest()).unwrap();
        asm.enable_incremental_digest();
        stream_through(&stream, &mut asm, 0).unwrap();
        assert_eq!(asm.finish().unwrap(), data);
        // Enabled mid-stream (the restore path): bytes already received
        // are folded in at enable time.
        let mut asm = ChunkAssembler::new([9; 16], 128, 1000, stream.digest()).unwrap();
        for idx in 0..3 {
            let (c, m) = stream.chunk(idx);
            asm.accept(idx, c, &m).unwrap();
        }
        assert_eq!(asm.received().len(), 3 * 128);
        asm.enable_incremental_digest();
        asm.enable_incremental_digest(); // idempotent
        stream_through(&stream, &mut asm, 3).unwrap();
        assert_eq!(asm.finish().unwrap(), data);
        // A wrong announced digest still rejects on the incremental path.
        let mut asm = ChunkAssembler::new([9; 16], 128, 1000, [0; 32]).unwrap();
        asm.enable_incremental_digest();
        stream_through(&stream, &mut asm, 0).unwrap();
        assert!(matches!(asm.finish(), Err(MigError::Transfer(_))));
    }

    #[test]
    fn incomplete_or_wrong_digest_rejected() {
        let stream = ChunkStream::new([4; 16], 64, payload(200));
        let asm = ChunkAssembler::new([4; 16], 64, 200, stream.digest()).unwrap();
        assert!(matches!(asm.finish(), Err(MigError::Transfer(_))));

        let mut asm = ChunkAssembler::new([4; 16], 64, 200, [0; 32]).unwrap();
        stream_through(&stream, &mut asm, 0).unwrap();
        assert!(matches!(asm.finish(), Err(MigError::Transfer(_))));
    }

    #[test]
    fn geometry_validation() {
        assert!(ChunkAssembler::new([0; 16], 0, 10, [0; 32]).is_err());
        assert!(ChunkAssembler::new([0; 16], 16, 0, [0; 32]).is_err());
        assert!(ChunkAssembler::new([0; 16], 16, MAX_STREAM_LEN + 1, [0; 32]).is_err());
        assert_eq!(chunk_count(0, 16), 0);
        assert_eq!(chunk_count(16, 16), 1);
        assert_eq!(chunk_count(17, 16), 2);
    }

    #[test]
    fn tampered_persisted_state_rejected() {
        let stream = ChunkStream::new([5; 16], 32, payload(100));
        let mut asm = ChunkAssembler::new([5; 16], 32, 100, stream.digest()).unwrap();
        let (c, m) = stream.chunk(0);
        asm.accept(0, c, &m).unwrap();
        let blob = asm.to_bytes();
        // Truncations never panic.
        for cut in 1..blob.len().min(64) {
            assert!(ChunkAssembler::from_bytes(&blob[..blob.len() - cut]).is_err());
        }
    }
}
