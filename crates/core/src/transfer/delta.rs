//! Dirty-page delta checkpoints: page-granular diffing between state
//! generations so a repeat migration ships only the pages that changed.
//!
//! A state blob is viewed as a sequence of fixed-size pages
//! ([`PAGE_SIZE`]). [`PageDigests`] records one SHA-256 per page of a
//! generation; [`diff`] compares a new state against a base generation's
//! digest table and produces a [`DeltaManifest`] (the compact description
//! of which pages changed) plus the packed dirty-page payload; [`apply`]
//! reconstructs the new state from the base plus the delta and verifies
//! the announced whole-state digest before returning.
//!
//! Trust model: digest tables may live on the adversary-controlled disk
//! (see [`super::checkpoint::CheckpointStore`]) and manifests travel
//! inside the attested ME↔ME channel. A corrupted digest table can only
//! cause a *wrong* delta, never a silently wrong state: [`apply`]
//! validates the manifest's internal consistency before touching any
//! page and checks the reconstructed state against
//! [`DeltaManifest::new_digest`] before releasing it.

use crate::error::MigError;
use crate::transfer::chunker::MAX_STREAM_LEN;
use mig_crypto::sha256::{sha256, Sha256};
use sgx_sim::wire::{WireReader, WireWriter};
use sgx_sim::SgxError;

/// Dirty-tracking page granularity in bytes.
pub const PAGE_SIZE: u32 = 4096;

/// Number of pages a payload of `total_len` splits into.
#[must_use]
pub fn page_count(total_len: u64, page_size: u32) -> u32 {
    debug_assert!(page_size > 0);
    u32::try_from(total_len.div_ceil(u64::from(page_size))).expect("bounded by MAX_STREAM_LEN")
}

fn page_len(total_len: u64, page_size: u32, idx: u32) -> u64 {
    let start = u64::from(idx) * u64::from(page_size);
    total_len.saturating_sub(start).min(u64::from(page_size))
}

fn page_slice(payload: &[u8], page_size: u32, idx: u32) -> &[u8] {
    let start = idx as usize * page_size as usize;
    let end = (start + page_size as usize).min(payload.len());
    &payload[start..end]
}

/// Per-page SHA-256 digest table of one state generation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PageDigests {
    page_size: u32,
    total_len: u64,
    /// SHA-256 of the whole digested state (content-addresses the
    /// generation; copied into [`DeltaManifest::base_digest`]).
    state_digest: [u8; 32],
    digests: Vec<[u8; 32]>,
}

impl PageDigests {
    /// Computes the digest table of `payload` at `page_size` granularity.
    ///
    /// # Panics
    ///
    /// Panics on a zero page size (caller invariant).
    #[must_use]
    pub fn compute(payload: &[u8], page_size: u32) -> Self {
        assert!(page_size > 0, "zero page size");
        let n = page_count(payload.len() as u64, page_size);
        let digests = (0..n)
            .map(|idx| sha256(page_slice(payload, page_size, idx)))
            .collect();
        PageDigests {
            page_size,
            total_len: payload.len() as u64,
            state_digest: sha256(payload),
            digests,
        }
    }

    /// SHA-256 of the whole digested state.
    #[must_use]
    pub fn state_digest(&self) -> [u8; 32] {
        self.state_digest
    }

    /// The page granularity.
    #[must_use]
    pub fn page_size(&self) -> u32 {
        self.page_size
    }

    /// Total length of the digested state.
    #[must_use]
    pub fn total_len(&self) -> u64 {
        self.total_len
    }

    /// Number of pages.
    #[must_use]
    pub fn n_pages(&self) -> u32 {
        self.digests.len() as u32
    }

    /// Serializes the table (checkpoint-store sidecar format).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.u32(self.page_size);
        w.u64(self.total_len);
        w.array(&self.state_digest);
        w.u32(self.digests.len() as u32);
        for d in &self.digests {
            w.array(d);
        }
        w.finish()
    }

    /// Parses a digest table.
    ///
    /// # Errors
    ///
    /// [`SgxError::Decode`] on malformed or internally inconsistent
    /// input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SgxError> {
        let mut r = WireReader::new(bytes);
        let page_size = r.u32()?;
        let total_len = r.u64()?;
        let state_digest = r.array()?;
        let n = r.u32()?;
        if page_size == 0 || total_len > MAX_STREAM_LEN || n != page_count(total_len, page_size) {
            return Err(SgxError::Decode);
        }
        // The sidecar lives on the adversary-controlled disk: cap the
        // up-front allocation so a forged header (tiny page size, huge
        // count) cannot demand gigabytes before the reads fail.
        let mut digests = Vec::with_capacity(n.min(1 << 20) as usize);
        for _ in 0..n {
            digests.push(r.array()?);
        }
        r.finish()?;
        Ok(PageDigests {
            page_size,
            total_len,
            state_digest,
            digests,
        })
    }
}

/// The compact description of a dirty-page delta between two state
/// generations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeltaManifest {
    /// Generation the delta applies on top of.
    pub base_generation: u64,
    /// Generation the delta produces.
    pub new_generation: u64,
    /// Page granularity of the diff.
    pub page_size: u32,
    /// Length of the base state in bytes.
    pub base_len: u64,
    /// Length of the new state in bytes.
    pub new_len: u64,
    /// SHA-256 of the base state. Generation numbers alone do not
    /// identify content (two stores can number independently after a
    /// fallback reset); the digest pins the exact base so a delta is
    /// never applied onto the wrong snapshot.
    pub base_digest: [u8; 32],
    /// SHA-256 of the complete new state ([`apply`] verifies it).
    pub new_digest: [u8; 32],
    /// Dirty page indices in the new state's layout, strictly ascending.
    pub dirty: Vec<u32>,
}

impl DeltaManifest {
    /// Total length of the packed dirty-page payload.
    #[must_use]
    pub fn payload_len(&self) -> u64 {
        self.dirty
            .iter()
            .map(|&idx| page_len(self.new_len, self.page_size, idx))
            .sum()
    }

    /// Internal-consistency check, run before any page is applied.
    ///
    /// # Errors
    ///
    /// [`MigError::Transfer`] on degenerate geometry, out-of-range or
    /// non-ascending dirty indices, or an empty dirty set.
    pub fn validate(&self) -> Result<(), MigError> {
        if self.page_size == 0 {
            return Err(MigError::Transfer("delta: zero page size"));
        }
        if self.new_len == 0 || self.new_len > MAX_STREAM_LEN || self.base_len > MAX_STREAM_LEN {
            return Err(MigError::Transfer("delta: state length out of bounds"));
        }
        if self.dirty.is_empty() {
            return Err(MigError::Transfer("delta: empty dirty set"));
        }
        let n_pages = page_count(self.new_len, self.page_size);
        let mut prev: Option<u32> = None;
        for &idx in &self.dirty {
            if idx >= n_pages {
                return Err(MigError::Transfer("delta: dirty page out of range"));
            }
            if prev.is_some_and(|p| idx <= p) {
                return Err(MigError::Transfer("delta: dirty pages not ascending"));
            }
            prev = Some(idx);
        }
        Ok(())
    }

    /// Serializes the manifest (travels inside `DeltaStart`).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.u64(self.base_generation);
        w.u64(self.new_generation);
        w.u32(self.page_size);
        w.u64(self.base_len);
        w.u64(self.new_len);
        w.array(&self.base_digest);
        w.array(&self.new_digest);
        w.u32(self.dirty.len() as u32);
        for &idx in &self.dirty {
            w.u32(idx);
        }
        w.finish()
    }

    /// Parses and validates a manifest.
    ///
    /// # Errors
    ///
    /// [`SgxError::Decode`] on malformed input or a manifest that fails
    /// [`DeltaManifest::validate`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SgxError> {
        let mut r = WireReader::new(bytes);
        let base_generation = r.u64()?;
        let new_generation = r.u64()?;
        let page_size = r.u32()?;
        let base_len = r.u64()?;
        let new_len = r.u64()?;
        let base_digest = r.array()?;
        let new_digest = r.array()?;
        let n = r.u32()? as usize;
        let mut dirty = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            dirty.push(r.u32()?);
        }
        r.finish()?;
        let manifest = DeltaManifest {
            base_generation,
            new_generation,
            page_size,
            base_len,
            new_len,
            base_digest,
            new_digest,
            dirty,
        };
        manifest.validate().map_err(|_| SgxError::Decode)?;
        Ok(manifest)
    }
}

/// Diffs `new_state` against the `base` digest table, returning the
/// manifest and the packed dirty-page payload.
///
/// A page is dirty when it lies beyond the base, its length differs from
/// the base page, or its digest differs. When nothing changed, page 0 is
/// still marked dirty so the delta (and its chunk stream) is never empty
/// — an identical repeat migration ships one page instead of zero.
///
/// # Panics
///
/// Panics when `new_state` is empty (callers stream only non-empty
/// state) or the digest table has a zero page size.
#[must_use]
pub fn diff(
    base: &PageDigests,
    base_generation: u64,
    new_generation: u64,
    new_state: &[u8],
) -> (DeltaManifest, Vec<u8>) {
    assert!(!new_state.is_empty(), "empty state cannot be diffed");
    let page_size = base.page_size();
    let n_pages = page_count(new_state.len() as u64, page_size);
    let mut dirty = Vec::new();
    let mut payload = Vec::new();
    for idx in 0..n_pages {
        let page = page_slice(new_state, page_size, idx);
        let clean = idx < base.n_pages()
            && page_len(base.total_len, page_size, idx) == page.len() as u64
            && mig_crypto::ct::ct_eq(&base.digests[idx as usize], &sha256(page));
        if !clean {
            dirty.push(idx);
            payload.extend_from_slice(page);
        }
    }
    if dirty.is_empty() {
        dirty.push(0);
        payload.extend_from_slice(page_slice(new_state, page_size, 0));
    }
    let manifest = DeltaManifest {
        base_generation,
        new_generation,
        page_size,
        base_len: base.total_len(),
        new_len: new_state.len() as u64,
        base_digest: base.state_digest(),
        new_digest: sha256(new_state),
        dirty,
    };
    (manifest, payload)
}

/// Reconstructs the new state from `base` plus a delta, verifying the
/// manifest *before* any page is applied and the whole-state digest
/// before the result is released.
///
/// # Errors
///
/// [`MigError::Transfer`] when the manifest fails validation, the base or
/// payload length does not match the manifest, a clean page is not fully
/// covered by the base, or the reconstructed state's digest differs from
/// [`DeltaManifest::new_digest`].
pub fn apply(base: &[u8], manifest: &DeltaManifest, payload: &[u8]) -> Result<Vec<u8>, MigError> {
    // All validation happens up front: nothing is reconstructed from a
    // manifest that is internally inconsistent.
    manifest.validate()?;
    if base.len() as u64 != manifest.base_len {
        return Err(MigError::Transfer("delta: base length mismatch"));
    }
    if !mig_crypto::ct::ct_eq(&sha256(base), &manifest.base_digest) {
        return Err(MigError::Transfer("delta: base digest mismatch"));
    }
    if payload.len() as u64 != manifest.payload_len() {
        return Err(MigError::Transfer("delta: payload length mismatch"));
    }
    let n_pages = page_count(manifest.new_len, manifest.page_size);
    // Every clean page must be fully present in the base.
    for idx in 0..n_pages {
        if manifest.dirty.binary_search(&idx).is_err() {
            let end = u64::from(idx) * u64::from(manifest.page_size)
                + page_len(manifest.new_len, manifest.page_size, idx);
            if end > manifest.base_len {
                return Err(MigError::Transfer("delta: clean page outside base"));
            }
        }
    }

    let mut out = Vec::with_capacity(manifest.new_len as usize);
    let mut taken = 0usize;
    for idx in 0..n_pages {
        let len = page_len(manifest.new_len, manifest.page_size, idx) as usize;
        if manifest.dirty.binary_search(&idx).is_ok() {
            out.extend_from_slice(&payload[taken..taken + len]);
            taken += len;
        } else {
            let start = idx as usize * manifest.page_size as usize;
            out.extend_from_slice(&base[start..start + len]);
        }
    }
    if !mig_crypto::ct::ct_eq(&sha256(&out), &manifest.new_digest) {
        return Err(MigError::Transfer("delta: reconstructed digest mismatch"));
    }
    Ok(out)
}

/// Destination-side **speculative delta restore**.
///
/// The eager counterpart of [`apply`]: instead of reconstructing the new
/// state only after the whole packed payload arrived, the retained base
/// is staged up front (manifest validated, base content-checked, clean
/// pages copied into place) and the dirty-page payload is overlaid
/// fragment by fragment as its chunks verify, folding the new state's
/// whole digest in incrementally. When the final chunk lands, only the
/// digest finalize and the release remain. The release rule is identical
/// to [`apply`]'s: nothing is handed out before the reconstructed state
/// matches [`DeltaManifest::new_digest`].
pub struct StagedApply {
    manifest: DeltaManifest,
    /// The staged output: clean pages copied from the base up front,
    /// dirty page slots overwritten as payload bytes verify.
    out: Vec<u8>,
    /// Payload bytes absorbed so far (the packed dirty pages arrive
    /// strictly in order behind the chunk chain).
    absorbed: u64,
    /// Cursor into the dirty-page list: which dirty page the next
    /// payload byte lands in, and how far into it.
    rank: usize,
    offset_in_page: u64,
    /// Incremental SHA-256 over `out`, folded in up to `hashed_upto` —
    /// the frontier below which every byte is final (clean pages, plus
    /// dirty pages fully covered by absorbed payload).
    hasher: Sha256,
    hashed_upto: usize,
}

impl std::fmt::Debug for StagedApply {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StagedApply")
            .field("new_len", &self.manifest.new_len)
            .field("absorbed", &self.absorbed)
            .field("hashed_upto", &self.hashed_upto)
            .finish_non_exhaustive()
    }
}

impl StagedApply {
    /// Stages `base` for the delta described by `manifest`: validates
    /// the manifest, content-checks the base (length + digest), and
    /// copies every clean page into the output buffer.
    ///
    /// # Errors
    ///
    /// The same rejections as [`apply`]'s up-front phase:
    /// [`MigError::Transfer`] on a manifest that fails validation, a
    /// base length/digest mismatch, or a clean page not fully covered by
    /// the base.
    pub fn new(base: &[u8], manifest: &DeltaManifest) -> Result<Self, MigError> {
        manifest.validate()?;
        if base.len() as u64 != manifest.base_len {
            return Err(MigError::Transfer("delta: base length mismatch"));
        }
        if !mig_crypto::ct::ct_eq(&sha256(base), &manifest.base_digest) {
            return Err(MigError::Transfer("delta: base digest mismatch"));
        }
        let n_pages = page_count(manifest.new_len, manifest.page_size);
        let mut out = vec![0u8; manifest.new_len as usize];
        for idx in 0..n_pages {
            if manifest.dirty.binary_search(&idx).is_ok() {
                continue;
            }
            let start = idx as usize * manifest.page_size as usize;
            let len = page_len(manifest.new_len, manifest.page_size, idx) as usize;
            if (start + len) as u64 > manifest.base_len {
                return Err(MigError::Transfer("delta: clean page outside base"));
            }
            out[start..start + len].copy_from_slice(&base[start..start + len]);
        }
        let mut staged = StagedApply {
            manifest: manifest.clone(),
            out,
            absorbed: 0,
            rank: 0,
            offset_in_page: 0,
            hasher: Sha256::new(),
            hashed_upto: 0,
        };
        // A clean prefix (pages before the first dirty one) is final
        // immediately; fold it in now.
        staged.advance_hash();
        Ok(staged)
    }

    /// The generation this staged delta produces.
    #[must_use]
    pub fn new_generation(&self) -> u64 {
        self.manifest.new_generation
    }

    /// The manifest being applied.
    #[must_use]
    pub fn manifest(&self) -> &DeltaManifest {
        &self.manifest
    }

    /// Overlays the next `bytes` of the verified packed payload onto the
    /// staged output and advances the incremental digest over every byte
    /// that just became final. Feed exactly the chunk payloads, in chunk
    /// order.
    ///
    /// # Errors
    ///
    /// [`MigError::Transfer`] when more payload arrives than the
    /// manifest's dirty pages can absorb.
    pub fn absorb(&mut self, mut bytes: &[u8]) -> Result<(), MigError> {
        while !bytes.is_empty() {
            let Some(&page) = self.manifest.dirty.get(self.rank) else {
                return Err(MigError::Transfer("delta: payload length mismatch"));
            };
            let page_len = page_len(self.manifest.new_len, self.manifest.page_size, page);
            let start =
                page as usize * self.manifest.page_size as usize + self.offset_in_page as usize;
            let take = ((page_len - self.offset_in_page) as usize).min(bytes.len());
            self.out[start..start + take].copy_from_slice(&bytes[..take]);
            bytes = &bytes[take..];
            self.absorbed += take as u64;
            self.offset_in_page += take as u64;
            if self.offset_in_page == page_len {
                self.rank += 1;
                self.offset_in_page = 0;
            }
        }
        self.advance_hash();
        Ok(())
    }

    /// Folds every newly finalized byte of `out` into the running
    /// digest. The frontier is the start of the first dirty page the
    /// payload has not fully covered yet (everything before it — clean
    /// pages included — can never change again), or the whole state once
    /// the payload is complete.
    fn advance_hash(&mut self) {
        let frontier = match self.manifest.dirty.get(self.rank) {
            Some(&page) => {
                (u64::from(page) * u64::from(self.manifest.page_size) + self.offset_in_page)
                    as usize
            }
            None => self.out.len(),
        };
        if frontier > self.hashed_upto {
            self.hasher.update(&self.out[self.hashed_upto..frontier]);
            self.hashed_upto = frontier;
        }
    }

    /// Finalizes the staged state: checks that the payload is complete
    /// and the reconstructed state matches the manifest's
    /// [`DeltaManifest::new_digest`], then releases it.
    ///
    /// # Errors
    ///
    /// [`MigError::Transfer`] on a short payload or a digest mismatch
    /// (the reconstruction is discarded).
    pub fn finish(self) -> Result<Vec<u8>, MigError> {
        if self.absorbed != self.manifest.payload_len() {
            return Err(MigError::Transfer("delta: payload length mismatch"));
        }
        debug_assert_eq!(self.hashed_upto, self.out.len());
        if !mig_crypto::ct::ct_eq(&self.hasher.finalize(), &self.manifest.new_digest) {
            return Err(MigError::Transfer("delta: reconstructed digest mismatch"));
        }
        Ok(self.out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(len: usize, fill: u8) -> Vec<u8> {
        (0..len)
            .map(|i| fill.wrapping_add((i % 251) as u8))
            .collect()
    }

    #[test]
    fn diff_apply_round_trip_same_len() {
        let base = state(20_000, 0);
        let mut new = base.clone();
        new[5000] ^= 0xFF;
        new[5001] ^= 0x0F;
        new[12_288] ^= 1; // page 3 boundary
        let digests = PageDigests::compute(&base, PAGE_SIZE);
        let (manifest, payload) = diff(&digests, 4, 5, &new);
        assert_eq!(manifest.dirty, vec![1, 3]);
        assert_eq!(payload.len() as u64, manifest.payload_len());
        assert_eq!(apply(&base, &manifest, &payload).unwrap(), new);
    }

    #[test]
    fn diff_handles_growth_and_shrink() {
        let base = state(10_000, 7);
        for new_len in [3_000usize, 10_000, 17_000] {
            let mut new = state(new_len, 7);
            if new_len >= 10_000 {
                new[100] ^= 1;
            }
            let digests = PageDigests::compute(&base, PAGE_SIZE);
            let (manifest, payload) = diff(&digests, 0, 1, &new);
            assert_eq!(apply(&base, &manifest, &payload).unwrap(), new);
        }
    }

    #[test]
    fn identical_states_ship_exactly_one_page() {
        let base = state(50_000, 3);
        let digests = PageDigests::compute(&base, PAGE_SIZE);
        let (manifest, payload) = diff(&digests, 1, 2, &base);
        assert_eq!(manifest.dirty, vec![0]);
        assert_eq!(payload.len(), PAGE_SIZE as usize);
        assert_eq!(apply(&base, &manifest, &payload).unwrap(), base);
    }

    #[test]
    fn small_page_size_diffs_precisely() {
        let base = state(1000, 9);
        let mut new = base.clone();
        new[130] ^= 2;
        let digests = PageDigests::compute(&base, 64);
        let (manifest, payload) = diff(&digests, 0, 1, &new);
        assert_eq!(manifest.dirty, vec![2]);
        assert_eq!(payload.len(), 64);
        assert_eq!(apply(&base, &manifest, &payload).unwrap(), new);
    }

    #[test]
    fn tampered_manifest_rejected_before_apply() {
        let base = state(20_000, 0);
        let mut new = base.clone();
        new[0] ^= 1;
        let digests = PageDigests::compute(&base, PAGE_SIZE);
        let (manifest, payload) = diff(&digests, 0, 1, &new);

        // Out-of-range dirty index.
        let mut m = manifest.clone();
        m.dirty = vec![999];
        assert!(apply(&base, &m, &payload).is_err());
        // Non-ascending indices.
        let mut m = manifest.clone();
        m.dirty = vec![1, 1];
        assert!(apply(&base, &m, &payload).is_err());
        // Payload length mismatch.
        assert!(apply(&base, &manifest, &payload[..payload.len() - 1]).is_err());
        // Base length mismatch.
        assert!(apply(&base[..100], &manifest, &payload).is_err());
        // Digest mismatch: reconstruction is discarded.
        let mut m = manifest.clone();
        m.new_digest[0] ^= 1;
        assert!(apply(&base, &m, &payload).is_err());
    }

    /// Feeds `payload` into a staged apply in `piece`-sized fragments
    /// (chunk-boundary agnostic, like the real chunk stream).
    fn staged_absorb_all(staged: &mut StagedApply, payload: &[u8], piece: usize) {
        for chunk in payload.chunks(piece.max(1)) {
            staged.absorb(chunk).unwrap();
        }
    }

    #[test]
    fn staged_apply_matches_batch_apply() {
        let base = state(20_000, 0);
        let mut new = base.clone();
        new[5000] ^= 0xFF;
        new[12_288] ^= 1;
        let digests = PageDigests::compute(&base, PAGE_SIZE);
        let (manifest, payload) = diff(&digests, 4, 5, &new);
        // Odd fragment sizes cross page boundaries every which way.
        for piece in [1usize, 7, 100, 4096, 10_000] {
            let mut staged = StagedApply::new(&base, &manifest).unwrap();
            staged_absorb_all(&mut staged, &payload, piece);
            assert_eq!(staged.finish().unwrap(), new, "piece={piece}");
        }
        assert_eq!(apply(&base, &manifest, &payload).unwrap(), new);
    }

    #[test]
    fn staged_apply_handles_growth_and_shrink() {
        let base = state(10_000, 7);
        for new_len in [3_000usize, 10_000, 17_000] {
            let mut new = state(new_len, 7);
            if new_len >= 10_000 {
                new[100] ^= 1;
            }
            let digests = PageDigests::compute(&base, PAGE_SIZE);
            let (manifest, payload) = diff(&digests, 0, 1, &new);
            let mut staged = StagedApply::new(&base, &manifest).unwrap();
            staged_absorb_all(&mut staged, &payload, 333);
            assert_eq!(staged.finish().unwrap(), new);
        }
    }

    #[test]
    fn staged_apply_rejects_what_batch_apply_rejects() {
        let base = state(20_000, 0);
        let mut new = base.clone();
        new[0] ^= 1;
        let digests = PageDigests::compute(&base, PAGE_SIZE);
        let (manifest, payload) = diff(&digests, 0, 1, &new);

        // Wrong base content: rejected before anything is staged.
        assert!(StagedApply::new(&base[..100], &manifest).is_err());
        let mut other = base.clone();
        other[1] ^= 1;
        assert!(StagedApply::new(&other, &manifest).is_err());
        // Short payload: rejected at finish.
        let mut staged = StagedApply::new(&base, &manifest).unwrap();
        staged.absorb(&payload[..payload.len() - 1]).unwrap();
        assert!(staged.finish().is_err());
        // Excess payload: rejected at absorb.
        let mut staged = StagedApply::new(&base, &manifest).unwrap();
        staged.absorb(&payload).unwrap();
        assert!(staged.absorb(&[0]).is_err());
        // Tampered new-state digest: the reconstruction is discarded.
        let mut m = manifest.clone();
        m.new_digest[0] ^= 1;
        let mut staged = StagedApply::new(&base, &m).unwrap();
        staged.absorb(&payload).unwrap();
        assert!(staged.finish().is_err());
    }

    #[test]
    fn manifest_and_digest_table_round_trip() {
        let base = state(9_000, 1);
        let digests = PageDigests::compute(&base, PAGE_SIZE);
        assert_eq!(
            PageDigests::from_bytes(&digests.to_bytes()).unwrap(),
            digests
        );
        let (manifest, _) = diff(&digests, 3, 4, &state(9_000, 2));
        let bytes = manifest.to_bytes();
        assert_eq!(DeltaManifest::from_bytes(&bytes).unwrap(), manifest);
        // Truncations never panic.
        for cut in 1..bytes.len().min(48) {
            assert!(DeltaManifest::from_bytes(&bytes[..bytes.len() - cut]).is_err());
        }
    }
}
