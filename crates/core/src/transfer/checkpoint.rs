//! A durable, generation-numbered checkpoint store on the untrusted
//! per-machine disk.
//!
//! Checkpoints are opaque *sealed* blobs — the store adds durability and
//! ordering, never confidentiality or integrity (the disk is
//! adversary-controlled; sealing provides those). Each `put` assigns the
//! next generation number, updates the `latest` pointer, and prunes old
//! generations beyond the retention count, so a crashed host always
//! finds a recent complete checkpoint even if it died mid-write of a
//! newer one.

use cloud_sim::disk::UntrustedDisk;

/// Default number of retained checkpoint generations.
pub const DEFAULT_KEEP: usize = 4;

/// A namespaced checkpoint series on one machine's untrusted disk.
#[derive(Clone)]
pub struct CheckpointStore {
    disk: UntrustedDisk,
    namespace: String,
    keep: usize,
}

impl std::fmt::Debug for CheckpointStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckpointStore")
            .field("namespace", &self.namespace)
            .field("keep", &self.keep)
            .finish_non_exhaustive()
    }
}

impl CheckpointStore {
    /// Opens the series `namespace` on `disk` with default retention.
    #[must_use]
    pub fn new(disk: UntrustedDisk, namespace: &str) -> Self {
        Self::with_keep(disk, namespace, DEFAULT_KEEP)
    }

    /// Opens the series with an explicit retention count (min 1).
    #[must_use]
    pub fn with_keep(disk: UntrustedDisk, namespace: &str, keep: usize) -> Self {
        CheckpointStore {
            disk,
            namespace: namespace.to_string(),
            keep: keep.max(1),
        }
    }

    fn blob_key(&self, generation: u64) -> String {
        format!("{}/ckpt/{generation:020}", self.namespace)
    }

    fn latest_key(&self) -> String {
        format!("{}/ckpt-latest", self.namespace)
    }

    /// The most recent generation number, if any checkpoint exists.
    #[must_use]
    pub fn latest_generation(&self) -> Option<u64> {
        let raw = self.disk.get(&self.latest_key())?;
        Some(u64::from_le_bytes(raw.try_into().ok()?))
    }

    /// Stores a checkpoint, returning its generation number.
    pub fn put(&self, blob: Vec<u8>) -> u64 {
        let generation = self.latest_generation().map_or(0, |g| g + 1);
        self.disk.put(&self.blob_key(generation), blob);
        self.disk
            .put(&self.latest_key(), generation.to_le_bytes().to_vec());
        // Prune beyond the retention window.
        if let Some(expired) = generation.checked_sub(self.keep as u64) {
            self.disk.delete(&self.blob_key(expired));
        }
        generation
    }

    /// Reads a specific generation.
    #[must_use]
    pub fn get(&self, generation: u64) -> Option<Vec<u8>> {
        self.disk.get(&self.blob_key(generation))
    }

    /// Reads the most recent checkpoint.
    #[must_use]
    pub fn latest(&self) -> Option<(u64, Vec<u8>)> {
        let generation = self.latest_generation()?;
        Some((generation, self.get(generation)?))
    }

    /// Generations currently on disk (ascending).
    #[must_use]
    pub fn generations(&self) -> Vec<u64> {
        let prefix = format!("{}/ckpt/", self.namespace);
        self.disk
            .keys()
            .into_iter()
            .filter_map(|k| k.strip_prefix(&prefix).and_then(|g| g.parse().ok()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_latest_get_round_trip() {
        let store = CheckpointStore::new(UntrustedDisk::new(), "app:a");
        assert!(store.latest().is_none());
        assert_eq!(store.put(b"v0".to_vec()), 0);
        assert_eq!(store.put(b"v1".to_vec()), 1);
        assert_eq!(store.latest().unwrap(), (1, b"v1".to_vec()));
        assert_eq!(store.get(0).unwrap(), b"v0");
    }

    #[test]
    fn prunes_beyond_retention() {
        let store = CheckpointStore::with_keep(UntrustedDisk::new(), "app:b", 2);
        for i in 0..5u8 {
            store.put(vec![i]);
        }
        assert_eq!(store.generations(), vec![3, 4]);
        assert_eq!(store.latest().unwrap(), (4, vec![4]));
        assert!(store.get(2).is_none());
    }

    #[test]
    fn namespaces_are_independent() {
        let disk = UntrustedDisk::new();
        let a = CheckpointStore::new(disk.clone(), "a");
        let b = CheckpointStore::new(disk, "b");
        a.put(b"for a".to_vec());
        assert!(b.latest().is_none());
        b.put(b"for b".to_vec());
        assert_eq!(a.latest().unwrap().1, b"for a");
        assert_eq!(b.latest().unwrap().1, b"for b");
    }
}
