//! A durable, generation-numbered checkpoint store on the untrusted
//! per-machine disk.
//!
//! Checkpoints are opaque *sealed* blobs — the store adds durability and
//! ordering, never confidentiality or integrity (the disk is
//! adversary-controlled; sealing provides those). Each `put` assigns the
//! next generation number, updates the `latest` pointer, and prunes old
//! generations beyond the retention count, so a crashed host always
//! finds a recent complete checkpoint even if it died mid-write of a
//! newer one.
//!
//! Alongside every blob, `put` records a per-generation **page digest
//! table** ([`super::delta::PageDigests`]); [`CheckpointStore::delta_since`]
//! diffs the latest generation against an older one and yields only the
//! changed pages plus a compact [`super::delta::DeltaManifest`]. Both
//! sidecars live on the same untrusted disk — a tampered table can only
//! produce a delta that fails [`super::delta::apply`]'s digest check,
//! never a silently wrong state.

use crate::transfer::delta::{self, DeltaManifest, PageDigests};
use cloud_sim::disk::{DiskError, UntrustedDisk};

/// Default number of retained checkpoint generations.
pub const DEFAULT_KEEP: usize = 4;

/// Metadata of a stored checkpoint, readable without copying the blob.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckpointMeta {
    /// Generation number.
    pub generation: u64,
    /// Blob length in bytes.
    pub len: u64,
}

/// A namespaced checkpoint series on one machine's untrusted disk.
#[derive(Clone)]
pub struct CheckpointStore {
    disk: UntrustedDisk,
    namespace: String,
    keep: usize,
    /// Whether `put` records page-digest sidecars (the delta-diffing
    /// substrate). Off for series that are never diffed — the hashing
    /// is O(blob) per put.
    record_digests: bool,
}

impl std::fmt::Debug for CheckpointStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckpointStore")
            .field("namespace", &self.namespace)
            .field("keep", &self.keep)
            .finish_non_exhaustive()
    }
}

impl CheckpointStore {
    /// Opens the series `namespace` on `disk` with default retention.
    #[must_use]
    pub fn new(disk: UntrustedDisk, namespace: &str) -> Self {
        Self::with_keep(disk, namespace, DEFAULT_KEEP)
    }

    /// Opens the series with an explicit retention count (min 1).
    #[must_use]
    pub fn with_keep(disk: UntrustedDisk, namespace: &str, keep: usize) -> Self {
        CheckpointStore {
            disk,
            namespace: namespace.to_string(),
            keep: keep.max(1),
            record_digests: true,
        }
    }

    /// Disables the per-generation page-digest sidecars, skipping the
    /// O(blob) hashing on every `put`. For series that are never diffed
    /// with [`CheckpointStore::delta_since`] (e.g. sealed ME state,
    /// whose ciphertext changes wholesale every generation anyway).
    #[must_use]
    pub fn without_page_digests(mut self) -> Self {
        self.record_digests = false;
        self
    }

    fn blob_key(&self, generation: u64) -> String {
        format!("{}/ckpt/{generation:020}", self.namespace)
    }

    fn latest_key(&self) -> String {
        format!("{}/ckpt-latest", self.namespace)
    }

    fn digests_key(&self, generation: u64) -> String {
        format!("{}/ckpt-pages/{generation:020}", self.namespace)
    }

    /// The most recent generation number, if any checkpoint exists.
    #[must_use]
    pub fn latest_generation(&self) -> Option<u64> {
        let raw = self.disk.get(&self.latest_key())?;
        Some(u64::from_le_bytes(raw.try_into().ok()?))
    }

    /// Stores a checkpoint, returning its generation number. Records the
    /// blob's page digest table alongside it so later generations can be
    /// diffed against this one via [`CheckpointStore::delta_since`].
    ///
    /// The `latest` pointer is written last: on any error the pointer is
    /// untouched, so the previous generation stays authoritative and a
    /// torn or failed blob write is never pointed to. A failed put may
    /// leave orphan sidecar/blob entries at the unpointed generation;
    /// the next successful put reuses and overwrites that generation.
    ///
    /// # Errors
    ///
    /// Any disk write that fails or tears ([`DiskError`]) aborts the put.
    pub fn put(&self, blob: Vec<u8>) -> Result<u64, DiskError> {
        let generation = self.latest_generation().map_or(0, |g| g + 1);
        if self.record_digests {
            let digests = PageDigests::compute(&blob, delta::PAGE_SIZE);
            self.disk
                .try_put(&self.digests_key(generation), digests.to_bytes())?;
        }
        self.disk.try_put(&self.blob_key(generation), blob)?;
        self.disk
            .try_put(&self.latest_key(), generation.to_le_bytes().to_vec())?;
        // Prune beyond the retention window.
        if let Some(expired) = generation.checked_sub(self.keep as u64) {
            self.disk.delete(&self.blob_key(expired));
            self.disk.delete(&self.digests_key(expired));
        }
        Ok(generation)
    }

    /// Reads a specific generation.
    #[must_use]
    pub fn get(&self, generation: u64) -> Option<Vec<u8>> {
        self.disk.get(&self.blob_key(generation))
    }

    /// Reads the most recent checkpoint.
    #[must_use]
    pub fn latest(&self) -> Option<(u64, Vec<u8>)> {
        let generation = self.latest_generation()?;
        Some((generation, self.get(generation)?))
    }

    /// Metadata of the most recent checkpoint without loading the blob —
    /// the cheap existence/size probe for resume paths that only need to
    /// know *whether* (and how much) state is on disk.
    #[must_use]
    pub fn latest_meta(&self) -> Option<CheckpointMeta> {
        let generation = self.latest_generation()?;
        let len = self.disk.len(&self.blob_key(generation))? as u64;
        Some(CheckpointMeta { generation, len })
    }

    /// The stored page digest table of `generation`, if still on disk
    /// and well-formed.
    #[must_use]
    pub fn page_digests(&self, generation: u64) -> Option<PageDigests> {
        let raw = self.disk.get(&self.digests_key(generation))?;
        PageDigests::from_bytes(&raw).ok()
    }

    /// Diffs the latest generation against `base_generation`, returning
    /// the manifest plus the packed dirty pages — or `None` when either
    /// side (blob or digest table) is no longer on disk.
    #[must_use]
    pub fn delta_since(&self, base_generation: u64) -> Option<(DeltaManifest, Vec<u8>)> {
        let latest_generation = self.latest_generation()?;
        if base_generation > latest_generation {
            return None;
        }
        let base = self.page_digests(base_generation)?;
        let blob = self.get(latest_generation)?;
        Some(delta::diff(
            &base,
            base_generation,
            latest_generation,
            &blob,
        ))
    }

    /// Generations currently on disk (ascending).
    #[must_use]
    pub fn generations(&self) -> Vec<u64> {
        let prefix = format!("{}/ckpt/", self.namespace);
        self.disk
            .keys()
            .into_iter()
            .filter_map(|k| k.strip_prefix(&prefix).and_then(|g| g.parse().ok()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_latest_get_round_trip() {
        let store = CheckpointStore::new(UntrustedDisk::new(), "app:a");
        assert!(store.latest().is_none());
        assert_eq!(store.put(b"v0".to_vec()).unwrap(), 0);
        assert_eq!(store.put(b"v1".to_vec()).unwrap(), 1);
        assert_eq!(store.latest().unwrap(), (1, b"v1".to_vec()));
        assert_eq!(store.get(0).unwrap(), b"v0");
    }

    #[test]
    fn prunes_beyond_retention() {
        let store = CheckpointStore::with_keep(UntrustedDisk::new(), "app:b", 2);
        for i in 0..5u8 {
            store.put(vec![i]).unwrap();
        }
        assert_eq!(store.generations(), vec![3, 4]);
        assert_eq!(store.latest().unwrap(), (4, vec![4]));
        assert!(store.get(2).is_none());
    }

    #[test]
    fn delta_since_yields_only_dirty_pages() {
        let store = CheckpointStore::new(UntrustedDisk::new(), "app:d");
        let base: Vec<u8> = vec![0u8; 64 * 1024];
        let g0 = store.put(base.clone()).unwrap();
        let mut new = base.clone();
        new[5 * 4096] = 0xAA; // dirty exactly one page
        let g1 = store.put(new.clone()).unwrap();
        let (manifest, payload) = store.delta_since(g0).expect("both generations on disk");
        assert_eq!(manifest.base_generation, g0);
        assert_eq!(manifest.new_generation, g1);
        assert_eq!(manifest.dirty, vec![5]);
        assert_eq!(payload.len(), 4096);
        assert_eq!(delta::apply(&base, &manifest, &payload).unwrap(), new);
    }

    #[test]
    fn delta_since_unavailable_when_base_pruned() {
        let store = CheckpointStore::with_keep(UntrustedDisk::new(), "app:e", 2);
        for i in 0..5u8 {
            store.put(vec![i; 100]).unwrap();
        }
        assert!(store.delta_since(0).is_none(), "generation 0 was pruned");
        assert!(store.delta_since(3).is_some(), "generation 3 retained");
        assert!(store.delta_since(9).is_none(), "future base rejected");
    }

    #[test]
    fn latest_meta_matches_latest_without_loading() {
        let store = CheckpointStore::new(UntrustedDisk::new(), "app:f");
        assert!(store.latest_meta().is_none());
        store.put(vec![7; 1234]).unwrap();
        let meta = store.latest_meta().unwrap();
        assert_eq!(meta.generation, 0);
        assert_eq!(meta.len, 1234);
        let (generation, blob) = store.latest().unwrap();
        assert_eq!((meta.generation, meta.len), (generation, blob.len() as u64));
    }

    #[test]
    fn failed_put_leaves_previous_generation_authoritative() {
        use cloud_sim::disk::WriteFault;

        let disk = UntrustedDisk::new();
        let store = CheckpointStore::new(disk.clone(), "app:g");
        store.put(b"good".to_vec()).unwrap();

        // Fail the next blob write outright, then tear the one after.
        let mut faults = vec![WriteFault::Torn { keep: 1 }, WriteFault::Fail];
        disk.set_fault_hook(move |key: &str, _value: &[u8]| {
            if key.contains("/ckpt/") {
                faults.pop().unwrap_or(WriteFault::None)
            } else {
                WriteFault::None
            }
        });

        assert_eq!(store.put(b"lost".to_vec()), Err(DiskError::Failed));
        assert_eq!(store.put(b"torn".to_vec()), Err(DiskError::Torn));
        // The latest pointer never moved off the good generation.
        assert_eq!(store.latest().unwrap(), (0, b"good".to_vec()));

        // With the fault budget exhausted, the next put succeeds and
        // overwrites the unpointed generation.
        assert_eq!(store.put(b"next".to_vec()).unwrap(), 1);
        assert_eq!(store.latest().unwrap(), (1, b"next".to_vec()));
    }

    #[test]
    fn namespaces_are_independent() {
        let disk = UntrustedDisk::new();
        let a = CheckpointStore::new(disk.clone(), "a");
        let b = CheckpointStore::new(disk, "b");
        a.put(b"for a".to_vec()).unwrap();
        assert!(b.latest().is_none());
        b.put(b"for b".to_vec()).unwrap();
        assert_eq!(a.latest().unwrap().1, b"for a");
        assert_eq!(b.latest().unwrap().1, b"for b");
    }
}
