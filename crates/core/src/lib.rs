//! **mig-core** — the migration framework of *Migrating SGX Enclaves with
//! Persistent State* (Alder, Kurnikov, Paverd, Asokan; DSN 2018),
//! implemented on the simulated SGX datacenter of the `sgx-sim` and
//! `cloud-sim` crates.
//!
//! # The problem
//!
//! SGX sealing keys and monotonic counters are bound to one physical
//! machine. Migrating a VM with an enclave therefore either loses the
//! enclave's persistent state (sealed data becomes undecryptable) or —
//! worse — enables *fork* and *roll-back* attacks if the state is made
//! portable naively (paper §III; reproduced in `tests/attacks.rs`).
//!
//! # The design (paper §V)
//!
//! * [`library`] — the **Migration Library**, linked into each migratable
//!   enclave: migratable sealing under a Migration Sealing Key,
//!   migratable counters as hardware counter + offset, the freeze flag,
//!   and the `migration_init` / `migration_start` entry points.
//! * [`me`] — the **Migration Enclave**, one per machine: locally attests
//!   application enclaves, mutually remote-attests peer MEs, verifies the
//!   operator [`operator::MeCredential`] and transcript signatures,
//!   enforces [`policy::MigrationPolicy`], matches migration data to
//!   destination enclaves by MRENCLAVE, and retains data until delivery
//!   is confirmed.
//! * [`harness`] — the enclave wrapper composing application logic with
//!   the library behind a uniform ECALL ABI.
//! * [`host`] — the untrusted host processes relaying ciphertexts.
//! * [`datacenter`] — a facade wiring everything into a runnable
//!   simulated datacenter.
//! * [`baseline`] — the native (non-migratable) enclave baseline of
//!   Figs. 3–4 and the Gu-et-al-style memory-migration baseline attacked
//!   in §III.
//! * [`transfer`] — the CTR-style extension beyond the paper: a durable
//!   [`transfer::checkpoint::CheckpointStore`] on the untrusted disk and
//!   a chunked, resumable, HMAC-chained streaming engine
//!   ([`transfer::chunker`]) that replaces the single-shot transfer for
//!   state above [`transfer::TransferConfig::stream_threshold`]. Apps
//!   stage bulk state via
//!   [`library::MigrationLibrary::stage_bulk_state`]; the Migration
//!   Enclaves pipeline it as windowed `Chunk` messages over the attested
//!   channel, persist per-chunk progress, and — driven by
//!   [`datacenter::Datacenter::migrate_app_resumable`] /
//!   [`datacenter::Datacenter::resume_migration`] — recover a
//!   mid-transfer machine crash from the last acknowledged chunk.
//!
//! # Quick start
//!
//! ```
//! use mig_core::datacenter::Datacenter;
//! use mig_core::harness::{AppCtx, AppLogic};
//! use mig_core::library::InitRequest;
//! use mig_core::policy::MigrationPolicy;
//! use cloud_sim::machine::MachineLabels;
//! use sgx_sim::measurement::{EnclaveImage, EnclaveSigner};
//! use sgx_sim::SgxError;
//!
//! // A minimal migratable enclave: seals a secret, keeps a counter.
//! struct Vault;
//! impl AppLogic for Vault {
//!     fn handle(&mut self, ctx: &mut AppCtx<'_, '_>, op: u32, input: &[u8])
//!         -> Result<Vec<u8>, SgxError>
//!     {
//!         match op {
//!             1 => Ok(ctx.lib.seal_migratable_data(ctx.env, b"", input)?),
//!             2 => Ok(ctx.lib.unseal_migratable_data(ctx.env, input)?.0),
//!             _ => Err(SgxError::InvalidParameter("opcode")),
//!         }
//!     }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut dc = Datacenter::new(7);
//! let policy = MigrationPolicy::same_operator_only();
//! let m1 = dc.add_machine(MachineLabels::new("dc-1", "eu"), &policy);
//! let m2 = dc.add_machine(MachineLabels::new("dc-1", "eu"), &policy);
//!
//! let image = EnclaveImage::build("vault", 1, b"vault v1", &EnclaveSigner::from_seed([1; 32]));
//! dc.deploy_app("vault-src", m1, &image, Vault, InitRequest::New)?;
//! let sealed = dc.call_app("vault-src", 1, b"the secret")?;
//!
//! // Deploy the destination and migrate the persistent state.
//! dc.deploy_app("vault-dst", m2, &image, Vault, InitRequest::Migrate)?;
//! dc.migrate_app("vault-src", "vault-dst")?;
//!
//! // The sealed blob travelled as opaque bytes; the destination unseals it.
//! assert_eq!(dc.call_app("vault-dst", 2, &sealed)?, b"the secret");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod datacenter;
pub mod error;
pub mod harness;
pub mod host;
pub mod library;
pub mod me;
pub mod msgs;
pub mod operator;
pub mod policy;
pub mod remote_attest;
pub mod secure_channel;
pub mod supervisor;
pub mod transfer;

pub use error::{ChannelPeer, MigError};
