//! Mutual remote attestation between enclaves on different machines.
//!
//! Used by the Migration Enclaves to establish their cross-machine channel
//! (§V-B: "the Migration Enclave executes a mutual remote attestation with
//! the corresponding Migration Enclave on the destination machine"). The
//! quote/IAS mechanics follow the real flow: each side's enclave produces
//! a *quote* binding its ephemeral X25519 key; the **untrusted host** on
//! the receiving side submits the quote to the (simulated) Intel
//! Attestation Service and passes the signed
//! [`AttestationEvidence`] into its
//! enclave, which verifies it offline against the pinned IAS key.
//!
//! Operator authentication (credentials + transcript signatures, §V-B) is
//! layered on top by [`crate::me`]; this module provides the transcript
//! bytes both layers agree on.

use crate::error::MigError;
use mig_crypto::ed25519::VerifyingKey;
use mig_crypto::hkdf::hkdf;
use mig_crypto::sha256::Sha256;
use mig_crypto::x25519::{PublicKey, StaticSecret};
use sgx_sim::enclave::EnclaveEnv;
use sgx_sim::ias::AttestationEvidence;
use sgx_sim::measurement::MrEnclave;
use sgx_sim::quote::Quote;
use sgx_sim::report::ReportData;
use sgx_sim::wire::{WireReader, WireWriter};
use sgx_sim::SgxError;

/// Verification parameters pinned inside the enclave.
#[derive(Clone, Debug)]
pub struct RaConfig {
    /// The IAS report-signing key to verify evidence against.
    pub ias_key: VerifyingKey,
    /// The measurement the peer must attest with (for MEs: their own,
    /// §VI-A "aborts the attestation process if the peer enclave does not
    /// have the same MRENCLAVE value as itself").
    pub expected_mr_enclave: MrEnclave,
}

/// The initiator's first message: ephemeral key + quote binding it.
///
/// On the wire this carries the raw [`Quote`]; the receiving host swaps it
/// for IAS evidence before the responder enclave sees it.
#[derive(Clone, Debug)]
pub struct RaHello {
    /// Initiator's ephemeral public key.
    pub g_i: PublicKey,
    /// Quote with `report_data = H("ra-hello" || g_i)`.
    pub quote: Quote,
}

impl RaHello {
    /// Serializes for transport.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.array(&self.g_i.0).bytes(&self.quote.to_bytes());
        w.finish()
    }

    /// Parses from bytes.
    ///
    /// # Errors
    ///
    /// [`SgxError::Decode`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SgxError> {
        let mut r = WireReader::new(bytes);
        let g_i = PublicKey(r.array()?);
        let quote = Quote::from_bytes(r.bytes()?)?;
        r.finish()?;
        Ok(RaHello { g_i, quote })
    }
}

/// The responder's reply: its ephemeral key + quote binding both keys.
#[derive(Clone, Debug)]
pub struct RaResponseQuote {
    /// Responder's ephemeral public key.
    pub g_r: PublicKey,
    /// Quote with `report_data = H("ra-resp" || g_r || g_i)`.
    pub quote: Quote,
}

impl RaResponseQuote {
    /// Serializes for transport.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.array(&self.g_r.0).bytes(&self.quote.to_bytes());
        w.finish()
    }

    /// Parses from bytes.
    ///
    /// # Errors
    ///
    /// [`SgxError::Decode`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SgxError> {
        let mut r = WireReader::new(bytes);
        let g_r = PublicKey(r.array()?);
        let quote = Quote::from_bytes(r.bytes()?)?;
        r.finish()?;
        Ok(RaResponseQuote { g_r, quote })
    }
}

/// The attested 128-bit session key.
pub type RaSessionKey = [u8; 16];

fn hello_binding(g_i: &PublicKey) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(b"sgx-migrate.ra-hello");
    h.update(&g_i.0);
    h.finalize()
}

fn response_binding(g_r: &PublicKey, g_i: &PublicKey) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(b"sgx-migrate.ra-resp");
    h.update(&g_r.0);
    h.update(&g_i.0);
    h.finalize()
}

fn derive_key(shared: &[u8; 32], g_i: &PublicKey, g_r: &PublicKey) -> RaSessionKey {
    let mut info = Vec::with_capacity(80);
    info.extend_from_slice(b"sgx-migrate.ra.aek");
    info.extend_from_slice(&g_i.0);
    info.extend_from_slice(&g_r.0);
    hkdf::<16>(b"", shared, &info)
}

/// The signed attestation transcript (operator-auth layer input).
#[must_use]
pub fn transcript_bytes(g_i: &PublicKey, g_r: &PublicKey, mr_enclave: &MrEnclave) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.array(b"sgx-migrate.ra.v1\0");
    w.array(&g_i.0);
    w.array(&g_r.0);
    w.array(&mr_enclave.0);
    w.finish()
}

/// Initiator side (the source ME).
pub struct RaInitiator {
    secret: StaticSecret,
    g_i: PublicKey,
}

impl std::fmt::Debug for RaInitiator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RaInitiator")
            .field("g_i", &self.g_i)
            .finish_non_exhaustive()
    }
}

impl RaInitiator {
    /// Starts a session: draws an ephemeral key and quotes it.
    ///
    /// # Errors
    ///
    /// Propagates quote-generation failures.
    pub fn start(env: &mut EnclaveEnv<'_>) -> Result<(Self, RaHello), MigError> {
        let mut seed = [0u8; 32];
        env.random_bytes(&mut seed);
        let secret = StaticSecret::from_bytes(seed);
        let g_i = secret.public_key();
        let report = env.ereport(
            &env.qe_target_info(),
            &ReportData::from_hash(&hello_binding(&g_i)),
        );
        let quote = env.quote_report(&report)?;
        Ok((RaInitiator { secret, g_i }, RaHello { g_i, quote }))
    }

    /// This side's ephemeral public key.
    #[must_use]
    pub fn g_i(&self) -> PublicKey {
        self.g_i
    }

    /// Verifies the responder's evidence and derives the session key.
    ///
    /// # Errors
    ///
    /// [`MigError::PeerAuthenticationFailed`] on bad evidence, wrong
    /// measurement, or wrong key binding.
    pub fn process_response(
        self,
        cfg: &RaConfig,
        g_r: PublicKey,
        evidence: &AttestationEvidence,
    ) -> Result<RaSessionKey, MigError> {
        let body = evidence
            .verify(&cfg.ias_key)
            .map_err(|_| MigError::PeerAuthenticationFailed("ias evidence"))?;
        if body.identity.mr_enclave != cfg.expected_mr_enclave {
            return Err(MigError::PeerAuthenticationFailed("peer measurement"));
        }
        if body.report_data.hash_prefix() != response_binding(&g_r, &self.g_i) {
            return Err(MigError::PeerAuthenticationFailed("key binding"));
        }
        let shared = self.secret.diffie_hellman(&g_r);
        Ok(derive_key(&shared, &self.g_i, &g_r))
    }
}

/// Responder side (the destination ME).
pub struct RaResponder {
    g_i: PublicKey,
    g_r: PublicKey,
    key: RaSessionKey,
}

impl std::fmt::Debug for RaResponder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RaResponder")
            .field("g_i", &self.g_i)
            .field("g_r", &self.g_r)
            .finish_non_exhaustive()
    }
}

impl RaResponder {
    /// Verifies the initiator's evidence, draws an ephemeral key, and
    /// quotes it bound to both keys.
    ///
    /// # Errors
    ///
    /// [`MigError::PeerAuthenticationFailed`] on bad evidence, wrong
    /// measurement, or wrong key binding.
    pub fn respond(
        env: &mut EnclaveEnv<'_>,
        cfg: &RaConfig,
        g_i: PublicKey,
        evidence: &AttestationEvidence,
    ) -> Result<(Self, RaResponseQuote), MigError> {
        let body = evidence
            .verify(&cfg.ias_key)
            .map_err(|_| MigError::PeerAuthenticationFailed("ias evidence"))?;
        if body.identity.mr_enclave != cfg.expected_mr_enclave {
            return Err(MigError::PeerAuthenticationFailed("peer measurement"));
        }
        if body.report_data.hash_prefix() != hello_binding(&g_i) {
            return Err(MigError::PeerAuthenticationFailed("key binding"));
        }

        let mut seed = [0u8; 32];
        env.random_bytes(&mut seed);
        let secret = StaticSecret::from_bytes(seed);
        let g_r = secret.public_key();
        let report = env.ereport(
            &env.qe_target_info(),
            &ReportData::from_hash(&response_binding(&g_r, &g_i)),
        );
        let quote = env.quote_report(&report)?;
        let shared = secret.diffie_hellman(&g_i);
        let key = derive_key(&shared, &g_i, &g_r);
        Ok((
            RaResponder { g_i, g_r, key },
            RaResponseQuote { g_r, quote },
        ))
    }

    /// The ephemeral keys of this session (for transcript computation).
    #[must_use]
    pub fn keys(&self) -> (PublicKey, PublicKey) {
        (self.g_i, self.g_r)
    }

    /// Yields the session key (callers gate trust on the operator-auth
    /// layer completing first).
    #[must_use]
    pub fn session_key(&self) -> RaSessionKey {
        self.key
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sgx_sim::enclave::EnclaveCode;
    use sgx_sim::ias::AttestationService;
    use sgx_sim::machine::{MachineId, SgxMachine};
    use sgx_sim::measurement::{EnclaveImage, EnclaveSigner};

    /// Minimal enclave that drives RA via opcodes so tests can run the
    /// full cross-machine flow through real ECALLs.
    #[derive(Default)]
    struct RaTestEnclave {
        cfg: Option<RaConfig>,
        initiator: Option<RaInitiator>,
        responder: Option<RaResponder>,
        key: Option<RaSessionKey>,
    }

    const OP_SET_CFG: u32 = 1; // wire{ias 32, expected 32}
    const OP_START: u32 = 2; // -> hello bytes
    const OP_RESPOND: u32 = 3; // wire{g 32, evidence} -> response bytes
    const OP_FINISH: u32 = 4; // wire{g_r 32, evidence} -> key16 (test only!)
    const OP_RESP_KEY: u32 = 5; // -> key16 (test only!)

    impl EnclaveCode for RaTestEnclave {
        fn ecall(
            &mut self,
            env: &mut EnclaveEnv<'_>,
            opcode: u32,
            input: &[u8],
        ) -> Result<Vec<u8>, SgxError> {
            match opcode {
                OP_SET_CFG => {
                    let mut r = WireReader::new(input);
                    let ias_key = VerifyingKey(r.array()?);
                    let expected_mr_enclave = MrEnclave(r.array()?);
                    r.finish()?;
                    self.cfg = Some(RaConfig {
                        ias_key,
                        expected_mr_enclave,
                    });
                    Ok(vec![])
                }
                OP_START => {
                    let (session, hello) = RaInitiator::start(env).map_err(SgxError::from)?;
                    self.initiator = Some(session);
                    Ok(hello.to_bytes())
                }
                OP_RESPOND => {
                    let mut r = WireReader::new(input);
                    let g_i = PublicKey(r.array()?);
                    let evidence = AttestationEvidence::from_bytes(r.bytes()?)?;
                    r.finish()?;
                    let cfg = self.cfg.as_ref().expect("configured");
                    let (session, response) =
                        RaResponder::respond(env, cfg, g_i, &evidence).map_err(SgxError::from)?;
                    self.responder = Some(session);
                    Ok(response.to_bytes())
                }
                OP_FINISH => {
                    let mut r = WireReader::new(input);
                    let g_r = PublicKey(r.array()?);
                    let evidence = AttestationEvidence::from_bytes(r.bytes()?)?;
                    r.finish()?;
                    let cfg = self.cfg.as_ref().expect("configured");
                    let session = self.initiator.take().expect("started");
                    let key = session
                        .process_response(cfg, g_r, &evidence)
                        .map_err(SgxError::from)?;
                    self.key = Some(key);
                    Ok(key.to_vec())
                }
                OP_RESP_KEY => Ok(self
                    .responder
                    .as_ref()
                    .expect("responded")
                    .session_key()
                    .to_vec()),
                _ => Err(SgxError::InvalidParameter("opcode")),
            }
        }
    }

    struct Setup {
        ias: AttestationService,
        m1: SgxMachine,
        m2: SgxMachine,
        image: EnclaveImage,
    }

    fn setup() -> Setup {
        let mut rng = StdRng::seed_from_u64(31);
        let ias = AttestationService::new(&mut rng);
        let m1 = SgxMachine::new(MachineId(1), &ias, &mut rng);
        let m2 = SgxMachine::new(MachineId(2), &ias, &mut rng);
        let signer = EnclaveSigner::from_seed([8; 32]);
        let image = EnclaveImage::build("ra-test", 1, b"identical code", &signer);
        Setup { ias, m1, m2, image }
    }

    fn cfg_bytes(ias: &AttestationService, expected: MrEnclave) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.array(&ias.verifying_key().0).array(&expected.0);
        w.finish()
    }

    /// The untrusted host's job: quote → IAS → evidence.
    fn to_evidence(ias: &AttestationService, quote: &Quote) -> Vec<u8> {
        ias.verify_quote(quote).unwrap().to_bytes()
    }

    #[test]
    fn full_cross_machine_handshake_agrees_on_key() {
        let s = setup();
        let init =
            s.m1.load_enclave(&s.image, Box::<RaTestEnclave>::default())
                .unwrap();
        let resp =
            s.m2.load_enclave(&s.image, Box::<RaTestEnclave>::default())
                .unwrap();
        init.ecall(OP_SET_CFG, &cfg_bytes(&s.ias, s.image.mr_enclave()))
            .unwrap();
        resp.ecall(OP_SET_CFG, &cfg_bytes(&s.ias, s.image.mr_enclave()))
            .unwrap();

        // Initiator starts; host converts the quote to evidence for dst.
        let hello = RaHello::from_bytes(&init.ecall(OP_START, b"").unwrap()).unwrap();
        let mut w = WireWriter::new();
        w.array(&hello.g_i.0)
            .bytes(&to_evidence(&s.ias, &hello.quote));
        let response_bytes = resp.ecall(OP_RESPOND, &w.finish()).unwrap();

        // Host converts the responder's quote for src.
        let response = RaResponseQuote::from_bytes(&response_bytes).unwrap();
        let mut w = WireWriter::new();
        w.array(&response.g_r.0)
            .bytes(&to_evidence(&s.ias, &response.quote));
        let key_i = init.ecall(OP_FINISH, &w.finish()).unwrap();

        let key_r = resp.ecall(OP_RESP_KEY, b"").unwrap();
        assert_eq!(key_i, key_r, "both sides derive the same session key");
        assert_eq!(key_i.len(), 16);
    }

    #[test]
    fn wrong_measurement_rejected() {
        let s = setup();
        let signer = EnclaveSigner::from_seed([8; 32]);
        let other_image = EnclaveImage::build("impostor", 1, b"different code", &signer);

        let init =
            s.m1.load_enclave(&s.image, Box::<RaTestEnclave>::default())
                .unwrap();
        // The impostor responds from m2 with a DIFFERENT measurement.
        let resp =
            s.m2.load_enclave(&other_image, Box::<RaTestEnclave>::default())
                .unwrap();
        init.ecall(OP_SET_CFG, &cfg_bytes(&s.ias, s.image.mr_enclave()))
            .unwrap();
        // The impostor is willing to accept anyone (it's malicious).
        resp.ecall(OP_SET_CFG, &cfg_bytes(&s.ias, s.image.mr_enclave()))
            .unwrap();

        let hello = RaHello::from_bytes(&init.ecall(OP_START, b"").unwrap()).unwrap();
        let mut w = WireWriter::new();
        w.array(&hello.g_i.0)
            .bytes(&to_evidence(&s.ias, &hello.quote));
        // Responder checks the *initiator's* measurement first and the
        // initiator is genuine, so the responder may answer...
        let response_bytes = resp.ecall(OP_RESPOND, &w.finish()).unwrap();
        let response = RaResponseQuote::from_bytes(&response_bytes).unwrap();
        // ...but the initiator must reject the impostor's evidence.
        let mut w = WireWriter::new();
        w.array(&response.g_r.0)
            .bytes(&to_evidence(&s.ias, &response.quote));
        let err = init.ecall(OP_FINISH, &w.finish()).unwrap_err();
        assert!(matches!(err, SgxError::Enclave(msg) if msg.contains("peer measurement")));
    }

    #[test]
    fn tampered_key_binding_rejected() {
        let s = setup();
        let init =
            s.m1.load_enclave(&s.image, Box::<RaTestEnclave>::default())
                .unwrap();
        let resp =
            s.m2.load_enclave(&s.image, Box::<RaTestEnclave>::default())
                .unwrap();
        init.ecall(OP_SET_CFG, &cfg_bytes(&s.ias, s.image.mr_enclave()))
            .unwrap();
        resp.ecall(OP_SET_CFG, &cfg_bytes(&s.ias, s.image.mr_enclave()))
            .unwrap();

        let hello = RaHello::from_bytes(&init.ecall(OP_START, b"").unwrap()).unwrap();
        // MITM substitutes its own DH key but cannot fix the quote.
        let mut evil_g = hello.g_i.0;
        evil_g[0] ^= 1;
        let mut w = WireWriter::new();
        w.array(&evil_g).bytes(&to_evidence(&s.ias, &hello.quote));
        let err = resp.ecall(OP_RESPOND, &w.finish()).unwrap_err();
        assert!(matches!(err, SgxError::Enclave(msg) if msg.contains("key binding")));
    }

    #[test]
    fn revoked_platform_cannot_attest() {
        let s = setup();
        let init =
            s.m1.load_enclave(&s.image, Box::<RaTestEnclave>::default())
                .unwrap();
        init.ecall(OP_SET_CFG, &cfg_bytes(&s.ias, s.image.mr_enclave()))
            .unwrap();
        let hello = RaHello::from_bytes(&init.ecall(OP_START, b"").unwrap()).unwrap();
        s.ias.revoke(s.m1.platform_id());
        assert!(s.ias.verify_quote(&hello.quote).is_err());
    }

    #[test]
    fn transcript_is_deterministic_and_binds_inputs() {
        let g1 = PublicKey([1; 32]);
        let g2 = PublicKey([2; 32]);
        let mr = MrEnclave([3; 32]);
        assert_eq!(
            transcript_bytes(&g1, &g2, &mr),
            transcript_bytes(&g1, &g2, &mr)
        );
        assert_ne!(
            transcript_bytes(&g1, &g2, &mr),
            transcript_bytes(&g2, &g1, &mr)
        );
        assert_ne!(
            transcript_bytes(&g1, &g2, &mr),
            transcript_bytes(&g1, &g2, &MrEnclave([4; 32]))
        );
    }
}
