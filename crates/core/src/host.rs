//! The untrusted host processes: [`MeHost`] (management VM) and
//! [`AppHost`] (guest VM application).
//!
//! Hosts are exactly as trusted as the paper assumes — not at all. They
//! relay opaque ciphertexts between enclaves, store sealed blobs on the
//! untrusted disk, and talk to the (simulated) IAS. Everything they touch
//! is adversary-visible; the protocol's security rests entirely on what
//! the enclaves verify.

use crate::harness::{encode_init, open_envelope, ops as lib_ops};
use crate::library::InitRequest;
use crate::me::{
    ops as me_ops, read_opt, MeAction, RaResponseAuth, StreamFrames, TelemetryReport, FRAME_BATCH,
};
use crate::remote_attest::RaHello;
use crate::transfer::checkpoint::CheckpointStore;
use cloud_sim::clock::{SimClock, SimTime};
use cloud_sim::disk::UntrustedDisk;
use cloud_sim::network::{Endpoint, Network};
use cloud_sim::world::Service;
use mig_trace::{
    trace_from_label, Edge, Event, EventKind, MetricsRegistry, Phase, Recorder, Telemetry, TraceId,
    TransitionCount, LATENCY_BOUNDS_NS,
};
use sgx_sim::enclave::EnclaveHandle;
use sgx_sim::ias::AttestationService;
use sgx_sim::machine::MachineId;
use sgx_sim::measurement::MrEnclave;
use sgx_sim::quote::Quote;
use sgx_sim::wire::{WireReader, WireWriter};
use sgx_sim::SgxError;
use std::collections::{BTreeMap, HashMap};
use std::time::Duration;

/// Parsed output of the ME's `LA_MSG2` ECALL: msg3, attested
/// measurement, optional forward ciphertext.
type LaMsg2Output = (Vec<u8>, MrEnclave, Option<Vec<u8>>);
/// Parsed output of the ME's `TRANSFER` ECALL: kind, measurement,
/// optional trace id, optional forward ciphertext, optional ack
/// ciphertext.
type TransferOutput = (
    u8,
    MrEnclave,
    Option<TraceId>,
    Option<Vec<u8>>,
    Option<Vec<u8>>,
);
/// Parsed output of the ME's `ACK` ECALL: kind, measurement, optional
/// trace id, optional completion ciphertext, and kind-tagged follow-on
/// stream frames for the peer.
type AckOutput = (
    u8,
    MrEnclave,
    Option<TraceId>,
    Option<Vec<u8>>,
    StreamFrames,
);

/// Reads the optional 8-byte trace id the extended ECALL outputs carry.
fn read_trace(r: &mut WireReader<'_>) -> Result<Option<TraceId>, SgxError> {
    Ok(match read_opt(r)? {
        Some(bytes) => Some(bytes.try_into().map_err(|_| SgxError::Decode)?),
        None => None,
    })
}

/// Duration → whole nanoseconds, saturating (virtual times fit easily).
fn ns_u64(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Short stable tag for an enclave measurement in gauge names (first
/// four measurement bytes, hex). Measurements are public identities.
fn mr_tag(mr: &MrEnclave) -> String {
    mr.0[..4].iter().map(|b| format!("{b:02x}")).collect()
}

/// How many library persists elapse between durable checkpoint-store
/// generations written by an [`AppHost`].
pub const CHECKPOINT_INTERVAL: usize = 4;

/// Modelled IAS HTTPS round-trip latency (intra-region).
pub const IAS_ROUND_TRIP: Duration = Duration::from_millis(20);

/// Service name of the Migration Enclave host on each machine.
pub const ME_SERVICE: &str = "me";

/// Untrusted wire tags for host↔host messages.
pub mod tags {
    /// App → ME: request a local-attestation session.
    pub const LA_START: u8 = 1;
    /// ME → app: DH Msg1.
    pub const LA_MSG1: u8 = 2;
    /// App → ME: DH Msg2.
    pub const LA_MSG2: u8 = 3;
    /// ME → app: DH Msg3.
    pub const LA_MSG3: u8 = 4;
    /// App → ME: encrypted library message.
    pub const LIB_MSG: u8 = 5;
    /// ME → app: encrypted ME message (incoming migration / completion).
    pub const ME_FORWARD: u8 = 6;
    /// ME ↔ ME: remote-attestation hello.
    pub const RA_HELLO: u8 = 7;
    /// ME ↔ ME: remote-attestation response.
    pub const RA_RESPONSE: u8 = 8;
    /// ME ↔ ME: remote-attestation finish.
    pub const RA_FINISH: u8 = 9;
    /// ME ↔ ME: encrypted migration transfer.
    pub const RA_TRANSFER: u8 = 10;
    /// ME ↔ ME: encrypted acknowledgement.
    pub const RA_ACK: u8 = 11;
    /// ME ↔ ME: batched migration transfer (a container of sealed
    /// cells delivered in one enclave transition).
    pub const RA_TRANSFER_BATCH: u8 = 12;
}

/// Untrusted wire tag for one outgoing stream frame, selected by the
/// enclave's frame-kind byte: batch containers ride
/// [`tags::RA_TRANSFER_BATCH`], everything else [`tags::RA_TRANSFER`].
fn stream_frame_tag(kind: u8) -> u8 {
    if kind == FRAME_BATCH {
        tags::RA_TRANSFER_BATCH
    } else {
        tags::RA_TRANSFER
    }
}

fn frame(tag: u8, payload: &[u8]) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.u8(tag).bytes(payload);
    w.finish()
}

fn unframe(bytes: &[u8]) -> Result<(u8, Vec<u8>), SgxError> {
    let mut r = WireReader::new(bytes);
    let tag = r.u8()?;
    let payload = r.bytes_vec()?;
    r.finish()?;
    Ok((tag, payload))
}

// ---------------------------------------------------------------------
// MeHost
// ---------------------------------------------------------------------

/// Destination-side bookkeeping for one inbound chunk stream, in
/// virtual time: announcement arrival and first chunk arrival. The
/// completion frame's arrival closes the partition (see
/// [`MeHost::on_ra_transfer`]).
struct InboundSpan {
    /// Arrival of the `ChunkStart`/`DeltaStart` announcement.
    t0: SimTime,
    /// Arrival of the first data chunk, once seen.
    first_chunk: Option<SimTime>,
}

/// The untrusted host of a machine's Migration Enclave, running in the
/// management VM and registered as the machine's `"me"` service.
pub struct MeHost {
    endpoint: Endpoint,
    enclave: EnclaveHandle,
    ias: AttestationService,
    /// Shared handle on the world's deterministic clock; every trace
    /// timestamp and latency observation derives from it.
    clock: SimClock,
    /// App endpoint per attested enclave measurement (routing only).
    app_by_mr: HashMap<MrEnclave, Endpoint>,
    /// Reverse: attested measurement per app endpoint.
    mr_by_app: HashMap<Endpoint, MrEnclave>,
    /// Bounded ring buffer of migration trace events.
    recorder: Recorder,
    /// Host-side metrics: latency histograms and wire-layer gauges.
    registry: MetricsRegistry,
    /// Open inbound streams by trace id (span bookkeeping).
    inbound: BTreeMap<TraceId, InboundSpan>,
    /// Open channel negotiations by pseudo trace id (see
    /// [`MeHost::channel_trace`]).
    negotiating: BTreeMap<TraceId, SimTime>,
    /// Virtual send time of the last stream frame per peer machine;
    /// chunk acks from that peer observe the round trip against it.
    last_stream_send: HashMap<MachineId, SimTime>,
    /// Enclave quarantine-ledger entries already mirrored as edges.
    quarantines_seen: usize,
    /// Wall-clock duration of the last `TRANSFER` ECALL that *released*
    /// incoming migration data (forwarded or parked it) — the real
    /// compute cost of the release, which the speculative-restore
    /// benchmark compares against unseal-after-complete. Deliberately
    /// wall-clock and therefore excluded from the deterministic trace
    /// export; the virtual-time quantity lives in the
    /// `me.time_to_release_ns` histogram.
    release_latency: Option<Duration>,
    /// Non-fatal protocol errors observed (visible to tests).
    pub errors: Vec<String>,
}

impl std::fmt::Debug for MeHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MeHost")
            .field("endpoint", &self.endpoint)
            .field("apps", &self.app_by_mr.len())
            .field("errors", &self.errors.len())
            .finish_non_exhaustive()
    }
}

impl MeHost {
    /// Creates the host around a loaded, provisioned ME enclave.
    #[must_use]
    pub fn new(
        endpoint: Endpoint,
        enclave: EnclaveHandle,
        ias: AttestationService,
        clock: SimClock,
    ) -> Self {
        MeHost {
            endpoint,
            enclave,
            ias,
            clock,
            app_by_mr: HashMap::new(),
            mr_by_app: HashMap::new(),
            recorder: Recorder::default(),
            registry: MetricsRegistry::default(),
            inbound: BTreeMap::new(),
            negotiating: BTreeMap::new(),
            last_stream_send: HashMap::new(),
            quarantines_seen: 0,
            release_latency: None,
            errors: Vec::new(),
        }
    }

    /// Wall-clock duration of the last incoming-transfer ECALL that
    /// released migration data (see the field docs); `None` until a
    /// transfer completed here.
    #[must_use]
    pub fn release_latency(&self) -> Option<Duration> {
        self.release_latency
    }

    /// The ME enclave handle (diagnostics).
    #[must_use]
    pub fn enclave(&self) -> &EnclaveHandle {
        &self.enclave
    }

    /// Pseudo trace id for channel-scoped events (negotiation spans,
    /// retries): the channel has no transfer nonce yet, so both ends
    /// derive the id from the directed `source → destination` label.
    fn channel_trace(source: MachineId, destination: MachineId) -> TraceId {
        trace_from_label(&format!("m{}->m{}", source.0, destination.0))
    }

    fn record_edge(&mut self, trace: TraceId, at: SimTime, edge: Edge) {
        self.recorder.record_event(Event {
            at_ns: at.0,
            trace,
            kind: EventKind::Edge(edge),
        });
    }

    fn negotiate_begin(&mut self, trace: TraceId) {
        let now = self.clock.now();
        self.negotiating.entry(trace).or_insert(now);
    }

    fn negotiate_end(&mut self, trace: TraceId) {
        if let Some(t0) = self.negotiating.remove(&trace) {
            let now = self.clock.now();
            self.recorder.record_event(Event {
                at_ns: t0.0,
                trace,
                kind: EventKind::Span {
                    phase: Phase::Negotiate,
                    end_ns: now.0,
                },
            });
        }
    }

    /// Tracks an inbound stream-progress frame: the announcement stamps
    /// the stream's arrival, the first data chunk splits Announce from
    /// Stream.
    fn track_inbound(&mut self, trace: TraceId, now: SimTime, is_chunk: bool) {
        let span = self.inbound.entry(trace).or_insert(InboundSpan {
            t0: now,
            first_chunk: None,
        });
        if is_chunk && span.first_chunk.is_none() {
            span.first_chunk = Some(now);
        }
    }

    /// Closes the destination-side phase partition of a completed
    /// inbound stream: contiguous Announce/Stream/Stage/Release spans
    /// whose durations sum to the total time-to-release. Speculative
    /// staging overlaps the stream, so Stage is zero-width at the
    /// completion point by construction; Release is the virtual time
    /// the completing ECALL itself accounted.
    fn finish_inbound(&mut self, trace: TraceId, now: SimTime, release_ns: u64) {
        let span = self.inbound.remove(&trace).unwrap_or(InboundSpan {
            t0: now,
            first_chunk: None,
        });
        let t0 = span.t0.0;
        let t1 = span.first_chunk.map_or(now.0, |t| t.0);
        let t2 = now.0;
        let released = t2.saturating_add(release_ns);
        for (phase, at, end) in [
            (Phase::Announce, t0, t1),
            (Phase::Stream, t1, t2),
            (Phase::Stage, t2, t2),
            (Phase::Release, t2, released),
        ] {
            self.recorder.record_event(Event {
                at_ns: at,
                trace,
                kind: EventKind::Span { phase, end_ns: end },
            });
        }
        self.registry
            .observe_ns("me.time_to_release_ns", LATENCY_BOUNDS_NS, released - t0);
    }

    /// Mirrors enclave quarantine-ledger entries not yet seen as
    /// Quarantine edges, stamped with the current virtual time (the
    /// ledger itself is orderless on purpose — the enclave does not
    /// reveal when it quarantined).
    fn note_quarantines(&mut self, quarantined: &[[u8; 8]]) {
        let now = self.clock.now();
        for trace in quarantined.iter().skip(self.quarantines_seen) {
            self.record_edge(*trace, now, Edge::Quarantine);
            self.inbound.remove(trace);
        }
        self.quarantines_seen = quarantined.len();
    }

    /// Pulls the enclave's quarantine ledger after a rejected
    /// `TRANSFER` ECALL (best effort — telemetry must not mask the
    /// protocol error already recorded).
    fn sync_quarantine_edges(&mut self) {
        let Ok(out) = self.enclave.ecall(me_ops::TELEMETRY, &[]) else {
            return;
        };
        let Ok(report) = TelemetryReport::from_bytes(&out) else {
            return;
        };
        self.note_quarantines(&report.quarantined);
    }

    /// Snapshot of this machine's full telemetry: host-recorded trace
    /// events and histograms joined with the enclave's counters and
    /// wire-layer gauges (via the `TELEMETRY` ECALL) and the simulated
    /// CPU's ECALL/OCALL transition tally. Deterministic for a given
    /// seed; gauges are machine-scoped (`m<id>.…`) so fleet merges
    /// stay unambiguous, counters are plain names and fleet-additive.
    ///
    /// # Errors
    ///
    /// Enclave errors propagate; malformed telemetry output surfaces
    /// as [`SgxError::Decode`].
    pub fn telemetry(&mut self) -> Result<Telemetry, SgxError> {
        let report = TelemetryReport::from_bytes(&self.enclave.ecall(me_ops::TELEMETRY, &[])?)?;
        self.note_quarantines(&report.quarantined);
        let mut registry = self.registry.clone();
        for (name, value) in &report.counters {
            registry.bump_counter(name, *value);
        }
        let m = self.endpoint.machine.0;
        registry.set_gauge(
            &format!("m{m}.cache.bytes"),
            i64::try_from(report.cache_bytes).unwrap_or(i64::MAX),
        );
        for link in &report.links {
            let d = link.destination.0;
            registry.set_gauge(
                &format!("m{m}.link.m{d}.chunk_size"),
                i64::from(link.chunk_size),
            );
            registry.set_gauge(&format!("m{m}.link.m{d}.window"), i64::from(link.window));
            registry.set_gauge(&format!("m{m}.link.m{d}.cell"), i64::from(link.cell));
            for (mr, deficit) in &link.deficits {
                registry.set_gauge(
                    &format!("m{m}.link.m{d}.deficit.{}", mr_tag(mr)),
                    i64::try_from(*deficit).unwrap_or(i64::MAX),
                );
            }
        }
        let mut telemetry = Telemetry::from_parts(&self.recorder, &registry);
        let tally = self.enclave.transition_tally();
        telemetry.transitions.total = TransitionCount {
            ecalls: tally.total.ecalls,
            ocalls: tally.total.ocalls,
        };
        for (trace, c) in tally.by_trace {
            telemetry.transitions.by_trace.insert(
                trace,
                TransitionCount {
                    ecalls: c.ecalls,
                    ocalls: c.ocalls,
                },
            );
        }
        Ok(telemetry)
    }

    fn fail(&mut self, context: &str, err: impl std::fmt::Display) {
        self.errors.push(format!("{context}: {err}"));
    }

    /// Quote → IAS evidence, charging the modelled round trip.
    fn ias_evidence(&mut self, net: &mut Network, quote_bytes: &[u8]) -> Option<Vec<u8>> {
        net.consume(IAS_ROUND_TRIP);
        let quote = match Quote::from_bytes(quote_bytes) {
            Ok(q) => q,
            Err(e) => {
                self.fail("parse quote", e);
                return None;
            }
        };
        match self.ias.verify_quote(&quote) {
            Ok(evidence) => Some(evidence.to_bytes()),
            Err(e) => {
                self.fail("ias verification", e);
                None
            }
        }
    }

    fn token_for(endpoint: &Endpoint) -> Vec<u8> {
        endpoint.to_string().into_bytes()
    }

    fn handle_action(&mut self, net: &mut Network, action_bytes: &[u8]) {
        let action = match MeAction::from_bytes(action_bytes) {
            Ok(a) => a,
            Err(e) => return self.fail("decode me action", e),
        };
        match action {
            MeAction::None => {}
            MeAction::ConnectRemote { destination, hello } => {
                let me = Endpoint::new(destination, ME_SERVICE);
                net.send(&self.endpoint, &me, frame(tags::RA_HELLO, &hello));
                self.negotiate_begin(Self::channel_trace(self.endpoint.machine, destination));
            }
            MeAction::SendRemote {
                destination,
                transfer,
            } => {
                let me = Endpoint::new(destination, ME_SERVICE);
                net.send(&self.endpoint, &me, frame(tags::RA_TRANSFER, &transfer));
                self.last_stream_send.insert(destination, self.clock.now());
            }
            MeAction::StreamRemote {
                destination,
                frames,
            } => {
                let me = Endpoint::new(destination, ME_SERVICE);
                for (kind, ct) in frames {
                    net.send(&self.endpoint, &me, frame(stream_frame_tag(kind), &ct));
                }
                self.last_stream_send.insert(destination, self.clock.now());
            }
            MeAction::AckSource { source, ack } => {
                let me = Endpoint::new(source, ME_SERVICE);
                net.send(&self.endpoint, &me, frame(tags::RA_ACK, &ack));
            }
        }
    }

    /// Seals the ME's durable state for disk storage (host-driven
    /// checkpointing; the sealed blob is machine-bound).
    ///
    /// # Errors
    ///
    /// Enclave errors propagate (e.g. unprovisioned ME).
    pub fn persist_state(&mut self) -> Result<Vec<u8>, SgxError> {
        self.enclave.ecall(me_ops::PERSIST, &[])
    }

    /// Replaces the ME enclave after a management-VM restart, restoring
    /// durable state from `state` if provided. All attested sessions are
    /// ephemeral, so routing tables are cleared; application enclaves and
    /// peer MEs must re-attest.
    ///
    /// # Errors
    ///
    /// Restore failures propagate (tampered or foreign blob).
    pub fn replace_enclave(
        &mut self,
        enclave: EnclaveHandle,
        state: Option<&[u8]>,
    ) -> Result<(), SgxError> {
        if let Some(blob) = state {
            enclave.ecall(me_ops::RESTORE, blob)?;
        }
        self.enclave = enclave;
        self.app_by_mr.clear();
        self.mr_by_app.clear();
        Ok(())
    }

    /// Re-dispatches retained migration data for `mr` to `destination`
    /// (operator-driven error recovery; Fig. 2).
    pub fn retry_migration(
        &mut self,
        net: &mut Network,
        mr: MrEnclave,
        destination: MachineId,
    ) -> Result<(), SgxError> {
        let mut w = WireWriter::new();
        w.array(&mr.0);
        w.u64(destination.0);
        let action = self.enclave.ecall(me_ops::RETRY, &w.finish())?;
        let retry_trace = Self::channel_trace(self.endpoint.machine, destination);
        self.record_edge(retry_trace, self.clock.now(), Edge::Retry);
        self.handle_action(net, &action);
        Ok(())
    }

    /// Discards staged incoming migration state for `mr` (supervisor
    /// graceful degradation on the destination side). Returns whether
    /// the ME actually discarded anything — `false` means the data was
    /// already handed to the destination library and the abort was
    /// refused to keep a later retry from double-releasing.
    ///
    /// # Errors
    ///
    /// Enclave errors propagate.
    pub fn abort_incoming(&mut self, mr: MrEnclave) -> Result<bool, SgxError> {
        let mut w = WireWriter::new();
        w.array(&mr.0);
        let out = self.enclave.ecall(me_ops::ABORT, &w.finish())?;
        let mut r = WireReader::new(&out);
        let discarded = r.u8().map_err(|_| SgxError::Decode)? == 1;
        if discarded {
            self.registry.bump_counter("host.aborts_incoming", 1);
        }
        Ok(discarded)
    }

    /// Records a channel-scoped trace edge (injected fault, supervisor
    /// backoff / abort) on the directed `source → destination` channel,
    /// and tallies it in the metrics registry. This is the hook chaos
    /// and supervision layers use to make every fault and recovery
    /// action visible in the exported trace.
    pub fn record_channel_edge(
        &mut self,
        source: MachineId,
        destination: MachineId,
        at: SimTime,
        edge: Edge,
    ) {
        let trace = Self::channel_trace(source, destination);
        self.record_edge(trace, at, edge);
        self.registry
            .bump_counter(&format!("edge.{}", edge.name()), 1);
    }

    fn on_la_start(&mut self, net: &mut Network, from: &Endpoint) {
        let mut w = WireWriter::new();
        w.bytes(&Self::token_for(from));
        match self.enclave.ecall(me_ops::LA_START, &w.finish()) {
            Ok(msg1) => net.send(&self.endpoint, from, frame(tags::LA_MSG1, &msg1)),
            Err(e) => self.fail("la start", e),
        }
    }

    fn on_la_msg2(&mut self, net: &mut Network, from: &Endpoint, msg2: &[u8]) {
        let mut w = WireWriter::new();
        w.bytes(&Self::token_for(from));
        w.bytes(msg2);
        let out = match self.enclave.ecall(me_ops::LA_MSG2, &w.finish()) {
            Ok(out) => out,
            Err(e) => return self.fail("la msg2", e),
        };
        let parsed: Result<LaMsg2Output, SgxError> = (|| {
            let mut r = WireReader::new(&out);
            let msg3 = r.bytes_vec()?;
            let mr = MrEnclave(r.array()?);
            let forward = read_opt(&mut r)?;
            r.finish()?;
            Ok((msg3, mr, forward))
        })();
        match parsed {
            Ok((msg3, mr, forward)) => {
                self.app_by_mr.insert(mr, from.clone());
                self.mr_by_app.insert(from.clone(), mr);
                net.send(&self.endpoint, from, frame(tags::LA_MSG3, &msg3));
                if let Some(ct) = forward {
                    net.send(&self.endpoint, from, frame(tags::ME_FORWARD, &ct));
                }
            }
            Err(e) => self.fail("parse la msg2 output", e),
        }
    }

    fn on_lib_msg(&mut self, net: &mut Network, from: &Endpoint, ct: &[u8]) {
        let Some(mr) = self.mr_by_app.get(from).copied() else {
            return self.fail("lib msg", "no attested session for sender");
        };
        let mut w = WireWriter::new();
        w.array(&mr.0);
        w.bytes(ct);
        match self.enclave.ecall(me_ops::LIB_MSG, &w.finish()) {
            Ok(action) => self.handle_action(net, &action),
            Err(e) => self.fail("lib msg", e),
        }
    }

    fn on_ra_hello(&mut self, net: &mut Network, from: &Endpoint, payload: &[u8]) {
        let hello = match RaHello::from_bytes(payload) {
            Ok(h) => h,
            Err(e) => return self.fail("parse ra hello", e),
        };
        self.negotiate_begin(Self::channel_trace(from.machine, self.endpoint.machine));
        let Some(evidence) = self.ias_evidence(net, &hello.quote.to_bytes()) else {
            return;
        };
        let mut w = WireWriter::new();
        w.u64(from.machine.0);
        w.array(&hello.g_i.0);
        w.bytes(&evidence);
        match self.enclave.ecall(me_ops::RA_HELLO, &w.finish()) {
            Ok(response) => net.send(&self.endpoint, from, frame(tags::RA_RESPONSE, &response)),
            Err(e) => self.fail("ra hello", e),
        }
    }

    fn on_ra_response(&mut self, net: &mut Network, from: &Endpoint, payload: &[u8]) {
        let auth = match RaResponseAuth::from_bytes(payload) {
            Ok(a) => a,
            Err(e) => return self.fail("parse ra response", e),
        };
        let Some(evidence) = self.ias_evidence(net, &auth.response.quote.to_bytes()) else {
            return;
        };
        let mut w = WireWriter::new();
        w.u64(from.machine.0);
        w.array(&auth.response.g_r.0);
        w.bytes(&evidence);
        w.bytes(&auth.credential.to_bytes());
        w.u32(auth.batch);
        w.array(&auth.signature.0);
        let out = match self.enclave.ecall(me_ops::RA_RESPONSE, &w.finish()) {
            Ok(out) => out,
            Err(e) => return self.fail("ra response", e),
        };
        let parsed: Result<(Vec<u8>, StreamFrames), SgxError> = (|| {
            let mut r = WireReader::new(&out);
            let finish = r.bytes_vec()?;
            let n = r.u32()? as usize;
            let mut transfers = Vec::with_capacity(n);
            for _ in 0..n {
                let kind = r.u8()?;
                transfers.push((kind, r.bytes_vec()?));
            }
            r.finish()?;
            Ok((finish, transfers))
        })();
        match parsed {
            Ok((finish, transfers)) => {
                // The channel is established on our side once the
                // finish message goes out.
                self.negotiate_end(Self::channel_trace(self.endpoint.machine, from.machine));
                net.send(&self.endpoint, from, frame(tags::RA_FINISH, &finish));
                let streamed = !transfers.is_empty();
                for (kind, transfer) in transfers {
                    net.send(
                        &self.endpoint,
                        from,
                        frame(stream_frame_tag(kind), &transfer),
                    );
                }
                if streamed {
                    self.last_stream_send.insert(from.machine, self.clock.now());
                }
            }
            Err(e) => self.fail("parse ra response output", e),
        }
    }

    fn on_ra_finish(&mut self, from: &Endpoint, payload: &[u8]) {
        let mut w = WireWriter::new();
        w.u64(from.machine.0);
        w.bytes(payload);
        match self.enclave.ecall(me_ops::RA_FINISH, &w.finish()) {
            Ok(_) => self.negotiate_end(Self::channel_trace(from.machine, self.endpoint.machine)),
            Err(e) => self.fail("ra finish", e),
        }
    }

    fn on_ra_transfer(&mut self, net: &mut Network, from: &Endpoint, ct: &[u8]) {
        let mut w = WireWriter::new();
        w.u64(from.machine.0);
        w.bytes(ct);
        let input = w.finish();
        let ecall_start = std::time::Instant::now();
        let virt_before = self.enclave.peek_virtual_time();
        let out = match self.enclave.ecall(me_ops::TRANSFER, &input) {
            Ok(out) => out,
            Err(e) => {
                // The rejection may have quarantined the inbound
                // stream; mirror new ledger entries as edges.
                self.fail("ra transfer", e);
                self.sync_quarantine_edges();
                return;
            }
        };
        let ecall_took = ecall_start.elapsed();
        let release_ns = ns_u64(self.enclave.peek_virtual_time().saturating_sub(virt_before));
        let parsed: Result<TransferOutput, SgxError> = (|| {
            let mut r = WireReader::new(&out);
            let record = Self::read_transfer_record(&mut r)?;
            r.finish()?;
            Ok(record)
        })();
        match parsed {
            Ok(record) => {
                self.apply_transfer_record(net, from, record, release_ns, ecall_took);
            }
            Err(e) => self.fail("parse transfer output", e),
        }
    }

    /// Reads one `TRANSFER`-format output record (shared by the
    /// single-frame and batched paths).
    fn read_transfer_record(r: &mut WireReader<'_>) -> Result<TransferOutput, SgxError> {
        let kind = r.u8()?;
        let mr = MrEnclave(r.array()?);
        let trace = read_trace(r)?;
        let forward = read_opt(r)?;
        let ack = read_opt(r)?;
        Ok((kind, mr, trace, forward, ack))
    }

    /// Applies one transfer-output record: span bookkeeping, trace
    /// edges, and routing of the forward/ack ciphertexts.
    fn apply_transfer_record(
        &mut self,
        net: &mut Network,
        from: &Endpoint,
        record: TransferOutput,
        release_ns: u64,
        ecall_took: Duration,
    ) {
        let (kind, mr, trace, forward, ack) = record;
        let now = self.clock.now();
        match (kind, trace) {
            // Kinds 1 (forwarded) and 2 (stored) mean the ECALL
            // completed and released a payload; with a trace id it
            // closed a chunk stream.
            (1 | 2, Some(tid)) => {
                self.finish_inbound(tid, now, release_ns);
                self.release_latency = Some(ecall_took);
            }
            (1 | 2, None) => self.release_latency = Some(ecall_took),
            // Stream progress: the announcement carries no ack yet;
            // data chunks produce one (one combined ack per stream on
            // the batched path).
            (3, Some(tid)) => self.track_inbound(tid, now, ack.is_some()),
            // Delta NACK: fell back to a full stream.
            (4, Some(tid)) => self.record_edge(tid, now, Edge::DeltaFallback),
            _ => {}
        }
        if let Some(ct) = forward {
            if let Some(app) = self.app_by_mr.get(&mr).cloned() {
                net.send(&self.endpoint, &app, frame(tags::ME_FORWARD, &ct));
            } else {
                self.fail("ra transfer", "forward with no app endpoint");
            }
        }
        if let Some(ct) = ack {
            net.send(&self.endpoint, from, frame(tags::RA_ACK, &ct));
        }
    }

    fn on_ra_transfer_batch(&mut self, net: &mut Network, from: &Endpoint, container: &[u8]) {
        let mut w = WireWriter::new();
        w.u64(from.machine.0);
        w.bytes(container);
        let input = w.finish();
        let ecall_start = std::time::Instant::now();
        let virt_before = self.enclave.peek_virtual_time();
        let out = match self.enclave.ecall(me_ops::TRANSFER_BATCH, &input) {
            Ok(out) => out,
            Err(e) => {
                self.fail("ra transfer batch", e);
                self.sync_quarantine_edges();
                return;
            }
        };
        let ecall_took = ecall_start.elapsed();
        let release_ns = ns_u64(self.enclave.peek_virtual_time().saturating_sub(virt_before));
        let parsed: Result<(Vec<TransferOutput>, u8), SgxError> = (|| {
            let mut r = WireReader::new(&out);
            let n = r.u32()? as usize;
            let mut records = Vec::with_capacity(n);
            for _ in 0..n {
                let bytes = r.bytes_vec()?;
                let mut rr = WireReader::new(&bytes);
                let record = Self::read_transfer_record(&mut rr)?;
                rr.finish()?;
                records.push(record);
            }
            let status = r.u8()?;
            r.finish()?;
            Ok((records, status))
        })();
        match parsed {
            Ok((records, status)) => {
                for record in records {
                    self.apply_transfer_record(net, from, record, release_ns, ecall_took);
                }
                if status != 0 {
                    // Part of the container was rejected; any new
                    // quarantine ledger entries become trace edges.
                    self.sync_quarantine_edges();
                }
            }
            Err(e) => self.fail("parse transfer batch output", e),
        }
    }

    fn on_ra_ack(&mut self, net: &mut Network, from: &Endpoint, ct: &[u8]) {
        let mut w = WireWriter::new();
        w.u64(from.machine.0);
        w.bytes(ct);
        let out = match self.enclave.ecall(me_ops::ACK, &w.finish()) {
            Ok(out) => out,
            Err(e) => return self.fail("ra ack", e),
        };
        let parsed: Result<AckOutput, SgxError> = (|| {
            let mut r = WireReader::new(&out);
            let kind = r.u8()?;
            let mr = MrEnclave(r.array()?);
            let trace = read_trace(&mut r)?;
            let complete = read_opt(&mut r)?;
            let n = r.u32()? as usize;
            let mut frames = Vec::with_capacity(n);
            for _ in 0..n {
                let frame_kind = r.u8()?;
                frames.push((frame_kind, r.bytes_vec()?));
            }
            r.finish()?;
            Ok((kind, mr, trace, complete, frames))
        })();
        match parsed {
            Ok((kind, mr, trace, complete, frames)) => {
                let now = self.clock.now();
                match (kind, trace) {
                    // Chunk ack: round trip since the last stream
                    // frame we sent towards that peer.
                    (3, Some(_)) => {
                        if let Some(sent) = self.last_stream_send.get(&from.machine) {
                            self.registry.observe_ns(
                                "me.chunk_rtt_ns",
                                LATENCY_BOUNDS_NS,
                                ns_u64(now.since(*sent)),
                            );
                        }
                    }
                    // Delta NACK from the destination: fall back.
                    (4, Some(tid)) => self.record_edge(tid, now, Edge::DeltaFallback),
                    _ => {}
                }
                if kind == 1 {
                    // Delivered: notify the (frozen) source app if known.
                    if let (Some(ct), Some(app)) = (complete, self.app_by_mr.get(&mr).cloned()) {
                        net.send(&self.endpoint, &app, frame(tags::ME_FORWARD, &ct));
                    }
                }
                // Follow-on stream frames (window slide / resume) go back
                // to the destination that acked.
                let streamed = !frames.is_empty();
                for (frame_kind, ct) in frames {
                    net.send(
                        &self.endpoint,
                        from,
                        frame(stream_frame_tag(frame_kind), &ct),
                    );
                }
                if streamed {
                    self.last_stream_send.insert(from.machine, now);
                }
            }
            Err(e) => self.fail("parse ack output", e),
        }
    }

    /// Streaming progress of the retained outgoing migration for `mr`:
    /// `Some(progress)` when it went down the streamed path, `None`
    /// otherwise.
    ///
    /// # Errors
    ///
    /// Enclave errors propagate.
    pub fn stream_progress(&mut self, mr: MrEnclave) -> Result<Option<StreamProgress>, SgxError> {
        let mut w = WireWriter::new();
        w.array(&mr.0);
        let out = self.enclave.ecall(me_ops::STREAM_STAT, &w.finish())?;
        let mut r = WireReader::new(&out);
        let result = match r.u8()? {
            1 => {
                let acked = r.u32()?;
                let total_chunks = r.u32()?;
                let state_len = r.u64()?;
                let payload_len = r.u64()?;
                let delta = r.u8()? != 0;
                let chunk_size = r.u32()?;
                Some(StreamProgress {
                    acked,
                    total_chunks,
                    state_len,
                    payload_len,
                    delta,
                    chunk_size,
                })
            }
            2 => {
                let _len = r.u64()?;
                None
            }
            _ => None,
        };
        Ok(result)
    }

    /// Current adaptive-controller state of the link towards
    /// `destination`: `Some((chunk_size, window))` once any stream has
    /// run there, `None` before.
    ///
    /// # Errors
    ///
    /// Enclave errors propagate.
    pub fn link_state(&mut self, destination: MachineId) -> Result<Option<(u32, u32)>, SgxError> {
        let mut w = WireWriter::new();
        w.u64(destination.0);
        let out = self.enclave.ecall(me_ops::LINK_STAT, &w.finish())?;
        let mut r = WireReader::new(&out);
        let result = match r.u8()? {
            1 => Some((r.u32()?, r.u32()?)),
            _ => None,
        };
        if let Some((chunk_size, window)) = result {
            let m = self.endpoint.machine.0;
            let d = destination.0;
            self.registry
                .set_gauge(&format!("m{m}.link.m{d}.chunk_size"), i64::from(chunk_size));
            self.registry
                .set_gauge(&format!("m{m}.link.m{d}.window"), i64::from(window));
        }
        Ok(result)
    }

    /// Per-stream state of the multiplexed link towards `destination`:
    /// one entry per announced outgoing stream (sorted by MRENCLAVE)
    /// with its per-nonce cumulative progress, plus the link's current
    /// wire-cell size.
    ///
    /// # Errors
    ///
    /// Enclave errors propagate; malformed output surfaces as
    /// [`SgxError::Decode`].
    pub fn link_streams(
        &mut self,
        destination: MachineId,
    ) -> Result<(Vec<LinkStreamStat>, u32), SgxError> {
        let mut w = WireWriter::new();
        w.u64(destination.0);
        let out = self.enclave.ecall(me_ops::LINK_STAT, &w.finish())?;
        let mut r = WireReader::new(&out);
        if r.u8()? == 1 {
            let _chunk_size = r.u32()?;
            let _window = r.u32()?;
        }
        let n = r.u32()? as usize;
        let mut streams = Vec::with_capacity(n);
        for _ in 0..n {
            streams.push(LinkStreamStat {
                mr_enclave: MrEnclave(r.array()?),
                acked: r.u32()?,
                total_chunks: r.u32()?,
                in_flight: r.u32()?,
                delta: r.u8()? != 0,
                awaiting_resume: r.u8()? != 0,
            });
        }
        let cell = r.u32()?;
        r.finish()?;
        let m = self.endpoint.machine.0;
        let d = destination.0;
        self.registry
            .set_gauge(&format!("m{m}.link.m{d}.cell"), i64::from(cell));
        for s in &streams {
            let tag = mr_tag(&s.mr_enclave);
            self.registry.set_gauge(
                &format!("m{m}.link.m{d}.stream.{tag}.acked"),
                i64::from(s.acked),
            );
            self.registry.set_gauge(
                &format!("m{m}.link.m{d}.stream.{tag}.in_flight"),
                i64::from(s.in_flight),
            );
        }
        Ok((streams, cell))
    }
}

/// One multiplexed stream's state on a destination link (see
/// [`MeHost::link_streams`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkStreamStat {
    /// The migrating enclave the stream belongs to.
    pub mr_enclave: MrEnclave,
    /// Cumulatively acknowledged chunks.
    pub acked: u32,
    /// Total chunks of the stream.
    pub total_chunks: u32,
    /// Chunks sent but not yet acknowledged.
    pub in_flight: u32,
    /// Whether the stream ships a dirty-page delta.
    pub delta: bool,
    /// Whether a resume renegotiation is outstanding.
    pub awaiting_resume: bool,
}

/// Telemetry of one retained outgoing chunk stream (see
/// [`MeHost::stream_progress`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamProgress {
    /// Cumulatively acknowledged chunks.
    pub acked: u32,
    /// Total chunks of the stream.
    pub total_chunks: u32,
    /// Full state length in bytes.
    pub state_len: u64,
    /// Streamed payload length (equals `state_len` for a full stream;
    /// the packed dirty pages for a delta stream).
    pub payload_len: u64,
    /// Whether the stream ships a dirty-page delta.
    pub delta: bool,
    /// Chunk size the stream was announced with.
    pub chunk_size: u32,
}

impl Service for MeHost {
    fn on_message(&mut self, net: &mut Network, from: &Endpoint, payload: &[u8]) {
        let (tag, body) = match unframe(payload) {
            Ok(x) => x,
            Err(e) => return self.fail("unframe", e),
        };
        match tag {
            tags::LA_START => self.on_la_start(net, from),
            tags::LA_MSG2 => self.on_la_msg2(net, from, &body),
            tags::LIB_MSG => self.on_lib_msg(net, from, &body),
            tags::RA_HELLO => self.on_ra_hello(net, from, &body),
            tags::RA_RESPONSE => self.on_ra_response(net, from, &body),
            tags::RA_FINISH => self.on_ra_finish(from, &body),
            tags::RA_TRANSFER => self.on_ra_transfer(net, from, &body),
            tags::RA_TRANSFER_BATCH => self.on_ra_transfer_batch(net, from, &body),
            tags::RA_ACK => self.on_ra_ack(net, from, &body),
            other => self.fail("unknown tag", other),
        }
    }
}

// ---------------------------------------------------------------------
// AppHost
// ---------------------------------------------------------------------

/// Lifecycle status of an application host.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AppStatus {
    /// Enclave loaded, library initialized, ME attestation in flight.
    AttestingMe,
    /// Fully operational.
    Ready,
    /// `migration_start` issued; awaiting completion notification.
    MigratingOut,
    /// Migration confirmed complete; local enclave is frozen.
    Migrated,
    /// Awaiting incoming migration data.
    AwaitingIncoming,
    /// A host-level failure occurred (see `errors`).
    Failed,
}

/// The untrusted application process hosting one migratable enclave.
///
/// Owns the enclave handle, persists the library's sealed blob to the
/// machine's untrusted disk, and relays protocol ciphertexts between the
/// enclave and the local ME host.
pub struct AppHost {
    name: String,
    endpoint: Endpoint,
    me_endpoint: Endpoint,
    enclave: EnclaveHandle,
    disk: UntrustedDisk,
    status: AppStatus,
    /// Durable generation-numbered checkpoints of the sealed library
    /// state (periodic; see [`CHECKPOINT_INTERVAL`]).
    checkpoints: CheckpointStore,
    persists_since_checkpoint: usize,
    /// Non-fatal errors observed (visible to tests).
    pub errors: Vec<String>,
}

impl std::fmt::Debug for AppHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppHost")
            .field("name", &self.name)
            .field("endpoint", &self.endpoint)
            .field("status", &self.status)
            .finish_non_exhaustive()
    }
}

impl AppHost {
    /// Creates a host for a loaded enclave and initializes its library.
    ///
    /// `init` selects the Fig. 1 start state; the sealed state blob, when
    /// produced, is stored under `state_key` on `disk`.
    ///
    /// # Errors
    ///
    /// Propagates `MIG_INIT` failures (frozen blob, stale state, ...).
    pub fn start(
        name: &str,
        endpoint: Endpoint,
        enclave: EnclaveHandle,
        disk: UntrustedDisk,
        expected_me: MrEnclave,
        init: InitRequest,
    ) -> Result<Self, SgxError> {
        let checkpoints = CheckpointStore::new(disk.clone(), &format!("mig-state:{name}"));
        let mut host = AppHost {
            name: name.to_string(),
            endpoint,
            me_endpoint: Endpoint::new(MachineId(0), ME_SERVICE), // fixed below
            enclave,
            disk,
            status: match init {
                InitRequest::Migrate => AppStatus::AwaitingIncoming,
                _ => AppStatus::AttestingMe,
            },
            checkpoints,
            persists_since_checkpoint: 0,
            errors: Vec::new(),
        };
        host.me_endpoint = Endpoint::new(host.endpoint.machine, ME_SERVICE);
        let request = encode_init(&expected_me, &init);
        let out = host.enclave.ecall(lib_ops::MIG_INIT, &request)?;
        host.store_persist(&out)?;
        Ok(host)
    }

    /// The disk key under which this app's library state blob lives.
    #[must_use]
    pub fn state_key(&self) -> String {
        format!("mig-state:{}", self.name)
    }

    /// Current status.
    #[must_use]
    pub fn status(&self) -> AppStatus {
        self.status
    }

    /// The app's network endpoint.
    #[must_use]
    pub fn endpoint(&self) -> Endpoint {
        self.endpoint.clone()
    }

    /// The enclave handle (diagnostics / direct calls in tests).
    #[must_use]
    pub fn enclave(&self) -> &EnclaveHandle {
        &self.enclave
    }

    /// The host's checkpoint series (durable sealed-state generations).
    #[must_use]
    pub fn checkpoints(&self) -> &CheckpointStore {
        &self.checkpoints
    }

    fn store_persist(&mut self, envelope_bytes: &[u8]) -> Result<Vec<u8>, SgxError> {
        let (payload, persist) = open_envelope(envelope_bytes)?;
        if let Some(blob) = persist {
            // A failed or torn write surfaces to the caller: the enclave
            // has already advanced, but the host must not pretend the
            // state is durable when the platter rejected it.
            self.disk
                .try_put(&self.state_key(), blob.clone())
                .map_err(|e| SgxError::Enclave(format!("persist write: {e}")))?;
            // Periodic durable checkpoint generation (the "C" of CTR):
            // the latest-but-one generation survives even a crash
            // mid-write of the newest.
            self.persists_since_checkpoint += 1;
            if self.persists_since_checkpoint >= CHECKPOINT_INTERVAL
                || self.checkpoints.latest_generation().is_none()
            {
                self.persists_since_checkpoint = 0;
                self.checkpoints
                    .put(blob)
                    .map_err(|e| SgxError::Enclave(format!("checkpoint write: {e}")))?;
            }
        }
        Ok(payload)
    }

    /// Kicks off local attestation with the machine's ME.
    pub fn attest_me(&mut self, net: &mut Network) {
        net.send(
            &self.endpoint,
            &self.me_endpoint,
            frame(tags::LA_START, &[]),
        );
    }

    /// Whether the attested ME session is up (status advanced past
    /// attestation).
    #[must_use]
    pub fn is_ready(&self) -> bool {
        self.status == AppStatus::Ready
    }

    /// Issues an application ECALL (opcode < `0x1000`), unwrapping the
    /// persistence envelope.
    ///
    /// # Errors
    ///
    /// Propagates enclave errors.
    pub fn call(&mut self, opcode: u32, input: &[u8]) -> Result<Vec<u8>, SgxError> {
        let out = self.enclave.ecall(opcode, input)?;
        self.store_persist(&out)
    }

    /// Starts a migration to `destination` (`migration_start`,
    /// Listing 1).
    ///
    /// # Errors
    ///
    /// [`SgxError::Enclave`] host-state error if not ready; enclave
    /// errors propagate.
    pub fn migrate_to(
        &mut self,
        net: &mut Network,
        destination: MachineId,
    ) -> Result<(), SgxError> {
        if self.status != AppStatus::Ready {
            return Err(SgxError::Enclave("app host not ready to migrate".into()));
        }
        let mut w = WireWriter::new();
        w.u64(destination.0);
        let out = self.enclave.ecall(lib_ops::MIG_START, &w.finish())?;
        // The frozen state blob must hit the disk before the request is
        // relayed (crash consistency; §V-C ordering).
        let ct = self.store_persist(&out)?;
        net.send(&self.endpoint, &self.me_endpoint, frame(tags::LIB_MSG, &ct));
        self.status = AppStatus::MigratingOut;
        Ok(())
    }

    fn fail(&mut self, context: &str, err: impl std::fmt::Display) {
        self.errors.push(format!("{context}: {err}"));
        self.status = AppStatus::Failed;
    }

    fn on_me_forward(&mut self, net: &mut Network, ct: &[u8]) {
        let out = match self.enclave.ecall(lib_ops::ME_CT, ct) {
            Ok(out) => out,
            Err(e) => return self.fail("me forward", e),
        };
        let payload = match self.store_persist(&out) {
            Ok(p) => p,
            Err(e) => return self.fail("me forward persist", e),
        };
        let reply: Result<Option<Vec<u8>>, SgxError> = (|| {
            let mut r = WireReader::new(&payload);
            let reply = read_opt(&mut r)?;
            r.finish()?;
            Ok(reply)
        })();
        match reply {
            Ok(Some(done_ct)) => {
                // Incoming migration installed: confirm with DONE.
                net.send(
                    &self.endpoint,
                    &self.me_endpoint,
                    frame(tags::LIB_MSG, &done_ct),
                );
                self.status = AppStatus::Ready;
            }
            Ok(None) => {
                // MigrationComplete notification on the source side.
                if self.status == AppStatus::MigratingOut {
                    self.status = AppStatus::Migrated;
                }
            }
            Err(e) => self.fail("parse me forward reply", e),
        }
    }
}

impl Service for AppHost {
    fn on_message(&mut self, net: &mut Network, _from: &Endpoint, payload: &[u8]) {
        let (tag, body) = match unframe(payload) {
            Ok(x) => x,
            Err(e) => return self.fail("unframe", e),
        };
        match tag {
            tags::LA_MSG1 => match self.enclave.ecall(lib_ops::ME_MSG1, &body) {
                Ok(out) => match self.store_persist(&out) {
                    Ok(msg2) => net.send(
                        &self.endpoint,
                        &self.me_endpoint,
                        frame(tags::LA_MSG2, &msg2),
                    ),
                    Err(e) => self.fail("la msg1 persist", e),
                },
                Err(e) => self.fail("la msg1", e),
            },
            tags::LA_MSG3 => match self.enclave.ecall(lib_ops::ME_MSG3, &body) {
                Ok(out) => {
                    if let Err(e) = self.store_persist(&out) {
                        return self.fail("la msg3 persist", e);
                    }
                    if self.status == AppStatus::AttestingMe {
                        self.status = AppStatus::Ready;
                    }
                }
                Err(e) => self.fail("la msg3", e),
            },
            tags::ME_FORWARD => self.on_me_forward(net, &body),
            other => self.fail("unexpected tag", other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::me::write_opt;

    #[test]
    fn frames_round_trip() {
        let framed = frame(tags::LIB_MSG, b"ciphertext");
        let (tag, body) = unframe(&framed).unwrap();
        assert_eq!(tag, tags::LIB_MSG);
        assert_eq!(body, b"ciphertext");
        assert!(unframe(&framed[..2]).is_err());
    }

    #[test]
    fn write_read_opt_round_trip() {
        let mut w = WireWriter::new();
        write_opt(&mut w, Some(b"x"));
        write_opt(&mut w, None);
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        assert_eq!(read_opt(&mut r).unwrap().unwrap(), b"x");
        assert!(read_opt(&mut r).unwrap().is_none());
        r.finish().unwrap();
    }
}
