//! High-level facade: a simulated datacenter with provisioned Migration
//! Enclaves, ready to deploy and migrate migratable enclaves.
//!
//! Wraps [`cloud_sim::World`] with the paper's trust setup (§V-B): one
//! operator, one provisioned ME per machine, and helpers to deploy
//! application enclaves, drive their lifecycle (restart, crash, power
//! events), and run migrations end to end. Examples and the benchmark
//! harness build on this; attack tests reach through to the lower layers
//! via the accessors.

use crate::error::MigError;
use crate::harness::{ops as lib_ops, AppLogic, MigratableEnclave};
use crate::host::{AppHost, AppStatus, MeHost, ME_SERVICE};
use crate::library::InitRequest;
use crate::me::{me_image, ops as me_ops, read_opt, MigrationEnclave};
use crate::operator::CloudOperator;
use crate::policy::MigrationPolicy;
use crate::transfer::checkpoint::CheckpointStore;
use crate::transfer::TransferConfig;
use cloud_sim::machine::MachineLabels;
use cloud_sim::network::Endpoint;
use cloud_sim::world::World;
use mig_crypto::ed25519::VerifyingKey;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sgx_sim::cost::CostModel;
use sgx_sim::machine::MachineId;
use sgx_sim::measurement::{EnclaveImage, MrEnclave};
use sgx_sim::wire::WireWriter;
use sgx_sim::SgxError;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// A provisioned, migration-capable simulated datacenter.
///
/// # Example
///
/// See `examples/quickstart.rs` for the end-to-end flow.
pub struct Datacenter {
    world: World,
    operator: CloudOperator,
    me_hosts: HashMap<MachineId, Arc<Mutex<MeHost>>>,
    me_policies: HashMap<MachineId, MigrationPolicy>,
    me_transfer_configs: HashMap<MachineId, TransferConfig>,
    app_hosts: HashMap<String, Arc<Mutex<AppHost>>>,
    app_machines: HashMap<String, MachineId>,
}

/// Result of a [`Datacenter::migrate_app_resumable`] attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResumableOutcome {
    /// The migration ran to completion in the given virtual time.
    Completed(Duration),
    /// The transfer stalled mid-stream (e.g. a machine failure). The
    /// source ME state was checkpointed to disk; after recovery,
    /// [`Datacenter::resume_migration`] continues from the last
    /// acknowledged chunk.
    Stalled {
        /// `(acked_chunks, total_chunks)` of the streamed transfer, when
        /// it got far enough to stream.
        progress: Option<(u32, u32)>,
    },
}

impl std::fmt::Debug for Datacenter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Datacenter")
            .field("machines", &self.me_hosts.len())
            .field("apps", &self.app_hosts.len())
            .finish_non_exhaustive()
    }
}

impl Datacenter {
    /// Creates a datacenter with zero-latency platform firmware.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self::build(World::new(seed), seed)
    }

    /// Creates a datacenter whose machines use `cost` for platform
    /// operations (benchmarks).
    #[must_use]
    pub fn with_cost_model(seed: u64, cost: Arc<dyn CostModel>) -> Self {
        Self::build(World::with_cost_model(seed, cost), seed)
    }

    fn build(world: World, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        Datacenter {
            world,
            operator: CloudOperator::new(&mut rng),
            me_hosts: HashMap::new(),
            me_policies: HashMap::new(),
            me_transfer_configs: HashMap::new(),
            app_hosts: HashMap::new(),
            app_machines: HashMap::new(),
        }
    }

    /// The operator's root verification key.
    #[must_use]
    pub fn operator_root(&self) -> VerifyingKey {
        self.operator.root_key()
    }

    /// The canonical ME measurement (what libraries expect to attest).
    #[must_use]
    pub fn me_mr_enclave(&self) -> MrEnclave {
        me_image().mr_enclave()
    }

    /// Direct access to the underlying world (clock, network, machines).
    pub fn world_mut(&mut self) -> &mut World {
        &mut self.world
    }

    /// Immutable world access.
    #[must_use]
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Provisions a machine: hardware, Migration Enclave, operator
    /// credential, and the given migration policy (§V-B setup phase).
    ///
    /// # Panics
    ///
    /// Panics if ME provisioning fails — that is a harness bug, not a
    /// runtime condition.
    pub fn add_machine(&mut self, labels: MachineLabels, policy: &MigrationPolicy) -> MachineId {
        self.add_machine_with_transfer(labels, policy, TransferConfig::default())
    }

    /// [`Datacenter::add_machine`] with explicit streaming-transfer
    /// tuning (chunk size, threshold, send window) for the machine's ME.
    ///
    /// # Panics
    ///
    /// Panics if ME provisioning fails — that is a harness bug, not a
    /// runtime condition.
    pub fn add_machine_with_transfer(
        &mut self,
        labels: MachineLabels,
        policy: &MigrationPolicy,
        transfer: TransferConfig,
    ) -> MachineId {
        let machine_id = self.world.add_machine(labels.clone());
        self.me_transfer_configs.insert(machine_id, transfer);
        let enclave = self
            .provision_me(machine_id, policy)
            .expect("ME provisioning at setup must succeed");

        let endpoint = Endpoint::new(machine_id, ME_SERVICE);
        let host = Arc::new(Mutex::new(MeHost::new(
            endpoint.clone(),
            enclave,
            self.world.ias().clone(),
            self.world.clock(),
        )));
        self.me_hosts.insert(machine_id, Arc::clone(&host));
        self.me_policies.insert(machine_id, policy.clone());
        self.world.register_service(endpoint, host);
        machine_id
    }

    /// Loads and provisions a fresh ME instance on `machine_id` (§V-B
    /// setup phase: keygen inside the enclave, operator-issued
    /// credential, pinned roots, policy).
    fn provision_me(
        &mut self,
        machine_id: MachineId,
        policy: &MigrationPolicy,
    ) -> Result<sgx_sim::enclave::EnclaveHandle, SgxError> {
        let machine = self.world.machine(machine_id).clone();
        let enclave = machine
            .sgx
            .load_enclave(&me_image(), Box::new(MigrationEnclave::new()))?;

        // CSR-style provisioning: the key is generated inside the ME.
        let pubkey_bytes = enclave.ecall(me_ops::KEYGEN, &[])?;
        let me_key = VerifyingKey(
            pubkey_bytes
                .try_into()
                .map_err(|_| SgxError::Enclave("ME keygen returned a malformed pubkey".into()))?,
        );
        let credential = self
            .operator
            .issue_credential(me_key, machine_id, &machine.labels);

        let mut w = WireWriter::new();
        w.bytes(&credential.to_bytes());
        w.array(&self.operator.root_key().0);
        w.array(&self.world.ias().verifying_key().0);
        w.bytes(&policy.to_bytes());
        self.me_transfer_configs
            .get(&machine_id)
            .copied()
            .unwrap_or_default()
            .encode(&mut w);
        enclave.ecall(me_ops::PROVISION, &w.finish())?;
        Ok(enclave)
    }

    /// The ME host on `machine` (diagnostics, error inspection).
    ///
    /// # Panics
    ///
    /// Panics on machines without a provisioned ME (test bug).
    #[must_use]
    pub fn me_host(&self, machine: MachineId) -> Arc<Mutex<MeHost>> {
        Arc::clone(self.me_hosts.get(&machine).expect("machine has an ME"))
    }

    /// Deploys a migratable enclave instance.
    ///
    /// Loads `image` with `app` wrapped in the migration harness,
    /// initializes the library per `init`, runs local attestation with
    /// the machine's ME, and pumps the world until the handshake (and any
    /// pending incoming migration delivery) settles.
    ///
    /// # Errors
    ///
    /// Library initialization errors — notably [`MigError::Frozen`] and
    /// [`MigError::StaleState`] surfaced as `SgxError::Enclave` — and
    /// launch failures propagate.
    pub fn deploy_app<A: AppLogic + 'static>(
        &mut self,
        instance: &str,
        machine: MachineId,
        image: &EnclaveImage,
        app: A,
        init: InitRequest,
    ) -> Result<Arc<Mutex<AppHost>>, SgxError> {
        let machine_ref = self.world.machine(machine).clone();
        let enclave = machine_ref
            .sgx
            .load_enclave(image, Box::new(MigratableEnclave::new(app)))?;
        let endpoint = Endpoint::new(machine, &format!("app:{instance}"));
        let host = AppHost::start(
            instance,
            endpoint.clone(),
            enclave,
            machine_ref.disk.clone(),
            self.me_mr_enclave(),
            init,
        )?;
        let host = Arc::new(Mutex::new(host));
        self.world.register_service(endpoint, host.clone());
        host.lock().attest_me(self.world.network_mut());
        self.world.run_until_idle();
        self.app_hosts
            .insert(instance.to_string(), Arc::clone(&host));
        self.app_machines.insert(instance.to_string(), machine);
        Ok(host)
    }

    /// The app host for `instance`.
    ///
    /// # Panics
    ///
    /// Panics on unknown instances (test bug).
    #[must_use]
    pub fn app(&self, instance: &str) -> Arc<Mutex<AppHost>> {
        Arc::clone(self.app_hosts.get(instance).expect("unknown app instance"))
    }

    /// The machine currently hosting `instance`.
    ///
    /// # Panics
    ///
    /// Panics on unknown instances (test bug).
    #[must_use]
    pub fn app_machine(&self, instance: &str) -> MachineId {
        *self
            .app_machines
            .get(instance)
            .expect("unknown app instance")
    }

    /// Issues an application ECALL on `instance`.
    ///
    /// # Errors
    ///
    /// Enclave errors propagate.
    pub fn call_app(
        &mut self,
        instance: &str,
        opcode: u32,
        input: &[u8],
    ) -> Result<Vec<u8>, SgxError> {
        let host = self.app(instance);
        let result = host.lock().call(opcode, input);
        // Account any firmware latency the call incurred.
        self.world.run_until_idle();
        result
    }

    /// Migrates `src_instance`'s persistent state to the already deployed
    /// `dst_instance` (which must be awaiting a migration on another
    /// machine), pumping the world to completion. Returns the virtual
    /// time the migration took.
    ///
    /// # Errors
    ///
    /// [`MigError::HostState`] if either side ends in an unexpected
    /// status; enclave errors propagate.
    pub fn migrate_app(
        &mut self,
        src_instance: &str,
        dst_instance: &str,
    ) -> Result<Duration, MigError> {
        let dst_machine = self.app_machine(dst_instance);
        let src = self.app(src_instance);
        let dst = self.app(dst_instance);

        let started = self.world.now();
        src.lock()
            .migrate_to(self.world.network_mut(), dst_machine)
            .map_err(MigError::Sgx)?;
        self.world.run_until_idle();
        let finished = self.world.now();

        let src_status = src.lock().status();
        let dst_status = dst.lock().status();
        if src_status != AppStatus::Migrated {
            return Err(MigError::HostState("source did not complete migration"));
        }
        if dst_status != AppStatus::Ready {
            return Err(MigError::HostState("destination did not become ready"));
        }
        Ok(finished.since(started))
    }

    /// Migrates several enclaves **concurrently**: every
    /// `(source, destination)` pair's `migration_start` fires before the
    /// world is pumped, so their chunk streams multiplex on the shared
    /// ME↔ME channels (per-nonce streams, deficit-round-robin fairness —
    /// a large-state migration cannot head-of-line-block a small one).
    /// Returns the virtual time until the **last** migration completed.
    ///
    /// # Errors
    ///
    /// [`MigError::HostState`] if any pair ends in an unexpected status;
    /// enclave errors propagate.
    pub fn migrate_apps_concurrent(
        &mut self,
        pairs: &[(&str, &str)],
    ) -> Result<Duration, MigError> {
        let started = self.world.now();
        for (src_instance, dst_instance) in pairs {
            let dst_machine = self.app_machine(dst_instance);
            let src = self.app(src_instance);
            src.lock()
                .migrate_to(self.world.network_mut(), dst_machine)
                .map_err(MigError::Sgx)?;
        }
        self.world.run_until_idle();
        let finished = self.world.now();

        for (src_instance, dst_instance) in pairs {
            if self.app(src_instance).lock().status() != AppStatus::Migrated {
                return Err(MigError::HostState("a source did not complete migration"));
            }
            if self.app(dst_instance).lock().status() != AppStatus::Ready {
                return Err(MigError::HostState("a destination did not become ready"));
            }
        }
        Ok(finished.since(started))
    }

    /// Crash-resilient migration of `src_instance`'s persistent state to
    /// `dst_instance` (deployed, awaiting, on another machine).
    ///
    /// Like [`Datacenter::migrate_app`], but built for large streamed
    /// state: if the transfer stalls mid-stream (an injected machine
    /// failure, a partitioned link), it does **not** error out — it
    /// checkpoints the source ME's durable state (retained payload plus
    /// per-chunk progress) to disk and reports
    /// [`ResumableOutcome::Stalled`]. After the failure is repaired
    /// (e.g. [`Datacenter::restart_me`]), [`Datacenter::resume_migration`]
    /// continues from the last acknowledged chunk.
    ///
    /// # Errors
    ///
    /// Enclave errors from starting the migration propagate; a stalled
    /// transfer is an `Ok` outcome, not an error.
    pub fn migrate_app_resumable(
        &mut self,
        src_instance: &str,
        dst_instance: &str,
    ) -> Result<ResumableOutcome, MigError> {
        let src_machine = self.app_machine(src_instance);
        let dst_machine = self.app_machine(dst_instance);
        let src = self.app(src_instance);
        let dst = self.app(dst_instance);
        let mr = src.lock().enclave().identity().mr_enclave;

        let started = self.world.now();
        src.lock()
            .migrate_to(self.world.network_mut(), dst_machine)
            .map_err(MigError::Sgx)?;
        self.world.run_until_idle();
        let finished = self.world.now();

        if src.lock().status() == AppStatus::Migrated && dst.lock().status() == AppStatus::Ready {
            return Ok(ResumableOutcome::Completed(finished.since(started)));
        }
        // Stalled: checkpoint the source ME (retained data + chunk
        // progress) so recovery resumes instead of restarting.
        let progress = self
            .me_host(src_machine)
            .lock()
            .stream_progress(mr)
            .map_err(MigError::Sgx)?
            .map(|p| (p.acked, p.total_chunks));
        self.persist_me(src_machine).map_err(MigError::Sgx)?;
        Ok(ResumableOutcome::Stalled { progress })
    }

    /// Resumes a stalled migration of `src_instance` towards
    /// `dst_instance` from the last acknowledged chunk.
    ///
    /// Re-attests the (frozen) source enclave with its ME when needed —
    /// after an ME restart all attested sessions are gone — then
    /// re-dispatches the retained transfer: the source ME renegotiates
    /// the resume point with the destination (`ResumeRequest` /
    /// `Resume`) and streams only the chunks the destination is missing.
    ///
    /// # Errors
    ///
    /// [`MigError`] variants surface from the source ME (no retained
    /// data) or from the completion check.
    pub fn resume_migration(
        &mut self,
        src_instance: &str,
        dst_instance: &str,
    ) -> Result<Duration, MigError> {
        let src_machine = self.app_machine(src_instance);
        let dst_machine = self.app_machine(dst_instance);
        let mr = self
            .app(src_instance)
            .lock()
            .enclave()
            .identity()
            .mr_enclave;

        // Re-attest the source app so the completion notification can
        // reach it over a fresh channel (harmless if already attested).
        {
            let src = self.app(src_instance);
            let mut src = src.lock();
            src.attest_me(self.world.network_mut());
        }
        self.world.run_until_idle();

        let started = self.world.now();
        let me = self.me_host(src_machine);
        me.lock()
            .retry_migration(self.world.network_mut(), mr, dst_machine)
            .map_err(MigError::Sgx)?;
        self.world.run_until_idle();
        let finished = self.world.now();

        let src = self.app(src_instance);
        let dst = self.app(dst_instance);
        if src.lock().status() != AppStatus::MigratingOut
            && src.lock().status() != AppStatus::Migrated
        {
            return Err(MigError::HostState("source in unexpected status"));
        }
        if dst.lock().status() != AppStatus::Ready {
            return Err(MigError::HostState("destination did not become ready"));
        }
        Ok(finished.since(started))
    }

    /// The bulk state currently staged in `instance`'s Migration Library
    /// — on a freshly migrated destination, the transferred state blob.
    ///
    /// # Errors
    ///
    /// Enclave errors propagate; a malformed reply surfaces as
    /// [`SgxError::Decode`].
    pub fn app_bulk_state(&mut self, instance: &str) -> Result<Option<Vec<u8>>, SgxError> {
        let host = self.app(instance);
        let payload = host.lock().call(lib_ops::BULK_STATE, &[])?;
        let mut r = sgx_sim::wire::WireReader::new(&payload);
        let bulk = read_opt(&mut r)?;
        r.finish()?;
        Ok(bulk)
    }

    /// The generation-numbered checkpoint series holding a machine's
    /// sealed ME state (namespace `"me-state"` on its untrusted disk).
    #[must_use]
    pub fn me_checkpoints(&self, machine: MachineId) -> CheckpointStore {
        // Sealed ME state re-encrypts wholesale every generation, so
        // page-digest sidecars would never yield a useful delta.
        CheckpointStore::with_keep(self.world.machine(machine).disk.clone(), "me-state", 2)
            .without_page_digests()
    }

    /// Checkpoints a machine's ME state to its untrusted disk (the
    /// `"me-state"` checkpoint series), so retained migration data
    /// survives a management-VM restart — and, with two retained
    /// generations, even a crash mid-write of the newest checkpoint.
    ///
    /// # Errors
    ///
    /// Enclave errors propagate; a failed or torn disk write surfaces as
    /// an enclave error too (the previous checkpoint generation stays
    /// authoritative on disk).
    pub fn persist_me(&mut self, machine: MachineId) -> Result<(), SgxError> {
        let blob = self.me_host(machine).lock().persist_state()?;
        self.me_checkpoints(machine)
            .put(blob)
            .map_err(|e| SgxError::Enclave(format!("me checkpoint write: {e}")))?;
        Ok(())
    }

    /// Restarts a machine's Migration Enclave (management-VM reboot):
    /// loads a fresh ME instance and restores the durable state from the
    /// disk checkpoint if one exists, otherwise re-runs the §V-B setup
    /// phase (fresh key, fresh credential — any parked migration data is
    /// lost, which is exactly what checkpointing prevents). Application
    /// enclaves must re-attest before further migration traffic.
    ///
    /// The existence probe is metadata-only ([`CheckpointStore::latest_meta`]);
    /// the multi-megabyte checkpoint blob is loaded only on the restore
    /// branch.
    ///
    /// # Errors
    ///
    /// Launch or restore failures propagate.
    pub fn restart_me(&mut self, machine: MachineId) -> Result<(), SgxError> {
        let machine_ref = self.world.machine(machine).clone();
        let checkpoints = self.me_checkpoints(machine);
        self.me_host(machine).lock().enclave().destroy();
        let (enclave, state) = match checkpoints.latest_meta() {
            Some(_) => {
                let enclave = machine_ref
                    .sgx
                    .load_enclave(&me_image(), Box::new(MigrationEnclave::new()))?;
                let state = checkpoints.latest().map(|(_, blob)| blob);
                (enclave, state)
            }
            None => {
                let policy = self.me_policies.get(&machine).cloned().unwrap_or_default();
                (self.provision_me(machine, &policy)?, None)
            }
        };
        self.me_host(machine)
            .lock()
            .replace_enclave(enclave, state.as_deref())
    }

    /// Semi-transparent migration (the paper's §X sketch): the management
    /// VM locates every migratable enclave belonging to a guest VM, calls
    /// their `migration_start`, and then live-migrates the VM itself —
    /// transparent to the applications and guest OS.
    ///
    /// `pairs` lists `(source_instance, destination_instance)` for every
    /// enclave in the VM; destinations must already be deployed on
    /// `target` awaiting migration. Returns
    /// `(enclave_migration_time, vm_migration_time)`.
    ///
    /// # Errors
    ///
    /// [`MigError`] from any per-enclave migration; the VM is only moved
    /// after every enclave migrated.
    pub fn migrate_vm_with_enclaves(
        &mut self,
        vm: cloud_sim::vm::VmId,
        target: MachineId,
        pairs: &[(&str, &str)],
    ) -> Result<(Duration, Duration), MigError> {
        let mut enclave_total = Duration::ZERO;
        for (src, dst) in pairs {
            if self.app_machine(dst) != target {
                return Err(MigError::HostState(
                    "destination instance is not on the VM's target machine",
                ));
            }
            enclave_total += self.migrate_app(src, dst)?;
        }
        let vm_time = self.world.migrate_vm(vm, target);
        Ok((enclave_total, vm_time))
    }

    /// Retries a stuck migration of `src_instance`'s enclave towards the
    /// (already deployed, awaiting) `dst_instance` — the Fig. 2 error
    /// rule: retained data is re-dispatched, possibly to a new
    /// destination.
    ///
    /// # Errors
    ///
    /// [`MigError`] variants surface from the source ME (no retained
    /// data) or from the completion check.
    pub fn retry_migration(
        &mut self,
        src_instance: &str,
        dst_instance: &str,
    ) -> Result<Duration, MigError> {
        let src_machine = self.app_machine(src_instance);
        let dst_machine = self.app_machine(dst_instance);
        let mr = self
            .app(src_instance)
            .lock()
            .enclave()
            .identity()
            .mr_enclave;

        let started = self.world.now();
        let me = self.me_host(src_machine);
        me.lock()
            .retry_migration(self.world.network_mut(), mr, dst_machine)
            .map_err(MigError::Sgx)?;
        self.world.run_until_idle();
        let finished = self.world.now();

        let src = self.app(src_instance);
        let dst = self.app(dst_instance);
        if src.lock().status() != AppStatus::MigratingOut
            && src.lock().status() != AppStatus::Migrated
        {
            return Err(MigError::HostState("source in unexpected status"));
        }
        if dst.lock().status() != AppStatus::Ready {
            return Err(MigError::HostState("destination did not become ready"));
        }
        Ok(finished.since(started))
    }

    /// Stops an app (application exit / crash): the enclave is destroyed
    /// and the service unregistered. The sealed state blob remains on the
    /// machine's disk.
    pub fn stop_app(&mut self, instance: &str) {
        if let Some(host) = self.app_hosts.remove(instance) {
            let endpoint = host.lock().endpoint();
            host.lock().enclave().destroy();
            self.world.unregister_service(&endpoint);
        }
        self.app_machines.remove(instance);
    }

    /// Restarts an app from its sealed state blob on disk
    /// ([`InitRequest::Restore`]; Fig. 1's "restored enclave").
    ///
    /// # Errors
    ///
    /// Surfaces `Frozen` / `StaleState` library errors — this is the API
    /// the fork-attack tests drive.
    pub fn restart_app<A: AppLogic + 'static>(
        &mut self,
        instance: &str,
        machine: MachineId,
        image: &EnclaveImage,
        app: A,
    ) -> Result<Arc<Mutex<AppHost>>, SgxError> {
        let disk = self.world.machine(machine).disk.clone();
        let key = format!("mig-state:{instance}");
        let blob = disk
            .get(&key)
            .ok_or_else(|| SgxError::Enclave("no persisted state on disk".into()))?;
        self.stop_app(instance);
        self.deploy_app(instance, machine, image, app, InitRequest::Restore { blob })
    }

    /// Merged telemetry across every machine's ME host, in machine-id
    /// order: trace events (stably re-sorted by timestamp), additive
    /// counters, machine-scoped gauges, merged histograms, and the
    /// fleet's ECALL/OCALL transition tally. Deterministic for a given
    /// seed — `to_json()` of two same-seed runs is byte-identical.
    ///
    /// # Errors
    ///
    /// Enclave errors from any machine's `TELEMETRY` ECALL propagate.
    pub fn fleet_telemetry(&mut self) -> Result<mig_trace::Telemetry, SgxError> {
        let mut machines: Vec<MachineId> = self.me_hosts.keys().copied().collect();
        machines.sort_by_key(|m| m.0);
        let mut fleet = mig_trace::Telemetry::default();
        for machine in machines {
            let host = self.me_host(machine);
            let telemetry = host.lock().telemetry()?;
            fleet.merge(&telemetry);
        }
        Ok(fleet)
    }

    /// Pumps the world until idle.
    pub fn run(&mut self) -> usize {
        self.world.run_until_idle()
    }
}
