//! Baselines the paper measures and attacks against.
//!
//! Two baselines live here:
//!
//! * [`native`] — a non-migratable enclave using the standard SGX
//!   primitives directly (the "baseline implementation" of Figs. 3–4);
//! * [`gu`] — a Gu-et-al-style *data-memory* migration \[2\]: enclave
//!   memory is re-encrypted under a remote-attested key and shipped to an
//!   identical enclave, with the worker-freezing flag in both the
//!   non-persisted and persisted variants the paper analyses in §III-B.
//!   Persistent state (sealed data, monotonic counters) is **not**
//!   migrated — which is exactly the gap the attack tests exploit.

pub mod native {
    //! The non-migratable baseline enclave used by the Fig. 3/4 benches.

    use sgx_sim::counters::CounterUuid;
    use sgx_sim::cpu::KeyPolicy;
    use sgx_sim::enclave::{EnclaveCode, EnclaveEnv};
    use sgx_sim::SgxError;

    /// ECALL opcodes of the native baseline enclave.
    pub mod ops {
        /// Create a monotonic counter → `counter index (u8)` + value.
        pub const COUNTER_CREATE: u32 = 1;
        /// Increment counter `[idx]` → new value (LE u32).
        pub const COUNTER_INCREMENT: u32 = 2;
        /// Read counter `[idx]` → value (LE u32).
        pub const COUNTER_READ: u32 = 3;
        /// Destroy counter `[idx]`.
        pub const COUNTER_DESTROY: u32 = 4;
        /// Seal input → blob (native `sgx_seal_data`).
        pub const SEAL: u32 = 5;
        /// Unseal blob → plaintext.
        pub const UNSEAL: u32 = 6;
    }

    /// A plain enclave using native sealing and counters — the
    /// "baseline implementation" the paper compares against.
    ///
    /// Counter slots are reused after destruction (256 slots, like the
    /// platform quota), mirroring how the Migration Library reuses its
    /// internal counter ids.
    #[derive(Default)]
    pub struct NativeEnclave {
        counters: Vec<Option<CounterUuid>>,
    }

    impl NativeEnclave {
        /// Creates an empty baseline enclave.
        #[must_use]
        pub fn new() -> Self {
            NativeEnclave::default()
        }

        fn slot(&self, input: &[u8]) -> Result<CounterUuid, SgxError> {
            let idx = *input.first().ok_or(SgxError::InvalidParameter("idx"))? as usize;
            self.counters
                .get(idx)
                .copied()
                .flatten()
                .ok_or(SgxError::InvalidParameter("idx"))
        }
    }

    impl EnclaveCode for NativeEnclave {
        fn ecall(
            &mut self,
            env: &mut EnclaveEnv<'_>,
            opcode: u32,
            input: &[u8],
        ) -> Result<Vec<u8>, SgxError> {
            match opcode {
                ops::COUNTER_CREATE => {
                    let (uuid, value) = env.create_counter()?;
                    let idx = match self.counters.iter().position(Option::is_none) {
                        Some(free) => {
                            self.counters[free] = Some(uuid);
                            free
                        }
                        None => {
                            if self.counters.len() >= 256 {
                                return Err(SgxError::CounterQuotaExceeded);
                            }
                            self.counters.push(Some(uuid));
                            self.counters.len() - 1
                        }
                    };
                    let mut out = vec![idx as u8];
                    out.extend_from_slice(&value.to_le_bytes());
                    Ok(out)
                }
                ops::COUNTER_INCREMENT => {
                    let uuid = self.slot(input)?;
                    Ok(env.increment_counter(&uuid)?.to_le_bytes().to_vec())
                }
                ops::COUNTER_READ => {
                    let uuid = self.slot(input)?;
                    Ok(env.read_counter(&uuid)?.to_le_bytes().to_vec())
                }
                ops::COUNTER_DESTROY => {
                    let uuid = self.slot(input)?;
                    env.destroy_counter(&uuid)?;
                    let idx = input[0] as usize;
                    self.counters[idx] = None;
                    Ok(vec![])
                }
                ops::SEAL => Ok(env.seal_data(KeyPolicy::MrEnclave, b"", input)),
                ops::UNSEAL => Ok(env.unseal_data(input)?.0),
                _ => Err(SgxError::InvalidParameter("opcode")),
            }
        }
    }
}

pub mod gu {
    //! Gu-et-al-style enclave *data-memory* migration (§IX-B, attack
    //! target of §III-B).
    //!
    //! The source enclave freezes its workers (a `frozen` flag), exports
    //! its memory re-encrypted under a key agreed with the destination
    //! enclave via remote attestation, and the destination imports it.
    //! Two variants of the freeze flag exist, matching the paper's case
    //! analysis:
    //!
    //! * **not persisted** (the default reading of \[2\]) — restarting the
    //!   source enclave clears the flag, so the §III-B fork attack
    //!   succeeds;
    //! * **persisted** — forking is prevented, but the enclave can never
    //!   migrate *back* to the source machine, because a legitimate
    //!   return is indistinguishable from a fork.
    //!
    //! Sealed data and monotonic counters are left behind in both
    //! variants.

    use crate::error::MigError;
    use crate::remote_attest::{RaConfig, RaHello, RaInitiator, RaResponder, RaResponseQuote};
    use crate::secure_channel::{ChannelRole, SecureChannel};
    use sgx_sim::cpu::KeyPolicy;
    use sgx_sim::enclave::EnclaveEnv;
    use sgx_sim::ias::AttestationEvidence;

    /// Freeze-flag handling variants (§III-B analysis).
    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    pub enum FreezeFlag {
        /// Flag lives only in enclave memory; lost on restart.
        InMemory,
        /// Flag is sealed to disk and re-checked on restart.
        Persisted,
    }

    /// The in-enclave migration helper of the Gu-style baseline.
    #[derive(Debug)]
    pub struct GuLibrary {
        variant: FreezeFlag,
        frozen: bool,
        initiator: Option<RaInitiator>,
        responder: Option<RaResponder>,
    }

    /// Disk tag for the persisted freeze flag.
    pub const FREEZE_AAD: &[u8] = b"gu-baseline.freeze-flag";

    impl GuLibrary {
        /// Creates the helper with the chosen freeze-flag variant.
        #[must_use]
        pub fn new(variant: FreezeFlag) -> Self {
            GuLibrary {
                variant,
                frozen: false,
                initiator: None,
                responder: None,
            }
        }

        /// Whether the enclave refuses to operate (workers spin-locked).
        #[must_use]
        pub fn is_frozen(&self) -> bool {
            self.frozen
        }

        /// Restores the persisted freeze flag, if this variant persists
        /// it and a sealed flag blob is supplied.
        ///
        /// # Errors
        ///
        /// Unsealing errors propagate (tampered blob).
        pub fn restore_flag(
            &mut self,
            env: &mut EnclaveEnv<'_>,
            sealed_flag: Option<&[u8]>,
        ) -> Result<(), MigError> {
            if self.variant == FreezeFlag::Persisted {
                if let Some(blob) = sealed_flag {
                    let (plaintext, aad) = env.unseal_data(blob)?;
                    if aad == FREEZE_AAD && plaintext == [1] {
                        self.frozen = true;
                    }
                }
            }
            Ok(())
        }

        /// Source side: begins remote attestation with the destination
        /// enclave (same MRENCLAVE on another machine).
        ///
        /// # Errors
        ///
        /// Quote generation errors propagate.
        pub fn begin_export(&mut self, env: &mut EnclaveEnv<'_>) -> Result<RaHello, MigError> {
            let (session, hello) = RaInitiator::start(env)?;
            self.initiator = Some(session);
            Ok(hello)
        }

        /// Destination side: answers the source's hello.
        ///
        /// # Errors
        ///
        /// Attestation failures propagate.
        pub fn begin_import(
            &mut self,
            env: &mut EnclaveEnv<'_>,
            cfg: &RaConfig,
            hello_g: mig_crypto::x25519::PublicKey,
            evidence: &AttestationEvidence,
        ) -> Result<RaResponseQuote, MigError> {
            let (session, response) = RaResponder::respond(env, cfg, hello_g, evidence)?;
            self.responder = Some(session);
            Ok(response)
        }

        /// Source side: freezes the enclave and exports `memory`
        /// re-encrypted for the destination. Returns the ciphertext and,
        /// for the persisted variant, the sealed flag blob the host must
        /// store.
        ///
        /// # Errors
        ///
        /// Attestation failures propagate.
        pub fn export_memory(
            &mut self,
            env: &mut EnclaveEnv<'_>,
            cfg: &RaConfig,
            g_r: mig_crypto::x25519::PublicKey,
            evidence: &AttestationEvidence,
            memory: &[u8],
        ) -> Result<(Vec<u8>, Option<Vec<u8>>), MigError> {
            let session = self
                .initiator
                .take()
                .ok_or(MigError::Protocol("no export in progress"))?;
            let key = session.process_response(cfg, g_r, evidence)?;
            self.frozen = true;
            let sealed_flag = match self.variant {
                FreezeFlag::Persisted => {
                    Some(env.seal_data(KeyPolicy::MrEnclave, FREEZE_AAD, &[1]))
                }
                FreezeFlag::InMemory => None,
            };
            let mut channel = SecureChannel::new(key, ChannelRole::Initiator);
            Ok((channel.seal(memory), sealed_flag))
        }

        /// Destination side: decrypts the imported memory.
        ///
        /// # Errors
        ///
        /// Channel errors propagate (tampered ciphertext).
        pub fn import_memory(&mut self, ciphertext: &[u8]) -> Result<Vec<u8>, MigError> {
            let session = self
                .responder
                .take()
                .ok_or(MigError::Protocol("no import in progress"))?;
            let mut channel = SecureChannel::new(session.session_key(), ChannelRole::Responder);
            channel.open(ciphertext)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn freeze_flag_variants() {
            let mut in_memory = GuLibrary::new(FreezeFlag::InMemory);
            assert!(!in_memory.is_frozen());
            let persisted = GuLibrary::new(FreezeFlag::Persisted);
            assert!(!persisted.is_frozen());
            in_memory.frozen = true;
            assert!(in_memory.is_frozen());
        }
    }
}

pub mod victim {
    //! The §III attack victim: an enclave that protects its persistent
    //! state exactly as Teechan/TrInX do — encrypted under a portable
    //! (KDC-provisioned) key with a hardware-monotonic-counter version —
    //! but migrates via the Gu-style *memory-only* mechanism.
    //!
    //! The state encryption key comes from a Key Distribution Center
    //! (the paper's §III-C AWS-KMS scenario), so the encrypted state is
    //! readable on any machine; only the *counter* is machine-bound.
    //! This is the configuration in which the paper's fork (§III-B) and
    //! roll-back (§III-C) attacks succeed, as the attack test-suite
    //! demonstrates.

    use super::gu::{FreezeFlag, GuLibrary};
    use crate::remote_attest::RaConfig;
    use mig_crypto::ed25519::VerifyingKey;
    use mig_crypto::gcm::AesGcm;
    use mig_crypto::x25519::PublicKey;
    use sgx_sim::counters::CounterUuid;
    use sgx_sim::enclave::{EnclaveCode, EnclaveEnv};
    use sgx_sim::ias::AttestationEvidence;
    use sgx_sim::wire::{WireReader, WireWriter};
    use sgx_sim::SgxError;

    /// ECALL opcodes of the victim enclave.
    pub mod ops {
        /// Provision KDC key, IAS key, and freeze-flag variant.
        pub const PROVISION: u32 = 1;
        /// Set the in-memory application payload.
        pub const SET_DATA: u32 = 2;
        /// Read the in-memory application payload.
        pub const GET_DATA: u32 = 3;
        /// Persist: increment the counter, encrypt `{version, data}`.
        pub const PERSIST: u32 = 4;
        /// Restore from an encrypted state package (version-checked).
        pub const RESTORE: u32 = 5;
        /// Gu migration: source begins export (returns RA hello).
        pub const GU_BEGIN_EXPORT: u32 = 6;
        /// Gu migration: destination answers (returns RA response).
        pub const GU_BEGIN_IMPORT: u32 = 7;
        /// Gu migration: source exports memory (returns ciphertext).
        pub const GU_EXPORT: u32 = 8;
        /// Gu migration: destination imports memory.
        pub const GU_IMPORT: u32 = 9;
        /// Restore the persisted freeze flag (if that variant is used).
        pub const GU_RESTORE_FLAG: u32 = 10;
        /// Whether the enclave considers itself frozen.
        pub const IS_FROZEN: u32 = 11;
    }

    const STATE_AAD: &[u8] = b"victim.kdc-state.v1";

    /// The attack-victim enclave.
    pub struct PortableVictim {
        kdc_key: Option<[u8; 16]>,
        ias_key: Option<VerifyingKey>,
        counter: Option<CounterUuid>,
        data: Vec<u8>,
        gu: GuLibrary,
    }

    impl PortableVictim {
        /// Creates an unprovisioned victim with the given freeze-flag
        /// variant.
        #[must_use]
        pub fn new(variant: FreezeFlag) -> Self {
            PortableVictim {
                kdc_key: None,
                ias_key: None,
                counter: None,
                data: Vec::new(),
                gu: GuLibrary::new(variant),
            }
        }

        fn kdc(&self) -> Result<AesGcm, SgxError> {
            Ok(AesGcm::new(self.kdc_key.ok_or_else(|| {
                SgxError::Enclave("victim not provisioned".into())
            })?))
        }

        fn ra_config(&self, env: &EnclaveEnv<'_>) -> Result<RaConfig, SgxError> {
            Ok(RaConfig {
                ias_key: self
                    .ias_key
                    .ok_or_else(|| SgxError::Enclave("victim not provisioned".into()))?,
                expected_mr_enclave: env.identity().mr_enclave,
            })
        }

        fn memory_bytes(&self) -> Vec<u8> {
            let mut w = WireWriter::new();
            w.array(&self.kdc_key.unwrap_or([0; 16]));
            w.bytes(&self.data);
            w.finish()
        }

        fn install_memory(&mut self, bytes: &[u8]) -> Result<(), SgxError> {
            let mut r = WireReader::new(bytes);
            self.kdc_key = Some(r.array()?);
            self.data = r.bytes_vec()?;
            r.finish()?;
            Ok(())
        }
    }

    impl EnclaveCode for PortableVictim {
        fn ecall(
            &mut self,
            env: &mut EnclaveEnv<'_>,
            opcode: u32,
            input: &[u8],
        ) -> Result<Vec<u8>, SgxError> {
            match opcode {
                ops::PROVISION => {
                    let mut r = WireReader::new(input);
                    self.kdc_key = Some(r.array()?);
                    self.ias_key = Some(VerifyingKey(r.array()?));
                    r.finish()?;
                    Ok(vec![])
                }
                ops::SET_DATA => {
                    if self.gu.is_frozen() {
                        return Err(SgxError::Enclave("enclave frozen".into()));
                    }
                    self.data = input.to_vec();
                    Ok(vec![])
                }
                ops::GET_DATA => Ok(self.data.clone()),
                ops::PERSIST => {
                    if self.gu.is_frozen() {
                        return Err(SgxError::Enclave("enclave frozen".into()));
                    }
                    // First persist on this machine creates the counter.
                    let uuid = match self.counter {
                        Some(uuid) => uuid,
                        None => {
                            let (uuid, _) = env.create_counter()?;
                            self.counter = Some(uuid);
                            uuid
                        }
                    };
                    let version = env.increment_counter(&uuid)?;
                    let mut body = WireWriter::new();
                    body.u32(version).bytes(&self.data);
                    let mut nonce = [0u8; 12];
                    env.random_bytes(&mut nonce);
                    let ct = self.kdc()?.seal(&nonce, STATE_AAD, &body.finish());
                    let mut out = WireWriter::new();
                    out.u32(version).array(&nonce).bytes(&ct);
                    Ok(out.finish())
                }
                ops::RESTORE => {
                    let mut r = WireReader::new(input);
                    let _claimed_version = r.u32()?;
                    let nonce: [u8; 12] = r.array()?;
                    let ct = r.bytes_vec()?;
                    r.finish()?;
                    let body = self
                        .kdc()?
                        .open(&nonce, STATE_AAD, &ct)
                        .map_err(|_| SgxError::MacMismatch)?;
                    let mut r = WireReader::new(&body);
                    let version = r.u32()?;
                    let data = r.bytes_vec()?;
                    r.finish()?;
                    // The Teechan/TrInX freshness rule: accept only if the
                    // embedded version equals the hardware counter.
                    let uuid = self
                        .counter
                        .ok_or_else(|| SgxError::Enclave("no counter on this machine".into()))?;
                    let current = env.read_counter(&uuid)?;
                    if version != current {
                        return Err(SgxError::Enclave(format!(
                            "version mismatch: package {version} != counter {current}"
                        )));
                    }
                    self.data = data;
                    Ok(vec![])
                }
                ops::GU_BEGIN_EXPORT => {
                    let hello = self.gu.begin_export(env).map_err(SgxError::from)?;
                    Ok(hello.to_bytes())
                }
                ops::GU_BEGIN_IMPORT => {
                    let mut r = WireReader::new(input);
                    let g = PublicKey(r.array()?);
                    let evidence = AttestationEvidence::from_bytes(r.bytes()?)?;
                    r.finish()?;
                    let cfg = self.ra_config(env)?;
                    let response = self
                        .gu
                        .begin_import(env, &cfg, g, &evidence)
                        .map_err(SgxError::from)?;
                    Ok(response.to_bytes())
                }
                ops::GU_EXPORT => {
                    let mut r = WireReader::new(input);
                    let g_r = PublicKey(r.array()?);
                    let evidence = AttestationEvidence::from_bytes(r.bytes()?)?;
                    r.finish()?;
                    let cfg = self.ra_config(env)?;
                    let memory = self.memory_bytes();
                    let (ct, sealed_flag) = self
                        .gu
                        .export_memory(env, &cfg, g_r, &evidence, &memory)
                        .map_err(SgxError::from)?;
                    let mut w = WireWriter::new();
                    w.bytes(&ct);
                    crate::me::write_opt(&mut w, sealed_flag.as_deref());
                    Ok(w.finish())
                }
                ops::GU_IMPORT => {
                    let memory = self.gu.import_memory(input).map_err(SgxError::from)?;
                    self.install_memory(&memory)?;
                    Ok(vec![])
                }
                ops::GU_RESTORE_FLAG => {
                    let flag = if input.is_empty() { None } else { Some(input) };
                    self.gu.restore_flag(env, flag).map_err(SgxError::from)?;
                    Ok(vec![])
                }
                ops::IS_FROZEN => Ok(vec![u8::from(self.gu.is_frozen())]),
                _ => Err(SgxError::InvalidParameter("opcode")),
            }
        }
    }
}
