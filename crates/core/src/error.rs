//! Error type for the migration framework.

use sgx_sim::SgxError;
use std::error::Error;
use std::fmt;

/// Errors surfaced by the Migration Library, the Migration Enclave, and
/// the untrusted hosts driving them.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MigError {
    /// An underlying simulated-SGX operation failed.
    Sgx(SgxError),
    /// The library was initialized from a blob whose freeze flag is set:
    /// this enclave incarnation has already been migrated away (§VI-B:
    /// "If this flag is active on initialization, the library will refuse
    /// to operate").
    Frozen,
    /// The persistent blob references monotonic counters that no longer
    /// exist — the signature of a fork attempt with stale state (§VII-A).
    StaleState,
    /// The library has not completed initialization (`migration_init`).
    NotInitialized,
    /// The library is awaiting incoming migration data and cannot serve
    /// migratable operations yet.
    AwaitingMigration,
    /// No attested session with the local Migration Enclave exists.
    NoMeSession,
    /// An operation referenced an unknown library counter id.
    UnknownCounterId,
    /// The requested library counter id is already in use.
    CounterIdInUse,
    /// Adding the migration offset to the hardware counter would overflow
    /// (the §VI-B "checks to prevent an integer overflow due to the
    /// offset").
    EffectiveCounterOverflow,
    /// A migration is already in flight for this enclave.
    MigrationInProgress,
    /// The peer Migration Enclave failed authentication: bad credential,
    /// bad transcript signature, or wrong enclave identity.
    PeerAuthenticationFailed(&'static str),
    /// The migration policy denies this source/destination pairing.
    PolicyViolation(String),
    /// A protocol message arrived out of order or for an unknown session.
    Protocol(&'static str),
    /// A streamed state transfer violated the chunk protocol: wrong
    /// chunk index, broken HMAC chain, digest mismatch, or inconsistent
    /// stream geometry.
    Transfer(&'static str),
    /// A session-layer state machine (`me::session::SenderFsm` /
    /// `me::session::ReceiverFsm`) was driven with an event its current
    /// state does not accept — e.g. announcing a stream that is already
    /// streaming, or resuming a migration that was never dispatched.
    InvalidTransition {
        /// The state the machine was in.
        state: &'static str,
        /// The event that does not apply in that state.
        event: &'static str,
    },
    /// A stream frame or acknowledgement referenced a transfer nonce
    /// that no active stream owns (stale, already completed, or forged).
    StaleNonce,
    /// A dirty-page delta referenced a base generation this enclave no
    /// longer retains (evicted from the byte-budgeted generation cache).
    BaseEvicted,
    /// The untrusted host was asked to do something its status forbids.
    HostState(&'static str),
    /// An attested ME-to-ME channel this operation requires is not open
    /// (never established, or torn down by a session reset).
    ChannelMissing {
        /// The missing peer's role from this enclave's point of view.
        peer: ChannelPeer,
    },
    /// A session-layer invariant that should hold by construction was
    /// violated at runtime. Converted panic sites from the enclave-panic
    /// triage land here: instead of aborting the enclave on corrupted
    /// internal state, the operation fails closed naming the invariant.
    SessionInvariant(&'static str),
}

/// Which side of an attested ME-to-ME channel was expected to exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelPeer {
    /// The migration source (inbound direction).
    Source,
    /// The migration destination (outbound direction).
    Destination,
}

impl fmt::Display for ChannelPeer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelPeer::Source => write!(f, "source"),
            ChannelPeer::Destination => write!(f, "destination"),
        }
    }
}

impl fmt::Display for MigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MigError::Sgx(e) => write!(f, "sgx: {e}"),
            MigError::Frozen => write!(f, "library state is frozen (already migrated)"),
            MigError::StaleState => {
                write!(
                    f,
                    "stale persistent state: referenced counters no longer exist"
                )
            }
            MigError::NotInitialized => write!(f, "migration library not initialized"),
            MigError::AwaitingMigration => {
                write!(f, "library is awaiting incoming migration data")
            }
            MigError::NoMeSession => {
                write!(f, "no attested session with the local migration enclave")
            }
            MigError::UnknownCounterId => write!(f, "unknown migratable counter id"),
            MigError::CounterIdInUse => write!(f, "migratable counter id already in use"),
            MigError::EffectiveCounterOverflow => {
                write!(f, "effective counter value would overflow")
            }
            MigError::MigrationInProgress => write!(f, "a migration is already in progress"),
            MigError::PeerAuthenticationFailed(what) => {
                write!(f, "peer migration enclave authentication failed: {what}")
            }
            MigError::PolicyViolation(why) => write!(f, "migration policy violation: {why}"),
            MigError::Protocol(what) => write!(f, "protocol error: {what}"),
            MigError::Transfer(what) => write!(f, "state-transfer error: {what}"),
            MigError::InvalidTransition { state, event } => {
                write!(f, "invalid session transition: {event} in state {state}")
            }
            MigError::StaleNonce => {
                write!(f, "stale transfer nonce: no active stream owns it")
            }
            MigError::BaseEvicted => {
                write!(f, "delta base generation no longer retained (evicted)")
            }
            MigError::HostState(what) => write!(f, "host state error: {what}"),
            MigError::ChannelMissing { peer } => {
                write!(f, "no attested channel to the migration {peer}")
            }
            MigError::SessionInvariant(what) => {
                write!(f, "session invariant violated: {what}")
            }
        }
    }
}

impl Error for MigError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MigError::Sgx(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SgxError> for MigError {
    fn from(e: SgxError) -> Self {
        MigError::Sgx(e)
    }
}

impl From<mig_crypto::CryptoError> for MigError {
    fn from(e: mig_crypto::CryptoError) -> Self {
        MigError::Sgx(e.into())
    }
}

/// Converts a `MigError` into the ECALL ABI error (`SgxError::Enclave`),
/// preserving the message. Needed because enclave code speaks `SgxError`
/// across the boundary.
impl From<MigError> for SgxError {
    fn from(e: MigError) -> Self {
        match e {
            MigError::Sgx(inner) => inner,
            other => SgxError::Enclave(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_nonempty() {
        let all = [
            MigError::Sgx(SgxError::MacMismatch),
            MigError::Frozen,
            MigError::StaleState,
            MigError::NotInitialized,
            MigError::AwaitingMigration,
            MigError::NoMeSession,
            MigError::UnknownCounterId,
            MigError::CounterIdInUse,
            MigError::EffectiveCounterOverflow,
            MigError::MigrationInProgress,
            MigError::PeerAuthenticationFailed("sig"),
            MigError::PolicyViolation("other dc".into()),
            MigError::Protocol("bad msg"),
            MigError::Transfer("chain broken"),
            MigError::InvalidTransition {
                state: "Idle",
                event: "on_ack",
            },
            MigError::StaleNonce,
            MigError::BaseEvicted,
            MigError::HostState("not ready"),
            MigError::ChannelMissing {
                peer: ChannelPeer::Source,
            },
            MigError::ChannelMissing {
                peer: ChannelPeer::Destination,
            },
            MigError::SessionInvariant("stream map entry vanished"),
        ];
        for e in all {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn sgx_error_round_trips_through_abi() {
        let e = MigError::Sgx(SgxError::CounterNotFound);
        let abi: SgxError = e.into();
        assert_eq!(abi, SgxError::CounterNotFound);

        let e = MigError::Frozen;
        let abi: SgxError = e.into();
        assert!(matches!(abi, SgxError::Enclave(msg) if msg.contains("frozen")));
    }

    #[test]
    fn source_chain_exposed() {
        let e = MigError::Sgx(SgxError::MacMismatch);
        assert!(e.source().is_some());
        assert!(MigError::Frozen.source().is_none());
    }
}
