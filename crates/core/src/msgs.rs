//! Protocol messages exchanged over the attested secure channels.
//!
//! Two message families exist, mirroring Fig. 2 of the paper:
//!
//! * [`LibToMe`] / [`MeToLib`] — between a Migration Library and its local
//!   Migration Enclave, inside the local-attestation channel;
//! * [`MeToMe`] — between the source and destination Migration Enclaves,
//!   inside the remote-attestation channel.
//!
//! All of these travel *encrypted*; the enum encodings here are the
//! channel plaintexts.

use crate::library::state::MigrationData;
use sgx_sim::machine::MachineId;
use sgx_sim::measurement::MrEnclave;
use sgx_sim::wire::{WireReader, WireWriter};
use sgx_sim::SgxError;

/// Library → Migration Enclave (local channel).
// MigrationData carries the Table I fixed arrays inline (1.3 KiB); the
// messages are built once and immediately serialized, so boxing would
// only complicate the codec.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LibToMe {
    /// Start an outgoing migration: transfer `data` to `destination`
    /// (the `migrate` message of Fig. 2).
    MigrateRequest {
        /// The machine the enclave should migrate to.
        destination: MachineId,
        /// The Table I payload.
        data: MigrationData,
    },
    /// Confirmation that incoming migration data was installed
    /// (the `DONE` message of Fig. 2).
    Done,
}

impl LibToMe {
    /// Serializes the message (channel plaintext).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        match self {
            LibToMe::MigrateRequest { destination, data } => {
                w.u8(1);
                w.u64(destination.0);
                w.bytes(&data.to_bytes());
            }
            LibToMe::Done => {
                w.u8(2);
            }
        }
        w.finish()
    }

    /// Parses a message.
    ///
    /// # Errors
    ///
    /// [`SgxError::Decode`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SgxError> {
        let mut r = WireReader::new(bytes);
        let msg = match r.u8()? {
            1 => LibToMe::MigrateRequest {
                destination: MachineId(r.u64()?),
                data: MigrationData::from_bytes(r.bytes()?)?,
            },
            2 => LibToMe::Done,
            _ => return Err(SgxError::Decode),
        };
        r.finish()?;
        Ok(msg)
    }
}

/// Migration Enclave → Library (local channel).
// MigrationData carries the Table I fixed arrays inline (1.3 KiB); the
// messages are built once and immediately serialized, so boxing would
// only complicate the codec.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MeToLib {
    /// Deliver incoming migration data (the `restore data` of Fig. 2).
    IncomingMigration {
        /// The Table I payload from the source enclave.
        data: MigrationData,
    },
    /// The outgoing migration completed; the destination confirmed.
    MigrationComplete,
}

impl MeToLib {
    /// Serializes the message (channel plaintext).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        match self {
            MeToLib::IncomingMigration { data } => {
                w.u8(1);
                w.bytes(&data.to_bytes());
            }
            MeToLib::MigrationComplete => {
                w.u8(2);
            }
        }
        w.finish()
    }

    /// Parses a message.
    ///
    /// # Errors
    ///
    /// [`SgxError::Decode`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SgxError> {
        let mut r = WireReader::new(bytes);
        let msg = match r.u8()? {
            1 => MeToLib::IncomingMigration {
                data: MigrationData::from_bytes(r.bytes()?)?,
            },
            2 => MeToLib::MigrationComplete,
            _ => return Err(SgxError::Decode),
        };
        r.finish()?;
        Ok(msg)
    }
}

/// Migration Enclave ↔ Migration Enclave (remote channel).
// MigrationData carries the Table I fixed arrays inline (1.3 KiB); the
// messages are built once and immediately serialized, so boxing would
// only complicate the codec.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MeToMe {
    /// Source → destination: the migrating enclave's identity and payload.
    /// (§VI-A: "the MRENCLAVE value is appended to the migration data of
    /// the enclave before sending it to the destination".)
    Transfer {
        /// MRENCLAVE of the migrating enclave.
        mr_enclave: MrEnclave,
        /// The Table I payload.
        data: MigrationData,
    },
    /// Destination → source: the named enclave's data was delivered to a
    /// matching local enclave and confirmed (`DONE` propagated).
    Delivered {
        /// MRENCLAVE of the migrated enclave.
        mr_enclave: MrEnclave,
    },
    /// Destination → source: data accepted and stored; delivery pending
    /// until a matching enclave attests.
    Stored {
        /// MRENCLAVE of the migrating enclave.
        mr_enclave: MrEnclave,
    },
}

impl MeToMe {
    /// Serializes the message (channel plaintext).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        match self {
            MeToMe::Transfer { mr_enclave, data } => {
                w.u8(1);
                w.array(&mr_enclave.0);
                w.bytes(&data.to_bytes());
            }
            MeToMe::Delivered { mr_enclave } => {
                w.u8(2);
                w.array(&mr_enclave.0);
            }
            MeToMe::Stored { mr_enclave } => {
                w.u8(3);
                w.array(&mr_enclave.0);
            }
        }
        w.finish()
    }

    /// Parses a message.
    ///
    /// # Errors
    ///
    /// [`SgxError::Decode`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SgxError> {
        let mut r = WireReader::new(bytes);
        let msg = match r.u8()? {
            1 => MeToMe::Transfer {
                mr_enclave: MrEnclave(r.array()?),
                data: MigrationData::from_bytes(r.bytes()?)?,
            },
            2 => MeToMe::Delivered {
                mr_enclave: MrEnclave(r.array()?),
            },
            3 => MeToMe::Stored {
                mr_enclave: MrEnclave(r.array()?),
            },
            _ => return Err(SgxError::Decode),
        };
        r.finish()?;
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::state::COUNTER_SLOTS;

    fn data() -> MigrationData {
        let mut d = MigrationData {
            counters_active: [false; COUNTER_SLOTS],
            counter_values: [0; COUNTER_SLOTS],
            msk: [7; 16],
        };
        d.counters_active[1] = true;
        d.counter_values[1] = 99;
        d
    }

    #[test]
    fn lib_to_me_round_trip() {
        let msgs = [
            LibToMe::MigrateRequest {
                destination: MachineId(9),
                data: data(),
            },
            LibToMe::Done,
        ];
        for msg in msgs {
            assert_eq!(LibToMe::from_bytes(&msg.to_bytes()).unwrap(), msg);
        }
    }

    #[test]
    fn me_to_lib_round_trip() {
        let msgs = [
            MeToLib::IncomingMigration { data: data() },
            MeToLib::MigrationComplete,
        ];
        for msg in msgs {
            assert_eq!(MeToLib::from_bytes(&msg.to_bytes()).unwrap(), msg);
        }
    }

    #[test]
    fn me_to_me_round_trip() {
        let msgs = [
            MeToMe::Transfer {
                mr_enclave: MrEnclave([5; 32]),
                data: data(),
            },
            MeToMe::Delivered {
                mr_enclave: MrEnclave([5; 32]),
            },
            MeToMe::Stored {
                mr_enclave: MrEnclave([6; 32]),
            },
        ];
        for msg in msgs {
            assert_eq!(MeToMe::from_bytes(&msg.to_bytes()).unwrap(), msg);
        }
    }

    #[test]
    fn unknown_tags_rejected() {
        assert!(LibToMe::from_bytes(&[9]).is_err());
        assert!(MeToLib::from_bytes(&[9]).is_err());
        assert!(MeToMe::from_bytes(&[9]).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = LibToMe::Done.to_bytes();
        bytes.push(0);
        assert!(LibToMe::from_bytes(&bytes).is_err());
    }
}
