//! Protocol messages exchanged over the attested secure channels.
//!
//! Two message families exist, mirroring Fig. 2 of the paper:
//!
//! * [`LibToMe`] / [`MeToLib`] — between a Migration Library and its local
//!   Migration Enclave, inside the local-attestation channel;
//! * [`MeToMe`] — between the source and destination Migration Enclaves,
//!   inside the remote-attestation channel.
//!
//! All of these travel *encrypted*; the enum encodings here are the
//! channel plaintexts.
//!
//! Beyond the paper's single-shot `Transfer`, the ME↔ME family carries
//! the streaming state-transfer protocol of [`crate::transfer`]:
//! [`MeToMe::ChunkStart`] announces a full chunked transfer (geometry,
//! whole-payload digest, generation number, and the Table I control
//! data), [`MeToMe::DeltaStart`] announces a dirty-page *delta* stream
//! (chunk geometry plus the [`DeltaManifest`] naming the base generation
//! and changed pages), [`MeToMe::Chunk`] carries one HMAC-chained chunk,
//! [`MeToMe::ChunkAck`] cumulatively acknowledges received chunks
//! (driving the source's send window), [`MeToMe::ResumeRequest`] /
//! [`MeToMe::Resume`] renegotiate the resume point after a crash, and
//! [`MeToMe::DeltaNack`] tells a source whose delta base the destination
//! does not hold to fall back to a full stream.
//!
//! **Per-nonce multiplexing and wire cells.** Several chunk streams to
//! the same destination interleave on one attested channel, each frame
//! tagged by its [`TransferNonce`]; the channel's per-session sequence
//! numbers keep the *interleaving itself* tamper-evident, and the
//! per-nonce HMAC chain rejects any cross-stream splice below it. The
//! simulated network delivers smaller ciphertexts earlier, so every
//! source→destination stream frame (`ChunkStart` / `DeltaStart` /
//! `Chunk`) is padded to the destination link's current *wire cell* —
//! frames of equal length stay FIFO — and the small
//! destination→source control frames (`Delivered` / `Stored` /
//! `ChunkAck` / `Resume` / `DeltaNack`) are padded to one uniform
//! [`CTRL_FRAME_LEN`] for the same reason.

use crate::library::state::MigrationData;
use crate::transfer::chunker::{ChunkMac, TransferNonce};
use crate::transfer::delta::DeltaManifest;

/// Zero padding appended to `ResumeRequest` so its ciphertext is larger
/// than any `RA_FINISH` frame (see encode comment).
const RESUME_REQUEST_PAD: usize = 4096;

use crate::me::wire::CTRL_FRAME_LEN;
use sgx_sim::machine::MachineId;
use sgx_sim::measurement::MrEnclave;
use sgx_sim::wire::{WireReader, WireWriter};
use sgx_sim::SgxError;

/// Library → Migration Enclave (local channel).
// MigrationData carries the Table I fixed arrays inline (1.3 KiB); the
// messages are built once and immediately serialized, so boxing would
// only complicate the codec.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LibToMe {
    /// Start an outgoing migration: transfer `data` (and the staged bulk
    /// `state`, possibly empty) to `destination` (the `migrate` message
    /// of Fig. 2).
    MigrateRequest {
        /// The machine the enclave should migrate to.
        destination: MachineId,
        /// The Table I payload.
        data: MigrationData,
        /// The staged bulk state (migratable-sealed app payload); may be
        /// empty.
        state: Vec<u8>,
    },
    /// Confirmation that incoming migration data was installed
    /// (the `DONE` message of Fig. 2).
    Done,
}

impl LibToMe {
    /// Serializes the message (channel plaintext).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        match self {
            LibToMe::MigrateRequest {
                destination,
                data,
                state,
            } => {
                w.u8(1);
                w.u64(destination.0);
                w.bytes(&data.to_bytes());
                w.bytes(state);
            }
            LibToMe::Done => {
                w.u8(2);
            }
        }
        w.finish()
    }

    /// Parses a message.
    ///
    /// # Errors
    ///
    /// [`SgxError::Decode`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SgxError> {
        let mut r = WireReader::new(bytes);
        let msg = match r.u8()? {
            1 => LibToMe::MigrateRequest {
                destination: MachineId(r.u64()?),
                data: MigrationData::from_bytes(r.bytes()?)?,
                state: r.bytes_vec()?,
            },
            2 => LibToMe::Done,
            _ => return Err(SgxError::Decode),
        };
        r.finish()?;
        Ok(msg)
    }
}

/// Migration Enclave → Library (local channel).
// MigrationData carries the Table I fixed arrays inline (1.3 KiB); the
// messages are built once and immediately serialized, so boxing would
// only complicate the codec.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MeToLib {
    /// Deliver incoming migration data (the `restore data` of Fig. 2).
    IncomingMigration {
        /// The Table I payload from the source enclave.
        data: MigrationData,
        /// The bulk state that accompanied it (possibly empty).
        state: Vec<u8>,
    },
    /// The outgoing migration completed; the destination confirmed.
    MigrationComplete,
}

impl MeToLib {
    /// Serializes a [`MeToLib::IncomingMigration`] directly from a
    /// borrowed state slice (zero-copy forwarding of multi-megabyte bulk
    /// state out of the ME's retained `Arc`). Byte-identical to encoding
    /// the enum variant.
    #[must_use]
    pub fn encode_incoming_migration(data: &MigrationData, state: &[u8]) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.u8(1);
        w.bytes(&data.to_bytes());
        w.bytes(state);
        w.finish()
    }

    /// Serializes the message (channel plaintext).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        match self {
            MeToLib::IncomingMigration { data, state } => {
                w.u8(1);
                w.bytes(&data.to_bytes());
                w.bytes(state);
            }
            MeToLib::MigrationComplete => {
                w.u8(2);
            }
        }
        w.finish()
    }

    /// Parses a message.
    ///
    /// # Errors
    ///
    /// [`SgxError::Decode`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SgxError> {
        let mut r = WireReader::new(bytes);
        let msg = match r.u8()? {
            1 => MeToLib::IncomingMigration {
                data: MigrationData::from_bytes(r.bytes()?)?,
                state: r.bytes_vec()?,
            },
            2 => MeToLib::MigrationComplete,
            _ => return Err(SgxError::Decode),
        };
        r.finish()?;
        Ok(msg)
    }
}

/// Migration Enclave ↔ Migration Enclave (remote channel).
// MigrationData carries the Table I fixed arrays inline (1.3 KiB); the
// messages are built once and immediately serialized, so boxing would
// only complicate the codec.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MeToMe {
    /// Source → destination: the migrating enclave's identity and payload
    /// — the single-shot fast path for small state.
    /// (§VI-A: "the MRENCLAVE value is appended to the migration data of
    /// the enclave before sending it to the destination".)
    Transfer {
        /// MRENCLAVE of the migrating enclave.
        mr_enclave: MrEnclave,
        /// The Table I payload.
        data: MigrationData,
        /// Accompanying bulk state (possibly empty).
        state: Vec<u8>,
    },
    /// Destination → source: the named enclave's data was delivered to a
    /// matching local enclave and confirmed (`DONE` propagated).
    Delivered {
        /// MRENCLAVE of the migrated enclave.
        mr_enclave: MrEnclave,
    },
    /// Destination → source: data accepted and stored; delivery pending
    /// until a matching enclave attests.
    Stored {
        /// MRENCLAVE of the migrating enclave.
        mr_enclave: MrEnclave,
    },
    /// Source → destination: announces a chunked full-state transfer.
    ChunkStart {
        /// MRENCLAVE of the migrating enclave.
        mr_enclave: MrEnclave,
        /// Per-transfer nonce (keys the chunk HMAC chain).
        nonce: TransferNonce,
        /// State generation this stream installs (the delta base for a
        /// later repeat migration).
        generation: u64,
        /// Total bulk-state length in bytes.
        total_len: u64,
        /// Chunk size used by the sender.
        chunk_size: u32,
        /// SHA-256 digest of the whole bulk state.
        state_digest: [u8; 32],
        /// The Table I control payload (travels with the announcement).
        data: MigrationData,
    },
    /// Source → destination: announces a chunked dirty-page **delta**
    /// stream. The chunked payload is the packed dirty pages described by
    /// `manifest`; the destination applies them onto its retained copy of
    /// `manifest.base_generation` and verifies `manifest.new_digest`.
    DeltaStart {
        /// MRENCLAVE of the migrating enclave.
        mr_enclave: MrEnclave,
        /// Per-transfer nonce (keys the chunk HMAC chain).
        nonce: TransferNonce,
        /// Chunk size used by the sender.
        chunk_size: u32,
        /// SHA-256 digest of the packed delta payload (what the chunk
        /// assembler checks on completion).
        payload_digest: [u8; 32],
        /// Which pages changed, against which base generation.
        manifest: DeltaManifest,
        /// The Table I control payload (travels with the announcement).
        data: MigrationData,
    },
    /// Destination → source: the delta base named by a `DeltaStart` is
    /// not held here — restart the transfer as a full stream.
    DeltaNack {
        /// MRENCLAVE of the migrating enclave.
        mr_enclave: MrEnclave,
        /// The rejected delta transfer.
        nonce: TransferNonce,
    },
    /// Source → destination: one chunk of the announced transfer.
    Chunk {
        /// The transfer this chunk belongs to.
        nonce: TransferNonce,
        /// Chunk index (strictly in-order delivery).
        idx: u32,
        /// Chunk payload (exactly `chunk_size` bytes except the final
        /// chunk).
        payload: Vec<u8>,
        /// HMAC-chain MAC binding the chunk to its transfer and position.
        mac: ChunkMac,
        /// Zero-padding length equalizing the wire size of all chunks of
        /// a transfer (keeps equal-size ciphertexts FIFO on the network).
        pad: u32,
    },
    /// Destination → source: cumulative acknowledgement — every chunk
    /// with `idx < upto` has been verified and stored.
    ChunkAck {
        /// The transfer being acknowledged.
        nonce: TransferNonce,
        /// One past the highest in-order verified chunk index.
        upto: u32,
    },
    /// Source → destination (after a crash/reconnect): where should the
    /// stream identified by `nonce` resume?
    ResumeRequest {
        /// MRENCLAVE of the migrating enclave.
        mr_enclave: MrEnclave,
        /// The interrupted transfer.
        nonce: TransferNonce,
    },
    /// Destination → source: resume the stream from `from_idx`
    /// (`0` restarts the stream, including a fresh `ChunkStart`).
    Resume {
        /// The transfer to resume.
        nonce: TransferNonce,
        /// First chunk index the destination still needs.
        from_idx: u32,
    },
}

impl MeToMe {
    /// Serializes a [`MeToMe::Chunk`] directly from a borrowed payload
    /// slice — the streaming hot path, avoiding the intermediate
    /// per-chunk `Vec` a message-struct round trip would allocate. The
    /// output is byte-identical to encoding the enum variant.
    #[must_use]
    pub fn encode_chunk(
        nonce: &TransferNonce,
        idx: u32,
        payload: &[u8],
        mac: &ChunkMac,
        pad: u32,
    ) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.u8(5);
        w.array(nonce);
        w.u32(idx);
        w.bytes(payload);
        w.array(mac);
        w.bytes(&vec![0u8; pad as usize]);
        w.finish()
    }

    /// Pads a control frame up to [`CTRL_FRAME_LEN`] plaintext bytes.
    fn ctrl_pad(w: &mut WireWriter) {
        let pad = CTRL_FRAME_LEN.saturating_sub(w.len() + 4);
        w.bytes(&vec![0u8; pad]);
    }

    /// Serializes the message (channel plaintext).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        match self {
            MeToMe::Transfer {
                mr_enclave,
                data,
                state,
            } => {
                w.u8(1);
                w.array(&mr_enclave.0);
                w.bytes(&data.to_bytes());
                w.bytes(state);
            }
            MeToMe::Delivered { mr_enclave } => {
                w.u8(2);
                w.array(&mr_enclave.0);
                Self::ctrl_pad(&mut w);
            }
            MeToMe::Stored { mr_enclave } => {
                w.u8(3);
                w.array(&mr_enclave.0);
                Self::ctrl_pad(&mut w);
            }
            MeToMe::ChunkStart {
                mr_enclave,
                nonce,
                generation,
                total_len,
                chunk_size,
                state_digest,
                data,
            } => {
                w.u8(4);
                w.array(&mr_enclave.0);
                w.array(nonce);
                w.u64(*generation);
                w.u64(*total_len);
                w.u32(*chunk_size);
                w.array(state_digest);
                w.bytes(&data.to_bytes());
                // Empty pad field; [`crate::me::wire::pad_frame`] grows it to the
                // destination's wire cell before sealing.
                w.bytes(&[]);
            }
            MeToMe::Chunk {
                nonce,
                idx,
                payload,
                mac,
                pad,
            } => {
                return Self::encode_chunk(nonce, *idx, payload, mac, *pad);
            }
            MeToMe::DeltaStart {
                mr_enclave,
                nonce,
                chunk_size,
                payload_digest,
                manifest,
                data,
            } => {
                w.u8(9);
                w.array(&mr_enclave.0);
                w.array(nonce);
                w.u32(*chunk_size);
                w.array(payload_digest);
                w.bytes(&manifest.to_bytes());
                w.bytes(&data.to_bytes());
                // Empty pad field; grown to the wire cell before sealing.
                w.bytes(&[]);
            }
            MeToMe::DeltaNack { mr_enclave, nonce } => {
                w.u8(10);
                w.array(&mr_enclave.0);
                w.array(nonce);
                Self::ctrl_pad(&mut w);
            }
            MeToMe::ChunkAck { nonce, upto } => {
                w.u8(6);
                w.array(nonce);
                w.u32(*upto);
                Self::ctrl_pad(&mut w);
            }
            MeToMe::ResumeRequest { mr_enclave, nonce } => {
                w.u8(7);
                w.array(&mr_enclave.0);
                w.array(nonce);
                // Padded above the RA_FINISH frame size: the first
                // post-handshake data frame must not overtake the
                // handshake finish on the size-ordered simulated network
                // (smaller messages arrive earlier within one step).
                w.bytes(&[0u8; RESUME_REQUEST_PAD]);
            }
            MeToMe::Resume { nonce, from_idx } => {
                w.u8(8);
                w.array(nonce);
                w.u32(*from_idx);
                Self::ctrl_pad(&mut w);
            }
        }
        w.finish()
    }

    /// Parses a message.
    ///
    /// # Errors
    ///
    /// [`SgxError::Decode`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SgxError> {
        let mut r = WireReader::new(bytes);
        let msg = match r.u8()? {
            1 => MeToMe::Transfer {
                mr_enclave: MrEnclave(r.array()?),
                data: MigrationData::from_bytes(r.bytes()?)?,
                state: r.bytes_vec()?,
            },
            2 => {
                let msg = MeToMe::Delivered {
                    mr_enclave: MrEnclave(r.array()?),
                };
                let _pad = r.bytes()?;
                msg
            }
            3 => {
                let msg = MeToMe::Stored {
                    mr_enclave: MrEnclave(r.array()?),
                };
                let _pad = r.bytes()?;
                msg
            }
            4 => {
                let msg = MeToMe::ChunkStart {
                    mr_enclave: MrEnclave(r.array()?),
                    nonce: r.array()?,
                    generation: r.u64()?,
                    total_len: r.u64()?,
                    chunk_size: r.u32()?,
                    state_digest: r.array()?,
                    data: MigrationData::from_bytes(r.bytes()?)?,
                };
                let _pad = r.bytes()?;
                msg
            }
            5 => MeToMe::Chunk {
                nonce: r.array()?,
                idx: r.u32()?,
                payload: r.bytes_vec()?,
                mac: r.array()?,
                pad: u32::try_from(r.bytes()?.len()).map_err(|_| SgxError::Decode)?,
            },
            6 => {
                let msg = MeToMe::ChunkAck {
                    nonce: r.array()?,
                    upto: r.u32()?,
                };
                let _pad = r.bytes()?;
                msg
            }
            7 => {
                let msg = MeToMe::ResumeRequest {
                    mr_enclave: MrEnclave(r.array()?),
                    nonce: r.array()?,
                };
                let _pad = r.bytes()?;
                msg
            }
            8 => {
                let msg = MeToMe::Resume {
                    nonce: r.array()?,
                    from_idx: r.u32()?,
                };
                let _pad = r.bytes()?;
                msg
            }
            9 => {
                let msg = MeToMe::DeltaStart {
                    mr_enclave: MrEnclave(r.array()?),
                    nonce: r.array()?,
                    chunk_size: r.u32()?,
                    payload_digest: r.array()?,
                    manifest: DeltaManifest::from_bytes(r.bytes()?)?,
                    data: MigrationData::from_bytes(r.bytes()?)?,
                };
                let _pad = r.bytes()?;
                msg
            }
            10 => {
                let msg = MeToMe::DeltaNack {
                    mr_enclave: MrEnclave(r.array()?),
                    nonce: r.array()?,
                };
                let _pad = r.bytes()?;
                msg
            }
            _ => return Err(SgxError::Decode),
        };
        r.finish()?;
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::state::COUNTER_SLOTS;

    fn data() -> MigrationData {
        let mut d = MigrationData {
            counters_active: [false; COUNTER_SLOTS],
            counter_values: [0; COUNTER_SLOTS],
            msk: [7; 16],
        };
        d.counters_active[1] = true;
        d.counter_values[1] = 99;
        d
    }

    #[test]
    fn lib_to_me_round_trip() {
        let msgs = [
            LibToMe::MigrateRequest {
                destination: MachineId(9),
                data: data(),
                state: b"bulk".to_vec(),
            },
            LibToMe::MigrateRequest {
                destination: MachineId(9),
                data: data(),
                state: Vec::new(),
            },
            LibToMe::Done,
        ];
        for msg in msgs {
            assert_eq!(LibToMe::from_bytes(&msg.to_bytes()).unwrap(), msg);
        }
    }

    #[test]
    fn me_to_lib_round_trip() {
        let msgs = [
            MeToLib::IncomingMigration {
                data: data(),
                state: b"bulk".to_vec(),
            },
            MeToLib::MigrationComplete,
        ];
        for msg in msgs {
            assert_eq!(MeToLib::from_bytes(&msg.to_bytes()).unwrap(), msg);
        }
    }

    #[test]
    fn me_to_me_round_trip() {
        let msgs = [
            MeToMe::Transfer {
                mr_enclave: MrEnclave([5; 32]),
                data: data(),
                state: b"sealed state".to_vec(),
            },
            MeToMe::Delivered {
                mr_enclave: MrEnclave([5; 32]),
            },
            MeToMe::Stored {
                mr_enclave: MrEnclave([6; 32]),
            },
            MeToMe::ChunkStart {
                mr_enclave: MrEnclave([5; 32]),
                nonce: [8; 16],
                generation: 3,
                total_len: 1_000_000,
                chunk_size: 4096,
                state_digest: [9; 32],
                data: data(),
            },
            MeToMe::DeltaStart {
                mr_enclave: MrEnclave([5; 32]),
                nonce: [8; 16],
                chunk_size: 4096,
                payload_digest: [7; 32],
                manifest: crate::transfer::delta::DeltaManifest {
                    base_generation: 3,
                    new_generation: 4,
                    page_size: 4096,
                    base_len: 1_000_000,
                    new_len: 1_000_000,
                    base_digest: [5; 32],
                    new_digest: [6; 32],
                    dirty: vec![0, 5, 9],
                },
                data: data(),
            },
            MeToMe::DeltaNack {
                mr_enclave: MrEnclave([5; 32]),
                nonce: [8; 16],
            },
            MeToMe::Chunk {
                nonce: [8; 16],
                idx: 7,
                payload: vec![1, 2, 3],
                mac: [4; 32],
                pad: 5,
            },
            MeToMe::ChunkAck {
                nonce: [8; 16],
                upto: 8,
            },
            MeToMe::ResumeRequest {
                mr_enclave: MrEnclave([5; 32]),
                nonce: [8; 16],
            },
            MeToMe::Resume {
                nonce: [8; 16],
                from_idx: 3,
            },
        ];
        for msg in msgs {
            assert_eq!(MeToMe::from_bytes(&msg.to_bytes()).unwrap(), msg);
        }
    }

    #[test]
    fn chunk_padding_equalizes_wire_size() {
        // A full chunk with no padding and a short final chunk padded up
        // must serialize to the same number of bytes.
        let full = MeToMe::Chunk {
            nonce: [1; 16],
            idx: 0,
            payload: vec![7; 100],
            mac: [2; 32],
            pad: 0,
        };
        let tail = MeToMe::Chunk {
            nonce: [1; 16],
            idx: 1,
            payload: vec![7; 33],
            mac: [2; 32],
            pad: 67,
        };
        assert_eq!(full.to_bytes().len(), tail.to_bytes().len());
    }

    #[test]
    fn borrowed_encoders_match_variant_encoding() {
        let chunk = MeToMe::Chunk {
            nonce: [1; 16],
            idx: 3,
            payload: vec![9; 50],
            mac: [2; 32],
            pad: 14,
        };
        assert_eq!(
            chunk.to_bytes(),
            MeToMe::encode_chunk(&[1; 16], 3, &[9; 50], &[2; 32], 14)
        );
        let incoming = MeToLib::IncomingMigration {
            data: data(),
            state: b"bulk".to_vec(),
        };
        assert_eq!(
            incoming.to_bytes(),
            MeToLib::encode_incoming_migration(&data(), b"bulk")
        );
    }

    #[test]
    fn control_frames_share_one_wire_size() {
        // All destination→source control frames must seal to the same
        // ciphertext length; an interleaved multi-stream ack sequence
        // would otherwise reorder on the size-ordered network.
        let frames = [
            MeToMe::Delivered {
                mr_enclave: MrEnclave([5; 32]),
            }
            .to_bytes(),
            MeToMe::Stored {
                mr_enclave: MrEnclave([6; 32]),
            }
            .to_bytes(),
            MeToMe::ChunkAck {
                nonce: [8; 16],
                upto: 8,
            }
            .to_bytes(),
            MeToMe::Resume {
                nonce: [8; 16],
                from_idx: 3,
            }
            .to_bytes(),
            MeToMe::DeltaNack {
                mr_enclave: MrEnclave([5; 32]),
                nonce: [8; 16],
            }
            .to_bytes(),
        ];
        for frame in &frames {
            assert_eq!(frame.len(), CTRL_FRAME_LEN, "control frames are uniform");
        }
    }

    #[test]
    fn unknown_tags_rejected() {
        assert!(LibToMe::from_bytes(&[9]).is_err());
        assert!(MeToLib::from_bytes(&[9]).is_err());
        assert!(MeToMe::from_bytes(&[9]).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = LibToMe::Done.to_bytes();
        bytes.push(0);
        assert!(LibToMe::from_bytes(&bytes).is_err());
    }
}
