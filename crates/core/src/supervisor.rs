//! Migration supervision: deadlines, stall detection, bounded
//! exponential backoff, and graceful degradation.
//!
//! The protocol layers below ([`crate::me`], [`crate::transfer`]) make a
//! single migration *resumable*; this module makes a fleet of them
//! *convergent* under injected faults. A [`MigrationSupervisor`] drives
//! a set of `(source, destination)` pairs to one of exactly two ends:
//!
//! * **Released** — the destination became [`AppStatus::Ready`] holding
//!   the transferred state (the protocol's digest checks guarantee it is
//!   bit-identical), exactly once; or
//! * **Aborted** — the retry budget or deadline lapsed, and the
//!   migration was torn down with the **source still authoritative**:
//!   retained migration data intact in the source ME, a durable
//!   checkpoint on the source disk, and the destination's staged state
//!   discarded (never half-released).
//!
//! All timing — deadlines, backoff waits, stall detection — runs on
//! virtual [`SimTime`], so supervised chaos runs stay deterministic.
//! Machine-level faults (ME crashes, scheduled ECALL aborts) reach the
//! supervisor through a caller-supplied poll callback returning
//! [`HostFault`]s; the supervisor applies them through the datacenter's
//! ordinary recovery surfaces ([`Datacenter::restart_me`]) so chaos
//! exercises exactly the paths operators would use. Every recovery
//! action is recorded as a trace edge ([`Edge::Backoff`], [`Edge::Abort`],
//! [`Edge::Fault`]) on the affected source→destination channel, so the
//! exported trace accounts for the full fault/recovery history.

use crate::datacenter::Datacenter;
use crate::host::AppStatus;
use crate::transfer::TransferConfig;
use cloud_sim::clock::SimTime;
use mig_trace::Edge;
use sgx_sim::machine::MachineId;
use sgx_sim::measurement::MrEnclave;
use std::time::Duration;

/// Cap on the backoff exponent: attempt *n* waits
/// `backoff_base * 2^min(n-1, BACKOFF_EXP_CAP)` of virtual time.
pub const BACKOFF_EXP_CAP: u32 = 10;

/// World-pump batch between host-fault polls. Small enough that a
/// scheduled crash lands within a bounded number of deliveries of its
/// instant, large enough to keep poll overhead negligible.
const STEP_BATCH: usize = 64;

/// Supervision knobs, normally taken from the fleet's
/// [`TransferConfig`] (see [`TransferConfig::deadline`],
/// [`TransferConfig::retry_budget`], [`TransferConfig::backoff_base`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Virtual-time budget for one supervised migration; past it the
    /// migration aborts with the source authoritative.
    pub deadline: Duration,
    /// Recovery attempts per migration before giving up. Zero means a
    /// single attempt with no recovery.
    pub retry_budget: u32,
    /// Base of the bounded exponential backoff between recovery
    /// attempts.
    pub backoff_base: Duration,
}

impl From<&TransferConfig> for SupervisorConfig {
    fn from(config: &TransferConfig) -> Self {
        SupervisorConfig {
            deadline: config.deadline,
            retry_budget: config.retry_budget,
            backoff_base: config.backoff_base,
        }
    }
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig::from(&TransferConfig::default())
    }
}

/// Why a supervised migration gave up.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AbortReason {
    /// The virtual-time deadline lapsed.
    DeadlineExceeded,
    /// Every recovery attempt in the budget was spent, with at least
    /// some forward progress observed along the way.
    RetryBudgetExhausted,
    /// The budget was spent and the transfer fingerprint never advanced
    /// across any attempt — the peer is treated as dead.
    DeadPeer,
}

/// Terminal state of one supervised migration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MigrationOutcome {
    /// The destination released the state exactly once.
    Released {
        /// Virtual time from supervision start to release.
        elapsed: Duration,
        /// Recovery attempts that were needed.
        retries: u32,
    },
    /// The migration was torn down, source still authoritative.
    Aborted {
        /// Why the supervisor gave up.
        reason: AbortReason,
        /// Recovery attempts that were spent.
        retries: u32,
    },
}

impl MigrationOutcome {
    /// Whether this outcome is a release.
    #[must_use]
    pub fn is_released(&self) -> bool {
        matches!(self, MigrationOutcome::Released { .. })
    }

    /// Recovery attempts spent on this migration.
    #[must_use]
    pub fn retries(&self) -> u32 {
        match self {
            MigrationOutcome::Released { retries, .. }
            | MigrationOutcome::Aborted { retries, .. } => *retries,
        }
    }
}

/// A machine-level fault the supervisor must apply through the
/// datacenter's recovery surfaces. Produced by a chaos layer's poll
/// callback; this crate deliberately does not depend on the chaos crate
/// (the dependency points the other way).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HostFault {
    /// Crash and restart the Migration Enclave on this machine.
    CrashMe(MachineId),
    /// Abort the next ECALL on this machine (AEX-style).
    EcallAbort(MachineId),
}

/// Per-pair bookkeeping while a supervised run is in flight.
struct Supervised {
    src: String,
    dst: String,
    src_machine: MachineId,
    dst_machine: MachineId,
    mr: MrEnclave,
    retries: u32,
    /// Last observed `(acked, total)` fingerprint of the stream.
    fingerprint: Option<(u32, u32)>,
    /// Whether any recovery attempt ever observed forward progress.
    progressed: bool,
    outcome: Option<MigrationOutcome>,
}

/// Drives a set of migrations to convergence under faults.
#[derive(Clone, Copy, Debug, Default)]
pub struct MigrationSupervisor {
    config: SupervisorConfig,
}

impl MigrationSupervisor {
    /// A supervisor with explicit knobs.
    #[must_use]
    pub fn new(config: SupervisorConfig) -> Self {
        MigrationSupervisor { config }
    }

    /// Supervises the migrations `pairs` (source instance, destination
    /// instance) to completion. All pairs are started concurrently and
    /// multiplex on the shared ME channels. `poll` is invoked between
    /// world-pump batches and whenever the world goes idle; the
    /// [`HostFault`]s it returns are applied through
    /// [`Datacenter::restart_me`] and the scheduled-ECALL-abort hook.
    ///
    /// Returns one [`MigrationOutcome`] per pair, in `pairs` order.
    pub fn run(
        &self,
        dc: &mut Datacenter,
        pairs: &[(&str, &str)],
        mut poll: impl FnMut(&mut Datacenter) -> Vec<HostFault>,
    ) -> Vec<MigrationOutcome> {
        let started = dc.world().now();
        let deadline_at = started.after(self.config.deadline);

        let mut supervised: Vec<Supervised> = pairs
            .iter()
            .map(|(src, dst)| Supervised {
                src: (*src).to_string(),
                dst: (*dst).to_string(),
                src_machine: dc.app_machine(src),
                dst_machine: dc.app_machine(dst),
                mr: dc.app(src).lock().enclave().identity().mr_enclave,
                retries: 0,
                fingerprint: None,
                progressed: false,
                outcome: None,
            })
            .collect();

        // Kick off every migration; a start failure is just the first
        // failed attempt — the recovery loop below owns it.
        for pair in &mut supervised {
            let dst_machine = pair.dst_machine;
            let app = dc.app(&pair.src);
            let result = app
                .lock()
                .migrate_to(dc.world_mut().network_mut(), dst_machine);
            drop(app);
            if result.is_err() {
                Self::record_edge(dc, pair, Edge::Fault);
            }
        }

        loop {
            self.pump(dc, &supervised, &mut poll);
            let now = dc.world().now();

            // Settle every pair we can.
            for pair in &mut supervised {
                if pair.outcome.is_none() && Self::is_released(dc, pair) {
                    pair.outcome = Some(MigrationOutcome::Released {
                        elapsed: now.since(started),
                        retries: pair.retries,
                    });
                }
            }
            if supervised.iter().all(|p| p.outcome.is_some()) {
                break;
            }

            // The world is idle and at least one pair is unfinished:
            // recovery (or abort) time.
            for pair in &mut supervised {
                if pair.outcome.is_some() {
                    continue;
                }
                if now >= deadline_at {
                    self.abort(dc, pair, AbortReason::DeadlineExceeded, started);
                    continue;
                }
                pair.retries += 1;
                Self::note_progress(dc, pair);
                if pair.retries > self.config.retry_budget {
                    let reason = if pair.progressed {
                        AbortReason::RetryBudgetExhausted
                    } else {
                        AbortReason::DeadPeer
                    };
                    self.abort(dc, pair, reason, started);
                    continue;
                }
                self.recover(dc, pair);
            }
        }

        supervised
            .into_iter()
            .map(|p| p.outcome.expect("every pair settled"))
            .collect()
    }

    /// Pumps the world dry, interleaving host-fault polls so scheduled
    /// crashes land between deliveries. Returns once the world is idle
    /// *and* a final poll produced no new faults.
    fn pump(
        &self,
        dc: &mut Datacenter,
        supervised: &[Supervised],
        poll: &mut impl FnMut(&mut Datacenter) -> Vec<HostFault>,
    ) {
        loop {
            let faults = poll(dc);
            let had_faults = !faults.is_empty();
            for fault in faults {
                Self::apply_host_fault(dc, supervised, fault);
            }
            let mut stepped = false;
            for _ in 0..STEP_BATCH {
                if !dc.world_mut().step() {
                    break;
                }
                stepped = true;
            }
            if !stepped && !had_faults {
                return;
            }
        }
    }

    /// Applies one machine-level fault through ordinary recovery
    /// surfaces, recording an [`Edge::Fault`] on every supervised
    /// channel touching the machine.
    fn apply_host_fault(dc: &mut Datacenter, supervised: &[Supervised], fault: HostFault) {
        let machine = match fault {
            HostFault::CrashMe(m) | HostFault::EcallAbort(m) => m,
        };
        for pair in supervised {
            if pair.outcome.is_none()
                && (pair.src_machine == machine || pair.dst_machine == machine)
            {
                Self::record_edge(dc, pair, Edge::Fault);
            }
        }
        match fault {
            HostFault::CrashMe(m) => {
                // A restart can itself hit an injected fault (e.g. a
                // scheduled ECALL abort landing on the fresh ME's
                // keygen); injected faults are consumed once, so one
                // more attempt brings the ME back. The recovery loop
                // re-attests afterwards.
                if dc.restart_me(m).is_err() {
                    let _ = dc.restart_me(m);
                }
            }
            HostFault::EcallAbort(m) => {
                let sgx = &dc.world_mut().machine(m).sgx;
                let next = sgx.ecall_count();
                sgx.schedule_ecall_abort(next);
            }
        }
    }

    /// One recovery attempt: bounded-exponential backoff (consuming
    /// virtual time), re-attest both endpoints, re-dispatch the retained
    /// transfer.
    fn recover(&self, dc: &mut Datacenter, pair: &mut Supervised) {
        Self::record_edge(dc, pair, Edge::Backoff);
        let exp = (pair.retries - 1).min(BACKOFF_EXP_CAP);
        let wait = self.config.backoff_base * 2u32.pow(exp);
        dc.world_mut().network_mut().consume(wait);

        // Both endpoints may have lost their attested ME sessions to a
        // crash; re-attesting is harmless when the session is intact.
        // Re-attesting the destination also re-triggers delivery of any
        // parked incoming data (the LA-completion forward path).
        for instance in [pair.src.clone(), pair.dst.clone()] {
            let app = dc.app(&instance);
            app.lock().attest_me(dc.world_mut().network_mut());
        }
        dc.world_mut().run_until_idle();

        let me = dc.me_host(pair.src_machine);
        let result = {
            let mut me = me.lock();
            let (mr, dst) = (pair.mr, pair.dst_machine);
            me.retry_migration(dc.world_mut().network_mut(), mr, dst)
        };
        if result.is_err() {
            // The retry ECALL itself failed (ME mid-restart, injected
            // ECALL abort): the attempt is spent, the next loop
            // iteration backs off further.
            Self::record_edge(dc, pair, Edge::Fault);
        }
    }

    /// Tears a migration down with the source left authoritative:
    /// discard the destination's staged state, checkpoint the source
    /// ME's retained data durably, record the abort edge.
    fn abort(
        &self,
        dc: &mut Datacenter,
        pair: &mut Supervised,
        reason: AbortReason,
        started: SimTime,
    ) {
        // The release may have landed between the last pump and now.
        if Self::is_released(dc, pair) {
            pair.outcome = Some(MigrationOutcome::Released {
                elapsed: dc.world().now().since(started),
                retries: pair.retries,
            });
            return;
        }
        // Destination side: drop staged state. A refusal means the data
        // already reached the destination library — then the pair is
        // released, not aborted (checked above and again below after the
        // world settles).
        let me = dc.me_host(pair.dst_machine);
        let _ = me.lock().abort_incoming(pair.mr);
        dc.world_mut().run_until_idle();
        if Self::is_released(dc, pair) {
            pair.outcome = Some(MigrationOutcome::Released {
                elapsed: dc.world().now().since(started),
                retries: pair.retries,
            });
            return;
        }
        // Source side: make the retained state durable. A failed write
        // (injected disk fault) keeps the previous checkpoint
        // generation authoritative, which is still a consistent abort.
        let _ = dc.persist_me(pair.src_machine);
        Self::record_edge(dc, pair, Edge::Abort);
        pair.outcome = Some(MigrationOutcome::Aborted {
            reason,
            retries: pair.retries,
        });
    }

    /// Whether the destination has released: it is the single place the
    /// transferred state becomes live, so destination `Ready` *is* the
    /// release event (the source may still await its DONE confirmation).
    fn is_released(dc: &Datacenter, pair: &Supervised) -> bool {
        dc.app(&pair.dst).lock().status() == AppStatus::Ready
    }

    /// Samples the stream fingerprint and flags forward progress.
    fn note_progress(dc: &mut Datacenter, pair: &mut Supervised) {
        let me = dc.me_host(pair.src_machine);
        let sample = me
            .lock()
            .stream_progress(pair.mr)
            .ok()
            .flatten()
            .map(|p| (p.acked, p.total_chunks));
        if sample.is_some() && pair.fingerprint.is_some() && sample != pair.fingerprint {
            pair.progressed = true;
        }
        if sample.is_some() {
            pair.fingerprint = sample;
        }
    }

    /// Records `edge` on the pair's source→destination channel trace in
    /// the **source** ME host (the side that stays authoritative and
    /// whose trace the fleet exporter reads first).
    fn record_edge(dc: &Datacenter, pair: &Supervised, edge: Edge) {
        let now = dc.world().now();
        dc.me_host(pair.src_machine).lock().record_channel_edge(
            pair.src_machine,
            pair.dst_machine,
            now,
            edge,
        );
    }
}
