//! A Teechan-style duplex payment channel enclave (paper §III-B, \[3\]).
//!
//! Two enclaves hold mirrored channel state (balances + sequence
//! numbers) and exchange *single-message* payments authenticated under a
//! channel key. Following the Teechan design quoted in the paper, each
//! enclave "persists its state to secondary storage, encrypted under a
//! key and stored with a non-replayable version number from the hardware
//! monotonic counter" — implemented here with the migratable primitives,
//! so a channel endpoint can migrate between machines.
//!
//! The §III-B fork attack against this workload — running two copies of
//! one endpoint with inconsistent state to double-spend — is reproduced
//! in the attack test-suite.

use mig_core::harness::{AppCtx, AppLogic};
use mig_crypto::hmac::HmacSha256;
use sgx_sim::wire::{WireReader, WireWriter};
use sgx_sim::SgxError;

/// ECALL opcodes of the payment-channel enclave.
pub mod ops {
    /// Open the channel: role, channel id, channel key, deposits.
    pub const SETUP: u32 = 1;
    /// Make a payment; returns the payment message for the peer.
    pub const PAY: u32 = 2;
    /// Receive a payment message from the peer.
    pub const RECEIVE: u32 = 3;
    /// Persist channel state; returns `(version, sealed blob)`.
    pub const PERSIST: u32 = 4;
    /// Restore channel state from a sealed blob (rollback-checked).
    pub const RESTORE: u32 = 5;
    /// Read `(my_balance, peer_balance)`.
    pub const BALANCES: u32 = 6;
    /// Produce a settlement message (final authenticated balances).
    pub const SETTLE: u32 = 7;
}

const SNAPSHOT_AAD: &[u8] = b"mig-apps.teechan.state.v1";
const PAYMENT_CONTEXT: &[u8] = b"mig-apps.teechan.payment.v1";
const SETTLEMENT_CONTEXT: &[u8] = b"mig-apps.teechan.settlement.v1";

/// Channel state held inside the enclave.
struct ChannelState {
    role: u8, // 0 or 1; MACs bind the sender role
    channel_id: [u8; 16],
    key: [u8; 16],
    my_balance: u64,
    peer_balance: u64,
    next_seq: u64,
    last_received_seq: u64,
}

/// A Teechan-style payment-channel endpoint.
#[derive(Default)]
pub struct TeechanNode {
    channel: Option<ChannelState>,
    version_counter: Option<u8>,
}

impl TeechanNode {
    /// Creates an endpoint with no open channel.
    #[must_use]
    pub fn new() -> Self {
        TeechanNode::default()
    }

    fn channel(&self) -> Result<&ChannelState, SgxError> {
        self.channel
            .as_ref()
            .ok_or_else(|| SgxError::Enclave("channel not open".into()))
    }

    fn channel_mut(&mut self) -> Result<&mut ChannelState, SgxError> {
        self.channel
            .as_mut()
            .ok_or_else(|| SgxError::Enclave("channel not open".into()))
    }

    fn state_bytes(&self, version: u32) -> Result<Vec<u8>, SgxError> {
        let ch = self.channel()?;
        let mut w = WireWriter::new();
        w.u8(self.version_counter.unwrap_or(0));
        w.u32(version);
        w.u8(ch.role);
        w.array(&ch.channel_id);
        w.array(&ch.key);
        w.u64(ch.my_balance);
        w.u64(ch.peer_balance);
        w.u64(ch.next_seq);
        w.u64(ch.last_received_seq);
        Ok(w.finish())
    }
}

/// A single-message payment (paper: "they can exchange funds in either
/// direction with a single message").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Payment {
    /// Channel this payment belongs to.
    pub channel_id: [u8; 16],
    /// Sender's role bit (prevents reflection).
    pub sender_role: u8,
    /// Sender-side sequence number (strictly increasing).
    pub seq: u64,
    /// Sender's balance after the payment.
    pub sender_balance: u64,
    /// Receiver's balance after the payment.
    pub receiver_balance: u64,
    /// MAC under the channel key.
    pub mac: [u8; 32],
}

impl Payment {
    fn mac_input(
        channel_id: &[u8; 16],
        sender_role: u8,
        seq: u64,
        sender_balance: u64,
        receiver_balance: u64,
    ) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.bytes(PAYMENT_CONTEXT);
        w.array(channel_id);
        w.u8(sender_role);
        w.u64(seq);
        w.u64(sender_balance);
        w.u64(receiver_balance);
        w.finish()
    }

    /// Serializes the payment.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.array(&self.channel_id);
        w.u8(self.sender_role);
        w.u64(self.seq);
        w.u64(self.sender_balance);
        w.u64(self.receiver_balance);
        w.array(&self.mac);
        w.finish()
    }

    /// Parses a payment.
    ///
    /// # Errors
    ///
    /// [`SgxError::Decode`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SgxError> {
        let mut r = WireReader::new(bytes);
        let payment = Payment {
            channel_id: r.array()?,
            sender_role: r.u8()?,
            seq: r.u64()?,
            sender_balance: r.u64()?,
            receiver_balance: r.u64()?,
            mac: r.array()?,
        };
        r.finish()?;
        Ok(payment)
    }
}

impl AppLogic for TeechanNode {
    fn handle(
        &mut self,
        ctx: &mut AppCtx<'_, '_>,
        opcode: u32,
        input: &[u8],
    ) -> Result<Vec<u8>, SgxError> {
        match opcode {
            ops::SETUP => {
                let mut r = WireReader::new(input);
                let role = r.u8()?;
                let channel_id: [u8; 16] = r.array()?;
                let key: [u8; 16] = r.array()?;
                let my_balance = r.u64()?;
                let peer_balance = r.u64()?;
                r.finish()?;
                if role > 1 {
                    return Err(SgxError::InvalidParameter("role"));
                }
                let (counter_id, _) = ctx.lib.create_migratable_counter(ctx.env)?;
                self.version_counter = Some(counter_id);
                self.channel = Some(ChannelState {
                    role,
                    channel_id,
                    key,
                    my_balance,
                    peer_balance,
                    next_seq: 1,
                    last_received_seq: 0,
                });
                Ok(vec![])
            }
            ops::PAY => {
                let mut r = WireReader::new(input);
                let amount = r.u64()?;
                r.finish()?;
                let ch = self.channel_mut()?;
                if amount > ch.my_balance {
                    return Err(SgxError::Enclave("insufficient channel balance".into()));
                }
                ch.my_balance -= amount;
                ch.peer_balance += amount;
                let seq = ch.next_seq;
                ch.next_seq += 1;
                let mac = HmacSha256::mac(
                    &ch.key,
                    &Payment::mac_input(
                        &ch.channel_id,
                        ch.role,
                        seq,
                        ch.my_balance,
                        ch.peer_balance,
                    ),
                );
                let payment = Payment {
                    channel_id: ch.channel_id,
                    sender_role: ch.role,
                    seq,
                    sender_balance: ch.my_balance,
                    receiver_balance: ch.peer_balance,
                    mac,
                };
                Ok(payment.to_bytes())
            }
            ops::RECEIVE => {
                let payment = Payment::from_bytes(input)?;
                let ch = self.channel_mut()?;
                if payment.channel_id != ch.channel_id {
                    return Err(SgxError::Enclave("wrong channel".into()));
                }
                if payment.sender_role == ch.role {
                    return Err(SgxError::Enclave("reflected payment".into()));
                }
                if payment.seq <= ch.last_received_seq {
                    return Err(SgxError::Enclave("stale payment sequence".into()));
                }
                let expected = HmacSha256::mac(
                    &ch.key,
                    &Payment::mac_input(
                        &payment.channel_id,
                        payment.sender_role,
                        payment.seq,
                        payment.sender_balance,
                        payment.receiver_balance,
                    ),
                );
                if !mig_crypto::ct::ct_eq(&expected, &payment.mac) {
                    return Err(SgxError::MacMismatch);
                }
                ch.my_balance = payment.receiver_balance;
                ch.peer_balance = payment.sender_balance;
                ch.last_received_seq = payment.seq;
                Ok(vec![])
            }
            ops::PERSIST => {
                let counter = self
                    .version_counter
                    .ok_or_else(|| SgxError::Enclave("channel not open".into()))?;
                let version = ctx.lib.increment_migratable_counter(ctx.env, counter)?;
                let state = self.state_bytes(version)?;
                let blob = ctx
                    .lib
                    .seal_migratable_data(ctx.env, SNAPSHOT_AAD, &state)?;
                let mut w = WireWriter::new();
                w.u32(version).bytes(&blob);
                Ok(w.finish())
            }
            ops::RESTORE => {
                let (plaintext, aad) = ctx.lib.unseal_migratable_data(ctx.env, input)?;
                if aad != SNAPSHOT_AAD {
                    return Err(SgxError::Decode);
                }
                let mut r = WireReader::new(&plaintext);
                let counter_id = r.u8()?;
                let version = r.u32()?;
                let role = r.u8()?;
                let channel_id: [u8; 16] = r.array()?;
                let key: [u8; 16] = r.array()?;
                let my_balance = r.u64()?;
                let peer_balance = r.u64()?;
                let next_seq = r.u64()?;
                let last_received_seq = r.u64()?;
                r.finish()?;

                // Roll-back protection: the version must match the counter.
                let current = ctx.lib.read_migratable_counter(ctx.env, counter_id)?;
                if version != current {
                    return Err(SgxError::Enclave(format!(
                        "rollback detected: state version {version} != counter {current}"
                    )));
                }
                self.version_counter = Some(counter_id);
                self.channel = Some(ChannelState {
                    role,
                    channel_id,
                    key,
                    my_balance,
                    peer_balance,
                    next_seq,
                    last_received_seq,
                });
                Ok(vec![])
            }
            ops::BALANCES => {
                let ch = self.channel()?;
                let mut w = WireWriter::new();
                w.u64(ch.my_balance).u64(ch.peer_balance);
                Ok(w.finish())
            }
            ops::SETTLE => {
                let ch = self.channel()?;
                let mut w = WireWriter::new();
                w.bytes(SETTLEMENT_CONTEXT);
                w.array(&ch.channel_id);
                w.u8(ch.role);
                w.u64(ch.my_balance);
                w.u64(ch.peer_balance);
                let body = w.finish();
                let mac = HmacSha256::mac(&ch.key, &body);
                let mut out = WireWriter::new();
                out.bytes(&body).array(&mac);
                Ok(out.finish())
            }
            _ => Err(SgxError::InvalidParameter("opcode")),
        }
    }

    fn export_state(&self) -> Vec<u8> {
        self.state_bytes(0).unwrap_or_default()
    }

    fn import_state(&mut self, bytes: &[u8]) -> Result<(), SgxError> {
        let mut r = WireReader::new(bytes);
        let counter_id = r.u8()?;
        let _version = r.u32()?;
        let role = r.u8()?;
        let channel_id: [u8; 16] = r.array()?;
        let key: [u8; 16] = r.array()?;
        let my_balance = r.u64()?;
        let peer_balance = r.u64()?;
        let next_seq = r.u64()?;
        let last_received_seq = r.u64()?;
        r.finish()?;
        self.version_counter = Some(counter_id);
        self.channel = Some(ChannelState {
            role,
            channel_id,
            key,
            my_balance,
            peer_balance,
            next_seq,
            last_received_seq,
        });
        Ok(())
    }
}

/// Encodes a SETUP request.
#[must_use]
pub fn encode_setup(
    role: u8,
    channel_id: &[u8; 16],
    key: &[u8; 16],
    my_balance: u64,
    peer_balance: u64,
) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.u8(role)
        .array(channel_id)
        .array(key)
        .u64(my_balance)
        .u64(peer_balance);
    w.finish()
}

/// Decodes a BALANCES response into `(my_balance, peer_balance)`.
///
/// # Errors
///
/// [`SgxError::Decode`] on malformed input.
pub fn decode_balances(bytes: &[u8]) -> Result<(u64, u64), SgxError> {
    let mut r = WireReader::new(bytes);
    let mine = r.u64()?;
    let peer = r.u64()?;
    r.finish()?;
    Ok((mine, peer))
}

/// Decodes a PERSIST response into `(version, sealed blob)`.
///
/// # Errors
///
/// [`SgxError::Decode`] on malformed input.
pub fn decode_persist_response(bytes: &[u8]) -> Result<(u32, Vec<u8>), SgxError> {
    let mut r = WireReader::new(bytes);
    let version = r.u32()?;
    let blob = r.bytes_vec()?;
    r.finish()?;
    Ok((version, blob))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payment_bytes_round_trip() {
        let payment = Payment {
            channel_id: [1; 16],
            sender_role: 1,
            seq: 42,
            sender_balance: 900,
            receiver_balance: 1100,
            mac: [7; 32],
        };
        let parsed = Payment::from_bytes(&payment.to_bytes()).unwrap();
        assert_eq!(parsed, payment);
        assert!(Payment::from_bytes(&payment.to_bytes()[..10]).is_err());
    }

    #[test]
    fn setup_encoding_shape() {
        let req = encode_setup(0, &[2; 16], &[3; 16], 1000, 500);
        let mut r = WireReader::new(&req);
        assert_eq!(r.u8().unwrap(), 0);
        assert_eq!(r.array::<16>().unwrap(), [2; 16]);
        assert_eq!(r.array::<16>().unwrap(), [3; 16]);
        assert_eq!(r.u64().unwrap(), 1000);
        assert_eq!(r.u64().unwrap(), 500);
        r.finish().unwrap();
    }

    #[test]
    fn mac_input_binds_all_fields() {
        let base = Payment::mac_input(&[1; 16], 0, 1, 10, 20);
        assert_ne!(base, Payment::mac_input(&[2; 16], 0, 1, 10, 20));
        assert_ne!(base, Payment::mac_input(&[1; 16], 1, 1, 10, 20));
        assert_ne!(base, Payment::mac_input(&[1; 16], 0, 2, 10, 20));
        assert_ne!(base, Payment::mac_input(&[1; 16], 0, 1, 11, 20));
        assert_ne!(base, Payment::mac_input(&[1; 16], 0, 1, 10, 21));
    }
}
