//! A ROTE-style distributed virtual counter (paper §IX, Matetic et al.).
//!
//! ROTE replaces SGX's rate-limited hardware counters with *virtual*
//! counters maintained by consensus among a group of enclaves on
//! different machines. The migration paper observes: *"A migratable
//! enclave that uses ROTE would not need to migrate monotonic counters,
//! but would still require a mechanism to securely migrate the keys it
//! uses to identify itself to the ROTE system."*
//!
//! This module reproduces exactly that division of labour:
//!
//! * [`RoteReplica`] — a helper enclave holding the latest counter value
//!   per client identity; a write is durable once a quorum of replicas
//!   acknowledges it (MACs under per-replica group keys);
//! * [`RoteIdentityKey`] — the client-side *identity key* that names the
//!   enclave to the ROTE group. **This key is the only thing that must
//!   migrate**, which the integration test does with the Migration
//!   Library's migratable sealing;
//! * quorum verification helpers enforcing the rollback-protection rule:
//!   a stale value cannot gather a quorum, because a quorum of replicas
//!   remembers a higher one.

use mig_crypto::hmac::HmacSha256;
use sgx_sim::wire::{WireReader, WireWriter};
use sgx_sim::SgxError;
use std::collections::BTreeMap;

/// A client's identity in the ROTE group: derived from its identity key.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct RoteIdentity(pub [u8; 32]);

/// The client-side secret naming the enclave to the ROTE group.
///
/// The migration paper's point: this key — not the counters — is the
/// persistent state a migratable ROTE user must carry across machines.
#[derive(Clone)]
pub struct RoteIdentityKey(pub [u8; 32]);

impl std::fmt::Debug for RoteIdentityKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RoteIdentityKey").finish_non_exhaustive()
    }
}

impl RoteIdentityKey {
    /// The public identity this key authenticates.
    #[must_use]
    pub fn identity(&self) -> RoteIdentity {
        RoteIdentity(mig_crypto::sha256::sha256(&self.0))
    }

    /// Signs an increment request for `value`.
    #[must_use]
    pub fn sign_request(&self, value: u64) -> [u8; 32] {
        let mut w = WireWriter::new();
        w.bytes(b"rote.request.v1");
        w.u64(value);
        HmacSha256::mac(&self.0, &w.finish())
    }
}

/// A replica's acknowledgement that it accepted `value` for `identity`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoteAck {
    /// Replica index within the group.
    pub replica: u32,
    /// The acknowledged identity.
    pub identity: RoteIdentity,
    /// The acknowledged (now durable at this replica) value.
    pub value: u64,
    /// MAC under the replica's group key.
    pub mac: [u8; 32],
}

impl RoteAck {
    fn mac_input(replica: u32, identity: &RoteIdentity, value: u64) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.bytes(b"rote.ack.v1");
        w.u32(replica);
        w.array(&identity.0);
        w.u64(value);
        w.finish()
    }

    /// Verifies the ack under `group_key`.
    #[must_use]
    pub fn verify(&self, group_key: &[u8; 16]) -> bool {
        HmacSha256::verify(
            group_key,
            &Self::mac_input(self.replica, &self.identity, self.value),
            &self.mac,
        )
    }

    /// Serializes the ack.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.u32(self.replica);
        w.array(&self.identity.0);
        w.u64(self.value);
        w.array(&self.mac);
        w.finish()
    }

    /// Parses an ack.
    ///
    /// # Errors
    ///
    /// [`SgxError::Decode`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SgxError> {
        let mut r = WireReader::new(bytes);
        let ack = RoteAck {
            replica: r.u32()?,
            identity: RoteIdentity(r.array()?),
            value: r.u64()?,
            mac: r.array()?,
        };
        r.finish()?;
        Ok(ack)
    }
}

/// One ROTE group replica (conceptually an enclave on its own machine;
/// its state never migrates — that is the whole point).
#[derive(Debug)]
pub struct RoteReplica {
    index: u32,
    group_key: [u8; 16],
    latest: BTreeMap<RoteIdentity, u64>,
}

impl RoteReplica {
    /// Creates replica `index` holding the shared group key.
    #[must_use]
    pub fn new(index: u32, group_key: [u8; 16]) -> Self {
        RoteReplica {
            index,
            group_key,
            latest: BTreeMap::new(),
        }
    }

    /// Handles an increment request: accepts only the next value
    /// (`latest + 1`) from the authenticated client, returning an ack.
    ///
    /// # Errors
    ///
    /// [`SgxError::MacMismatch`] on a bad request signature;
    /// [`SgxError::Enclave`] if the value is not strictly the successor
    /// (stale or skipping requests are refused — the anti-rollback rule).
    pub fn handle_increment(
        &mut self,
        identity: RoteIdentity,
        value: u64,
        request_mac: &[u8; 32],
        client_key: &RoteIdentityKey,
    ) -> Result<RoteAck, SgxError> {
        // In the real system the replica verifies the client by attested
        // session; here the shared-key MAC plays that role.
        if client_key.identity() != identity {
            return Err(SgxError::MacMismatch);
        }
        let expected = client_key.sign_request(value);
        if !mig_crypto::ct::ct_eq(&expected, request_mac) {
            return Err(SgxError::MacMismatch);
        }
        let current = self.latest.get(&identity).copied().unwrap_or(0);
        if value != current + 1 {
            return Err(SgxError::Enclave(format!(
                "replica {} refuses value {value}: latest is {current}",
                self.index
            )));
        }
        self.latest.insert(identity, value);
        let mac = HmacSha256::mac(
            &self.group_key,
            &RoteAck::mac_input(self.index, &identity, value),
        );
        Ok(RoteAck {
            replica: self.index,
            identity,
            value,
            mac,
        })
    }

    /// The replica's view of an identity's latest value.
    #[must_use]
    pub fn latest(&self, identity: &RoteIdentity) -> u64 {
        self.latest.get(identity).copied().unwrap_or(0)
    }
}

/// Checks that `acks` form a quorum of `quorum` *distinct* replicas, all
/// vouching for the same `(identity, value)` under `group_key`.
#[must_use]
pub fn verify_quorum(
    acks: &[RoteAck],
    group_key: &[u8; 16],
    identity: &RoteIdentity,
    value: u64,
    quorum: usize,
) -> bool {
    let mut seen = std::collections::BTreeSet::new();
    for ack in acks {
        if ack.identity == *identity && ack.value == value && ack.verify(group_key) {
            seen.insert(ack.replica);
        }
    }
    seen.len() >= quorum
}

/// Drives one quorum increment against a replica group, returning the
/// collected acks.
///
/// # Errors
///
/// Propagates the first failure if fewer than `quorum` replicas accept.
pub fn quorum_increment(
    replicas: &mut [RoteReplica],
    client: &RoteIdentityKey,
    value: u64,
    quorum: usize,
) -> Result<Vec<RoteAck>, SgxError> {
    let identity = client.identity();
    let mac = client.sign_request(value);
    let mut acks = Vec::new();
    let mut first_error = None;
    for replica in replicas.iter_mut() {
        match replica.handle_increment(identity, value, &mac, client) {
            Ok(ack) => acks.push(ack),
            Err(e) => first_error = Some(e),
        }
    }
    if acks.len() >= quorum {
        Ok(acks)
    } else {
        Err(first_error.unwrap_or_else(|| SgxError::Enclave("no quorum".into())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GROUP_KEY: [u8; 16] = [0x42; 16];

    fn group(n: usize) -> Vec<RoteReplica> {
        (0..n)
            .map(|i| RoteReplica::new(i as u32, GROUP_KEY))
            .collect()
    }

    #[test]
    fn quorum_increment_succeeds_and_verifies() {
        let mut replicas = group(3);
        let client = RoteIdentityKey([7; 32]);
        let acks = quorum_increment(&mut replicas, &client, 1, 2).unwrap();
        assert_eq!(acks.len(), 3);
        assert!(verify_quorum(&acks, &GROUP_KEY, &client.identity(), 1, 2));
        // Next value continues.
        let acks = quorum_increment(&mut replicas, &client, 2, 2).unwrap();
        assert!(verify_quorum(&acks, &GROUP_KEY, &client.identity(), 2, 2));
    }

    #[test]
    fn stale_value_cannot_gather_quorum() {
        let mut replicas = group(3);
        let client = RoteIdentityKey([7; 32]);
        quorum_increment(&mut replicas, &client, 1, 2).unwrap();
        quorum_increment(&mut replicas, &client, 2, 2).unwrap();
        // Replaying value 2 (or regressing to 1) is refused everywhere.
        assert!(quorum_increment(&mut replicas, &client, 2, 2).is_err());
        assert!(quorum_increment(&mut replicas, &client, 1, 2).is_err());
        // And skipping ahead is refused too.
        assert!(quorum_increment(&mut replicas, &client, 9, 2).is_err());
    }

    #[test]
    fn forged_requests_and_acks_rejected() {
        let mut replicas = group(3);
        let client = RoteIdentityKey([7; 32]);
        let impostor = RoteIdentityKey([8; 32]);
        // Impostor signing for the client's identity fails.
        let mac = impostor.sign_request(1);
        assert_eq!(
            replicas[0]
                .handle_increment(client.identity(), 1, &mac, &client)
                .unwrap_err(),
            SgxError::MacMismatch
        );
        // A tampered ack does not verify.
        let acks = quorum_increment(&mut replicas, &client, 1, 2).unwrap();
        let mut bad = acks[0].clone();
        bad.value = 99;
        assert!(!bad.verify(&GROUP_KEY));
        // Duplicate acks from one replica do not make a quorum.
        let dup = vec![acks[0].clone(), acks[0].clone(), acks[0].clone()];
        assert!(!verify_quorum(&dup, &GROUP_KEY, &client.identity(), 1, 2));
    }

    #[test]
    fn ack_wire_round_trip() {
        let mut replicas = group(1);
        let client = RoteIdentityKey([7; 32]);
        let ack = replicas[0]
            .handle_increment(client.identity(), 1, &client.sign_request(1), &client)
            .unwrap();
        let parsed = RoteAck::from_bytes(&ack.to_bytes()).unwrap();
        assert_eq!(parsed, ack);
    }
}
