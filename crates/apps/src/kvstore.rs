//! A rollback-protected sealed key-value store enclave.
//!
//! The canonical persistent-state discipline from the paper's §II-A4/§I:
//! on every update the enclave increments a monotonic counter and seals
//! the new counter value together with the store; on load it accepts the
//! blob only if the embedded version matches the counter. Built on the
//! *migratable* primitives, the whole store survives machine migration —
//! and the attack test-suite uses it as the victim workload for the §III
//! fork and roll-back attacks.
//!
//! **Segment-sealed staging.** The migration payload staged with the
//! library is not one monolithic sealed blob (whose ciphertext changes
//! completely on every reseal) but a *container*: the snapshot plaintext
//! split into [`SEGMENT_LEN`]-byte segments, each migratable-sealed
//! separately, preceded by a sealed index binding the exact ciphertext
//! set. A PUT reseals only the segments whose plaintext changed (plus
//! the small index), so the staged bytes stay mostly identical across
//! updates — which is what lets the ME's dirty-page delta transfer ship
//! a repeat migration as a few pages instead of the whole store.
//! Splicing segments from an older container is caught by the index
//! (ciphertext hashes); replaying a whole older container is the classic
//! rollback, caught by the version-vs-counter check on load.

use mig_core::harness::{AppCtx, AppLogic};
use mig_crypto::sha256::sha256;
use sgx_sim::wire::{WireReader, WireWriter};
use sgx_sim::SgxError;
use std::collections::BTreeMap;

/// ECALL opcodes of the KV store enclave.
pub mod ops {
    /// Create the version counter (once per enclave lifetime).
    pub const INIT: u32 = 1;
    /// Put a key/value pair; returns the new sealed snapshot.
    pub const PUT: u32 = 2;
    /// Get a value by key.
    pub const GET: u32 = 3;
    /// Load a sealed snapshot (rollback-checked).
    pub const LOAD: u32 = 4;
    /// Read the current version (effective counter value).
    pub const VERSION: u32 = 5;
    /// Number of entries.
    pub const LEN: u32 = 6;
    /// Bulk-load deterministic entries (count, value size, fill seed):
    /// one counter bump, one sealed snapshot — the multi-megabyte-state
    /// generator for the streaming-migration path.
    pub const BULK_PUT: u32 = 7;
}

/// AAD tag for KV snapshots.
const SNAPSHOT_AAD: &[u8] = b"mig-apps.kvstore.snapshot.v1";
/// AAD tag for the staged container's sealed segment index.
const INDEX_AAD: &[u8] = b"mig-apps.kvstore.seg-index.v1";
/// Plaintext bytes per sealed staging segment.
pub const SEGMENT_LEN: usize = 4096;
/// Leading byte of a staged container (a plain migratable-sealed blob
/// starts with its format version, 1).
const CONTAINER_MAGIC: u8 = 2;

/// Per-segment AAD: prefix plus the segment index, so a segment sealed
/// at one position cannot be presented at another.
fn segment_aad(idx: u32) -> Vec<u8> {
    let mut aad = b"mig-apps.kvstore.seg.v1:".to_vec();
    aad.extend_from_slice(&idx.to_le_bytes());
    aad
}

/// A parsed snapshot: version-counter id, version, entries.
type Snapshot = (u8, u32, BTreeMap<Vec<u8>, Vec<u8>>);
/// One cached staging segment: plaintext hash + sealed ciphertext.
type Segment = ([u8; 32], Vec<u8>);

/// The in-enclave state of the KV store.
#[derive(Default)]
pub struct KvStore {
    entries: BTreeMap<Vec<u8>, Vec<u8>>,
    version_counter: Option<u8>,
    /// Staging segment cache — lets an update reseal only the segments
    /// whose plaintext changed.
    segments: Vec<Segment>,
}

impl KvStore {
    /// Creates an empty store (version counter created by [`ops::INIT`]).
    #[must_use]
    pub fn new() -> Self {
        KvStore::default()
    }

    fn counter(&self) -> Result<u8, SgxError> {
        self.version_counter
            .ok_or_else(|| SgxError::Enclave("kv store not initialized".into()))
    }

    fn snapshot_bytes(&self, version: u32) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.u8(self.version_counter.unwrap_or(0));
        w.u32(version);
        w.u32(self.entries.len() as u32);
        for (key, value) in &self.entries {
            w.bytes(key);
            w.bytes(value);
        }
        w.finish()
    }

    fn parse_snapshot(bytes: &[u8]) -> Result<Snapshot, SgxError> {
        let mut r = WireReader::new(bytes);
        let counter_id = r.u8()?;
        let version = r.u32()?;
        let n = r.u32()? as usize;
        let mut entries = BTreeMap::new();
        for _ in 0..n {
            let key = r.bytes_vec()?;
            let value = r.bytes_vec()?;
            entries.insert(key, value);
        }
        r.finish()?;
        Ok((counter_id, version, entries))
    }

    /// Rebuilds the segment-sealed staging container for `snapshot`
    /// (the serialized store) and stages it with the library. Only
    /// segments whose plaintext changed since the cache was built are
    /// resealed.
    fn restage(&mut self, ctx: &mut AppCtx<'_, '_>, snapshot: &[u8]) -> Result<Vec<u8>, SgxError> {
        let mut segments = Vec::with_capacity(snapshot.len().div_ceil(SEGMENT_LEN));
        for (i, plain) in snapshot.chunks(SEGMENT_LEN).enumerate() {
            let hash = sha256(plain);
            let sealed = match self.segments.get(i) {
                Some((cached_hash, sealed)) if *cached_hash == hash => sealed.clone(),
                _ => ctx
                    .lib
                    .seal_migratable_data(ctx.env, &segment_aad(i as u32), plain)?,
            };
            segments.push((hash, sealed));
        }
        self.segments = segments;

        let mut index = WireWriter::new();
        index.u32(self.segments.len() as u32);
        for (_, sealed) in &self.segments {
            index.array(&sha256(sealed));
        }
        let sealed_index = ctx
            .lib
            .seal_migratable_data(ctx.env, INDEX_AAD, &index.finish())?;

        let mut w = WireWriter::new();
        w.u8(CONTAINER_MAGIC);
        w.bytes(&sealed_index);
        w.u32(self.segments.len() as u32);
        for (_, sealed) in &self.segments {
            w.bytes(sealed);
        }
        let container = w.finish();
        ctx.lib.stage_bulk_state(ctx.env, &container)?;
        Ok(container)
    }

    /// Opens a staged container: verifies the sealed index, every
    /// segment's ciphertext hash and positional AAD, and returns the
    /// reassembled snapshot plaintext plus the segment cache.
    fn open_container(
        ctx: &mut AppCtx<'_, '_>,
        bytes: &[u8],
    ) -> Result<(Vec<u8>, Vec<Segment>), SgxError> {
        let mut r = WireReader::new(bytes);
        if r.u8()? != CONTAINER_MAGIC {
            return Err(SgxError::Decode);
        }
        let sealed_index = r.bytes_vec()?;
        let (index_plain, aad) = ctx.lib.unseal_migratable_data(ctx.env, &sealed_index)?;
        if aad != INDEX_AAD {
            return Err(SgxError::Decode);
        }
        let mut ir = WireReader::new(&index_plain);
        let n = ir.u32()? as usize;
        let mut expected = Vec::with_capacity(n);
        for _ in 0..n {
            expected.push(ir.array::<32>()?);
        }
        ir.finish()?;
        if r.u32()? as usize != n {
            return Err(SgxError::Decode);
        }
        let mut plain = Vec::new();
        let mut segments = Vec::with_capacity(n);
        for (i, hash) in expected.iter().enumerate() {
            let sealed = r.bytes_vec()?;
            if sha256(&sealed) != *hash {
                // A segment spliced in from another container version.
                return Err(SgxError::MacMismatch);
            }
            let (seg, aad) = ctx.lib.unseal_migratable_data(ctx.env, &sealed)?;
            if aad != segment_aad(i as u32) {
                return Err(SgxError::Decode);
            }
            segments.push((sha256(&seg), sealed));
            plain.extend_from_slice(&seg);
        }
        r.finish()?;
        Ok((plain, segments))
    }
}

impl AppLogic for KvStore {
    fn handle(
        &mut self,
        ctx: &mut AppCtx<'_, '_>,
        opcode: u32,
        input: &[u8],
    ) -> Result<Vec<u8>, SgxError> {
        match opcode {
            ops::INIT => {
                let (id, value) = ctx.lib.create_migratable_counter(ctx.env)?;
                self.version_counter = Some(id);
                let mut w = WireWriter::new();
                w.u8(id).u32(value);
                Ok(w.finish())
            }
            ops::PUT => {
                let counter = self.counter()?;
                let mut r = WireReader::new(input);
                let key = r.bytes_vec()?;
                let value = r.bytes_vec()?;
                r.finish()?;
                self.entries.insert(key, value);
                // Version discipline: bump the counter, seal the new
                // version into the snapshot (paper §II-A4).
                let version = ctx.lib.increment_migratable_counter(ctx.env, counter)?;
                let snapshot = self.snapshot_bytes(version);
                let blob = ctx
                    .lib
                    .seal_migratable_data(ctx.env, SNAPSHOT_AAD, &snapshot)?;
                // Stage the segment-sealed container so a migration
                // always carries the current store; only the segments
                // this PUT dirtied are resealed, keeping the staged
                // bytes delta-friendly across updates.
                self.restage(ctx, &snapshot)?;
                let mut w = WireWriter::new();
                w.u32(version).bytes(&blob);
                Ok(w.finish())
            }
            ops::BULK_PUT => {
                let counter = self.counter()?;
                let mut r = WireReader::new(input);
                let count = r.u32()?;
                let value_len = r.u32()? as usize;
                let fill = r.u8()?;
                r.finish()?;
                for i in 0..count {
                    let key = format!("bulk-{i:08}").into_bytes();
                    let value: Vec<u8> = (0..value_len)
                        .map(|j| fill.wrapping_add((i as usize + j) as u8))
                        .collect();
                    self.entries.insert(key, value);
                }
                // One version bump and one restaged container for the
                // whole batch.
                let version = ctx.lib.increment_migratable_counter(ctx.env, counter)?;
                let snapshot = self.snapshot_bytes(version);
                let container = self.restage(ctx, &snapshot)?;
                let mut w = WireWriter::new();
                w.u32(version).u64(container.len() as u64);
                Ok(w.finish())
            }
            ops::GET => self
                .entries
                .get(input)
                .cloned()
                .ok_or_else(|| SgxError::Enclave("key not found".into())),
            ops::LOAD => {
                // Two on-disk formats: the segment-sealed container
                // (staged / migrated state) and the plain sealed
                // snapshot a PUT returns.
                let container = input.first() == Some(&CONTAINER_MAGIC);
                let (plaintext, segments) = if container {
                    let (plain, segments) = Self::open_container(ctx, input)?;
                    (plain, Some(segments))
                } else {
                    let (plain, aad) = ctx.lib.unseal_migratable_data(ctx.env, input)?;
                    if aad != SNAPSHOT_AAD {
                        return Err(SgxError::Decode);
                    }
                    (plain, None)
                };
                let (counter_id, version, entries) = Self::parse_snapshot(&plaintext)?;
                let current = ctx.lib.read_migratable_counter(ctx.env, counter_id)?;
                if version != current {
                    return Err(SgxError::Enclave(format!(
                        "rollback detected: snapshot version {version} != counter {current}"
                    )));
                }
                self.version_counter = Some(counter_id);
                self.entries = entries;
                // Keep the staged migration payload in sync with the
                // restored store. Re-loading the container that just
                // migrated in adopts its sealed segments verbatim (and
                // the restage is a byte-identical no-op), so the next
                // outgoing delta is computed against unchanged bytes.
                match segments {
                    Some(segments) => {
                        self.segments = segments;
                        ctx.lib.stage_bulk_state(ctx.env, input)?;
                    }
                    None => {
                        self.segments.clear();
                        self.restage(ctx, &plaintext)?;
                    }
                }
                Ok(vec![])
            }
            ops::VERSION => {
                let counter = self.counter()?;
                let value = ctx.lib.read_migratable_counter(ctx.env, counter)?;
                Ok(value.to_le_bytes().to_vec())
            }
            ops::LEN => Ok((self.entries.len() as u32).to_le_bytes().to_vec()),
            _ => Err(SgxError::InvalidParameter("opcode")),
        }
    }

    fn export_state(&self) -> Vec<u8> {
        self.snapshot_bytes(0)
    }

    fn import_state(&mut self, bytes: &[u8]) -> Result<(), SgxError> {
        let (counter_id, _version, entries) = Self::parse_snapshot(bytes)?;
        self.version_counter = Some(counter_id);
        self.entries = entries;
        Ok(())
    }
}

/// Encodes a PUT request.
#[must_use]
pub fn encode_put(key: &[u8], value: &[u8]) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.bytes(key).bytes(value);
    w.finish()
}

/// Decodes a PUT response into `(version, sealed snapshot)`.
///
/// # Errors
///
/// [`SgxError::Decode`] on malformed input.
pub fn decode_put_response(bytes: &[u8]) -> Result<(u32, Vec<u8>), SgxError> {
    let mut r = WireReader::new(bytes);
    let version = r.u32()?;
    let blob = r.bytes_vec()?;
    r.finish()?;
    Ok((version, blob))
}

/// Encodes a BULK_PUT request: `count` entries of `value_len` bytes
/// generated deterministically from `fill`.
#[must_use]
pub fn encode_bulk_put(count: u32, value_len: u32, fill: u8) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.u32(count).u32(value_len).u8(fill);
    w.finish()
}

/// Decodes a BULK_PUT response into `(version, staged container length)`.
///
/// # Errors
///
/// [`SgxError::Decode`] on malformed input.
pub fn decode_bulk_put_response(bytes: &[u8]) -> Result<(u32, u64), SgxError> {
    let mut r = WireReader::new(bytes);
    let version = r.u32()?;
    let len = r.u64()?;
    r.finish()?;
    Ok((version, len))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_round_trip() {
        let mut store = KvStore::new();
        store.version_counter = Some(3);
        store.entries.insert(b"a".to_vec(), b"1".to_vec());
        store.entries.insert(b"b".to_vec(), b"2".to_vec());
        let bytes = store.snapshot_bytes(9);
        let (id, version, entries) = KvStore::parse_snapshot(&bytes).unwrap();
        assert_eq!(id, 3);
        assert_eq!(version, 9);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[b"a".as_slice()], b"1");
    }

    #[test]
    fn put_request_encoding() {
        let req = encode_put(b"key", b"value");
        let mut r = WireReader::new(&req);
        assert_eq!(r.bytes().unwrap(), b"key");
        assert_eq!(r.bytes().unwrap(), b"value");
        r.finish().unwrap();
    }

    #[test]
    fn malformed_snapshot_rejected() {
        assert!(KvStore::parse_snapshot(&[1, 2, 3]).is_err());
    }
}
