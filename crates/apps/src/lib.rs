//! **mig-apps** — enclave workloads over the migration framework.
//!
//! The paper motivates persistent-state migration with two published
//! SGX systems (§III-B): Teechan payment channels \[3\] and the
//! Hybster/TrInX trusted counter service \[4\]. This crate implements both
//! disciplines, plus a plain sealed key-value store, as [`AppLogic`]
//! implementations over the public `mig-core` API:
//!
//! * [`kvstore`] — versioned sealed storage (the basic §II-A4 pattern);
//! * [`teechan`] — duplex payment channels with single-message payments;
//! * [`trinx`] — certified monotonic counters with equivocation
//!   detection.
//!
//! All three persist their state via *migratable* sealing with a
//! *migratable* monotonic counter version, so they survive machine
//! migration; all three are also the victims of the attack test-suite
//! when run over the naive (persistent-state-less) migration baseline.
//!
//! [`AppLogic`]: mig_core::harness::AppLogic

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kvstore;
pub mod rote;
pub mod teechan;
pub mod trinx;

use sgx_sim::measurement::{EnclaveImage, EnclaveSigner};

/// Builds the canonical enclave image for the KV store app.
#[must_use]
pub fn kvstore_image() -> EnclaveImage {
    EnclaveImage::build(
        "mig-apps.kvstore",
        1,
        b"sealed kv store enclave v1",
        &EnclaveSigner::from_seed(*b"mig-apps reference signer seed!!"),
    )
}

/// Builds the canonical enclave image for the Teechan endpoint.
#[must_use]
pub fn teechan_image() -> EnclaveImage {
    EnclaveImage::build(
        "mig-apps.teechan",
        1,
        b"teechan payment channel enclave v1",
        &EnclaveSigner::from_seed(*b"mig-apps reference signer seed!!"),
    )
}

/// Builds the canonical enclave image for the TrInX service.
#[must_use]
pub fn trinx_image() -> EnclaveImage {
    EnclaveImage::build(
        "mig-apps.trinx",
        1,
        b"trinx trusted counter enclave v1",
        &EnclaveSigner::from_seed(*b"mig-apps reference signer seed!!"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn images_are_distinct_and_stable() {
        assert_eq!(kvstore_image().mr_enclave(), kvstore_image().mr_enclave());
        assert_ne!(kvstore_image().mr_enclave(), teechan_image().mr_enclave());
        assert_ne!(teechan_image().mr_enclave(), trinx_image().mr_enclave());
        // Same signer across the suite.
        assert_eq!(kvstore_image().mr_signer(), trinx_image().mr_signer());
    }
}
