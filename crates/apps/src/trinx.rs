//! A TrInX-style trusted counter service (paper §III-B, Hybster \[4\]).
//!
//! Hybster's TrInX subsystem certifies messages with trusted monotonic
//! counters: each `certify(counter, message)` binds the message to a
//! strictly increasing counter value under a MAC, so replicas can prove
//! ordering and detect equivocation. The paper quotes its platform
//! assumption: the execution platform must "prevent undetected replay
//! attacks where an adversary saves the (encrypted) state of a trusted
//! subsystem and starts a new instance using the exact same state".
//!
//! Here the service's TrInX counters are ordinary in-enclave state,
//! protected exactly as the paper assumes — persisted via migratable
//! sealing with a migratable-monotonic-counter version — so the guarantee
//! survives machine migration. The attack test-suite shows the same
//! service forked or rolled back when the naive migration is used.

use mig_core::harness::{AppCtx, AppLogic};
use mig_crypto::hmac::HmacSha256;
use mig_crypto::sha256::sha256;
use sgx_sim::wire::{WireReader, WireWriter};
use sgx_sim::SgxError;
use std::collections::BTreeMap;

/// ECALL opcodes of the TrInX service enclave.
pub mod ops {
    /// Provision the certification key and create the version counter.
    pub const INIT: u32 = 1;
    /// Create a TrInX counter.
    pub const CREATE: u32 = 2;
    /// Certify a message: bind it to the next counter value.
    pub const CERTIFY: u32 = 3;
    /// Read a TrInX counter value.
    pub const READ: u32 = 4;
    /// Persist service state; returns `(version, sealed blob)`.
    pub const PERSIST: u32 = 5;
    /// Restore service state (rollback-checked).
    pub const RESTORE: u32 = 6;
}

const SNAPSHOT_AAD: &[u8] = b"mig-apps.trinx.state.v1";
const CERT_CONTEXT: &[u8] = b"mig-apps.trinx.certificate.v1";

/// A certificate binding a message to a counter value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Certificate {
    /// TrInX counter id.
    pub counter_id: u32,
    /// The certified (strictly increasing) value.
    pub value: u64,
    /// SHA-256 of the certified message.
    pub message_hash: [u8; 32],
    /// MAC under the service's certification key.
    pub mac: [u8; 32],
}

impl Certificate {
    fn mac_input(counter_id: u32, value: u64, message_hash: &[u8; 32]) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.bytes(CERT_CONTEXT);
        w.u32(counter_id);
        w.u64(value);
        w.array(message_hash);
        w.finish()
    }

    /// Verifies the certificate against a message and the service key.
    #[must_use]
    pub fn verify(&self, key: &[u8; 16], message: &[u8]) -> bool {
        if sha256(message) != self.message_hash {
            return false;
        }
        HmacSha256::verify(
            key,
            &Self::mac_input(self.counter_id, self.value, &self.message_hash),
            &self.mac,
        )
    }

    /// Serializes the certificate.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.u32(self.counter_id);
        w.u64(self.value);
        w.array(&self.message_hash);
        w.array(&self.mac);
        w.finish()
    }

    /// Parses a certificate.
    ///
    /// # Errors
    ///
    /// [`SgxError::Decode`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SgxError> {
        let mut r = WireReader::new(bytes);
        let cert = Certificate {
            counter_id: r.u32()?,
            value: r.u64()?,
            message_hash: r.array()?,
            mac: r.array()?,
        };
        r.finish()?;
        Ok(cert)
    }
}

/// The TrInX trusted-counter service enclave.
#[derive(Default)]
pub struct TrinxService {
    counters: BTreeMap<u32, u64>,
    cert_key: Option<[u8; 16]>,
    version_counter: Option<u8>,
}

impl TrinxService {
    /// Creates an unprovisioned service.
    #[must_use]
    pub fn new() -> Self {
        TrinxService::default()
    }

    fn cert_key(&self) -> Result<[u8; 16], SgxError> {
        self.cert_key
            .ok_or_else(|| SgxError::Enclave("trinx not initialized".into()))
    }

    fn state_bytes(&self, version: u32) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.u8(self.version_counter.unwrap_or(0));
        w.u32(version);
        w.array(&self.cert_key.unwrap_or([0; 16]));
        w.u32(self.counters.len() as u32);
        for (id, value) in &self.counters {
            w.u32(*id);
            w.u64(*value);
        }
        w.finish()
    }
}

impl AppLogic for TrinxService {
    fn handle(
        &mut self,
        ctx: &mut AppCtx<'_, '_>,
        opcode: u32,
        input: &[u8],
    ) -> Result<Vec<u8>, SgxError> {
        match opcode {
            ops::INIT => {
                let mut r = WireReader::new(input);
                let key: [u8; 16] = r.array()?;
                r.finish()?;
                self.cert_key = Some(key);
                let (counter_id, _) = ctx.lib.create_migratable_counter(ctx.env)?;
                self.version_counter = Some(counter_id);
                Ok(vec![counter_id])
            }
            ops::CREATE => {
                let mut r = WireReader::new(input);
                let id = r.u32()?;
                r.finish()?;
                if self.counters.contains_key(&id) {
                    return Err(SgxError::Enclave("trinx counter exists".into()));
                }
                self.counters.insert(id, 0);
                Ok(vec![])
            }
            ops::CERTIFY => {
                let key = self.cert_key()?;
                let mut r = WireReader::new(input);
                let id = r.u32()?;
                let message = r.bytes_vec()?;
                r.finish()?;
                let value = self
                    .counters
                    .get_mut(&id)
                    .ok_or_else(|| SgxError::Enclave("unknown trinx counter".into()))?;
                *value += 1;
                let message_hash = sha256(&message);
                let mac = HmacSha256::mac(&key, &Certificate::mac_input(id, *value, &message_hash));
                let cert = Certificate {
                    counter_id: id,
                    value: *value,
                    message_hash,
                    mac,
                };
                Ok(cert.to_bytes())
            }
            ops::READ => {
                let mut r = WireReader::new(input);
                let id = r.u32()?;
                r.finish()?;
                let value = self
                    .counters
                    .get(&id)
                    .ok_or_else(|| SgxError::Enclave("unknown trinx counter".into()))?;
                Ok(value.to_le_bytes().to_vec())
            }
            ops::PERSIST => {
                let counter = self
                    .version_counter
                    .ok_or_else(|| SgxError::Enclave("trinx not initialized".into()))?;
                let version = ctx.lib.increment_migratable_counter(ctx.env, counter)?;
                let blob = ctx.lib.seal_migratable_data(
                    ctx.env,
                    SNAPSHOT_AAD,
                    &self.state_bytes(version),
                )?;
                let mut w = WireWriter::new();
                w.u32(version).bytes(&blob);
                Ok(w.finish())
            }
            ops::RESTORE => {
                let (plaintext, aad) = ctx.lib.unseal_migratable_data(ctx.env, input)?;
                if aad != SNAPSHOT_AAD {
                    return Err(SgxError::Decode);
                }
                let mut r = WireReader::new(&plaintext);
                let counter_id = r.u8()?;
                let version = r.u32()?;
                let cert_key: [u8; 16] = r.array()?;
                let n = r.u32()? as usize;
                let mut counters = BTreeMap::new();
                for _ in 0..n {
                    let id = r.u32()?;
                    let value = r.u64()?;
                    counters.insert(id, value);
                }
                r.finish()?;

                let current = ctx.lib.read_migratable_counter(ctx.env, counter_id)?;
                if version != current {
                    return Err(SgxError::Enclave(format!(
                        "rollback detected: state version {version} != counter {current}"
                    )));
                }
                self.version_counter = Some(counter_id);
                self.cert_key = Some(cert_key);
                self.counters = counters;
                Ok(vec![])
            }
            _ => Err(SgxError::InvalidParameter("opcode")),
        }
    }

    fn export_state(&self) -> Vec<u8> {
        self.state_bytes(0)
    }

    fn import_state(&mut self, bytes: &[u8]) -> Result<(), SgxError> {
        let mut r = WireReader::new(bytes);
        let counter_id = r.u8()?;
        let _version = r.u32()?;
        let cert_key: [u8; 16] = r.array()?;
        let n = r.u32()? as usize;
        let mut counters = BTreeMap::new();
        for _ in 0..n {
            let id = r.u32()?;
            let value = r.u64()?;
            counters.insert(id, value);
        }
        r.finish()?;
        self.version_counter = Some(counter_id);
        self.cert_key = Some(cert_key);
        self.counters = counters;
        Ok(())
    }
}

/// Encodes a CERTIFY request.
#[must_use]
pub fn encode_certify(counter_id: u32, message: &[u8]) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.u32(counter_id).bytes(message);
    w.finish()
}

/// Encodes a CREATE request.
#[must_use]
pub fn encode_create(counter_id: u32) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.u32(counter_id);
    w.finish()
}

/// Checks a batch of certificates for equivocation: no two distinct
/// messages may share a (counter, value) pair. This is the detection
/// rule a Hybster-style replication protocol applies.
#[must_use]
pub fn detect_equivocation(certs: &[Certificate]) -> bool {
    let mut seen: BTreeMap<(u32, u64), [u8; 32]> = BTreeMap::new();
    for cert in certs {
        if let Some(previous) = seen.insert((cert.counter_id, cert.value), cert.message_hash) {
            if previous != cert.message_hash {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn certificate_round_trip_and_verify() {
        let key = [9u8; 16];
        let message = b"request 17";
        let message_hash = sha256(message);
        let mac = HmacSha256::mac(&key, &Certificate::mac_input(3, 7, &message_hash));
        let cert = Certificate {
            counter_id: 3,
            value: 7,
            message_hash,
            mac,
        };
        assert!(cert.verify(&key, message));
        assert!(!cert.verify(&key, b"other message"));
        assert!(!cert.verify(&[0; 16], message));
        let parsed = Certificate::from_bytes(&cert.to_bytes()).unwrap();
        assert_eq!(parsed, cert);
    }

    #[test]
    fn equivocation_detection() {
        let key = [9u8; 16];
        let make = |value: u64, msg: &[u8]| {
            let message_hash = sha256(msg);
            Certificate {
                counter_id: 1,
                value,
                message_hash,
                mac: HmacSha256::mac(&key, &Certificate::mac_input(1, value, &message_hash)),
            }
        };
        // Distinct values: fine.
        assert!(!detect_equivocation(&[make(1, b"a"), make(2, b"b")]));
        // Same value, same message (duplicate delivery): fine.
        assert!(!detect_equivocation(&[make(1, b"a"), make(1, b"a")]));
        // Same value, different messages: equivocation!
        assert!(detect_equivocation(&[make(1, b"a"), make(1, b"b")]));
    }
}
