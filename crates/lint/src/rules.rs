//! The five mig-lint rules.
//!
//! Every rule works on scrubbed text (see [`crate::scrub`]) and reports
//! byte offsets; the driver in [`crate::lint_files`] maps offsets to
//! lines, attaches snippets, and applies `mig-lint: allow` annotations.
//!
//! | rule | invariant |
//! |------|-----------|
//! | `ct-compare` | digest/MAC/tag comparison must use `mig_crypto::ct` |
//! | `enclave-panic` | no unannotated panic path in enclave-resident code |
//! | `secret-hygiene` | secret types don't print; key types zeroize on drop |
//! | `wire-framing` | MeToMe frames are built only in `me/wire.rs` |
//! | `no-wildcard-fsm` | no catch-all arms in the session FSM matches |

use crate::scan::{find_from, match_brace, match_paren, SourceFile};

/// The rule identifiers, as used in reports and `allow(...)` annotations.
pub const RULES: [&str; 5] = [
    "ct-compare",
    "enclave-panic",
    "no-wildcard-fsm",
    "secret-hygiene",
    "wire-framing",
];

/// Types that must never derive `Debug` or implement `Display`: their
/// fields are key material or plaintext persistent state.
const NO_PRINT_TYPES: [&str; 9] = [
    "MigrationData",
    "LibraryState",
    "Aes128",
    "AesGcm",
    "Sha256",
    "Sha512",
    "HmacSha256",
    "HmacSha512",
    "FixtureSessionKey",
];

/// Types that must implement `Drop` (zeroization). The HMAC states are
/// exempt: they scrub transitively through their `Sha*` fields.
const MUST_ZEROIZE_TYPES: [&str; 7] = [
    "MigrationData",
    "LibraryState",
    "Aes128",
    "AesGcm",
    "Sha256",
    "Sha512",
    "FixtureSessionKey",
];

/// Field/variable names that hold raw key material and must never reach
/// a formatting macro.
const SECRET_FIELDS: [&str; 6] = ["msk", "round_keys", "key_block", "ipad", "opad", "prk"];

/// Formatting/logging macros checked for secret leakage.
const FORMAT_MACROS: [&str; 17] = [
    "format",
    "println",
    "print",
    "eprintln",
    "eprint",
    "write",
    "writeln",
    "panic",
    "dbg",
    "info",
    "warn",
    "error",
    "debug",
    "trace",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Telemetry sink methods (mig-trace recorder/registry) whose arguments
/// must never carry key material, sealed payload bytes, or the raw
/// transfer nonce — migrations are identified by public trace ids only.
const TELEMETRY_SINKS: [&str; 4] = ["bump_counter", "set_gauge", "observe_ns", "record_event"];

/// Identifiers banned from telemetry-sink arguments on top of
/// [`SECRET_FIELDS`]: the transfer nonce keys the chunk HMAC chain, and
/// sealed blobs carry ciphertext tied to key context.
const TELEMETRY_SECRET_ARGS: [&str; 2] = ["nonce", "sealed"];

/// A rule hit before annotation/line resolution.
pub struct RawViolation {
    /// Which rule fired.
    pub rule: &'static str,
    /// Byte offset of the hit in the file.
    pub offset: usize,
}

/// Cross-file facts gathered per file and resolved by the driver.
#[derive(Default)]
pub struct CrossFileFacts {
    /// `(type name, offset)` for each must-zeroize struct defined here.
    pub zeroize_defs: Vec<(String, usize)>,
    /// Type names with an `impl Drop for T` in this file.
    pub drop_impls: Vec<String>,
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Iterates `(start, end)` byte ranges of identifier-like words in `text`.
fn words(text: &str) -> impl Iterator<Item = (usize, usize)> + '_ {
    let bytes = text.as_bytes();
    let mut i = 0usize;
    std::iter::from_fn(move || {
        while i < bytes.len() && !is_ident(bytes[i]) {
            i += 1;
        }
        if i >= bytes.len() {
            return None;
        }
        let start = i;
        while i < bytes.len() && is_ident(bytes[i]) {
            i += 1;
        }
        Some((start, i))
    })
}

/// Finds every occurrence of `word` in `text` with identifier boundaries.
fn find_word(text: &str, word: &str) -> Vec<usize> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(pos) = find_from(text, from, word) {
        from = pos + 1;
        let before_ok = pos == 0 || !is_ident(bytes[pos - 1]);
        let after = pos + word.len();
        let after_ok = after >= bytes.len() || !is_ident(bytes[after]);
        if before_ok && after_ok {
            out.push(pos);
        }
    }
    out
}

/// First non-whitespace byte index at or after `i`.
fn skip_ws(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
        i += 1;
    }
    i
}

/// Last non-whitespace byte index strictly before `i`, if any.
fn prev_non_ws(bytes: &[u8], i: usize) -> Option<usize> {
    let mut j = i;
    while j > 0 {
        j -= 1;
        if !bytes[j].is_ascii_whitespace() {
            return Some(j);
        }
    }
    None
}

/// Reads the identifier starting at the first non-ws byte from `i`;
/// returns `(word, end)` or `None` if the next token isn't an identifier.
fn read_ident(text: &str, i: usize) -> Option<(&str, usize)> {
    let bytes = text.as_bytes();
    let s = skip_ws(bytes, i);
    if s >= bytes.len() || !is_ident(bytes[s]) || bytes[s].is_ascii_digit() {
        return None;
    }
    let mut e = s;
    while e < bytes.len() && is_ident(bytes[e]) {
        e += 1;
    }
    Some((&text[s..e], e))
}

/// Whether a word looks like a digest/MAC/tag value.
fn is_sensitive_word(w: &str) -> bool {
    let w = w.to_ascii_lowercase();
    w.contains("digest")
        || w == "mac"
        || w == "tag"
        || w.ends_with("_mac")
        || w.ends_with("_tag")
        || w.starts_with("mac_")
        || w.starts_with("tag_")
}

/// **ct-compare** — `==` / `!=` with a digest/MAC/tag operand outside
/// `mig_crypto::ct` is a timing side channel: short-circuiting slice
/// comparison reveals the first differing byte.
pub fn ct_compare(f: &SourceFile) -> Vec<RawViolation> {
    if f.rel_path.ends_with("crates/crypto/src/ct.rs") || f.rel_path == "crates/crypto/src/ct.rs" {
        return Vec::new();
    }
    let text = &f.scrubbed;
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 1 < bytes.len() {
        let is_eq = bytes[i] == b'=' && bytes[i + 1] == b'=';
        let is_ne = bytes[i] == b'!' && bytes[i + 1] == b'=';
        if !(is_eq || is_ne) {
            i += 1;
            continue;
        }
        // Exclude `<=`, `>=`, `=>`-adjacent and `===`-style runs.
        if is_eq {
            if i > 0 && matches!(bytes[i - 1], b'<' | b'>' | b'!' | b'=') {
                i += 2;
                continue;
            }
            if bytes.get(i + 2) == Some(&b'=') {
                i += 3;
                continue;
            }
        }
        if f.in_test(i) {
            i += 2;
            continue;
        }
        let ls = text[..i].rfind('\n').map_or(0, |p| p + 1);
        let le = find_from(text, i, "\n").unwrap_or(text.len());
        let sides = [&text[ls..i], &text[i + 2..le]];
        let mut hit = false;
        for side in sides {
            for (ws, we) in words(side) {
                if !is_sensitive_word(&side[ws..we]) {
                    continue;
                }
                // Comparing *lengths* of digests is fine.
                let tail = &side[we..];
                if tail.starts_with(".len(") || tail.starts_with(".is_empty(") {
                    continue;
                }
                hit = true;
            }
        }
        if hit {
            out.push(RawViolation {
                rule: "ct-compare",
                offset: i,
            });
        }
        i += 2;
    }
    out
}

/// Whether `enclave-panic` applies to this path: enclave-resident code
/// only — the ME, the migration library, and the sgx-sim trusted parts.
fn is_enclave_path(rel: &str) -> bool {
    rel.starts_with("crates/core/src/me/")
        || rel.starts_with("crates/core/src/library/")
        || rel == "crates/sgx-sim/src/enclave.rs"
        || rel == "crates/sgx-sim/src/seal.rs"
        || rel.contains("fixtures/enclave-panic/")
}

/// **enclave-panic** — a panic inside an enclave aborts the enclave and,
/// mid-migration, can strand retained state; every potential panic site
/// must be converted to `MigError` or carry an `allow` with a reason.
pub fn enclave_panic(f: &SourceFile) -> Vec<RawViolation> {
    if !is_enclave_path(&f.rel_path) {
        return Vec::new();
    }
    let text = &f.scrubbed;
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    for needle in [".unwrap(", ".expect("] {
        let mut from = 0usize;
        while let Some(pos) = find_from(text, from, needle) {
            from = pos + 1;
            if !f.in_test(pos) {
                out.push(RawViolation {
                    rule: "enclave-panic",
                    offset: pos + 1,
                });
            }
        }
    }
    for mac in ["panic", "unreachable", "todo", "unimplemented"] {
        for pos in find_word(text, mac) {
            if bytes.get(pos + mac.len()) == Some(&b'!') && !f.in_test(pos) {
                out.push(RawViolation {
                    rule: "enclave-panic",
                    offset: pos,
                });
            }
        }
    }
    // Slice/array indexing: `[` directly after a value. `#[`, types
    // (`[u8; 16]`), and macro brackets (`vec![`) are all preceded by
    // non-value bytes and skipped.
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'['
            && i > 0
            && (is_ident(bytes[i - 1]) || matches!(bytes[i - 1], b')' | b']' | b'?'))
            && !f.in_test(i)
        {
            out.push(RawViolation {
                rule: "enclave-panic",
                offset: i,
            });
        }
    }
    out
}

/// **no-wildcard-fsm** — catch-all arms in the sender/receiver FSM
/// matches silently swallow protocol states added later; every state
/// must be matched by name.
pub fn no_wildcard_fsm(f: &SourceFile) -> Vec<RawViolation> {
    if !(f.rel_path.ends_with("me/session.rs") || f.rel_path.contains("fixtures/no-wildcard-fsm/"))
    {
        return Vec::new();
    }
    let text = &f.scrubbed;
    let bytes = text.as_bytes();
    let mut spans = Vec::new();
    for needle in ["impl SenderFsm", "impl ReceiverFsm"] {
        let mut from = 0usize;
        while let Some(pos) = find_from(text, from, needle) {
            from = pos + needle.len();
            if bytes.get(pos + needle.len()).is_some_and(|&b| is_ident(b)) {
                continue;
            }
            if let Some(open) = find_from(text, pos, "{") {
                let end = match_brace(bytes, open).unwrap_or(bytes.len());
                spans.push((open, end));
            }
        }
    }
    let mut out = Vec::new();
    for (start, end) in spans {
        // Standalone `_` followed by `=>` or a match guard.
        for i in start..end {
            if bytes[i] != b'_'
                || (i > 0 && is_ident(bytes[i - 1]))
                || bytes.get(i + 1).is_some_and(|&b| is_ident(b))
            {
                continue;
            }
            let j = skip_ws(bytes, i + 1);
            let arrow = text[j..].starts_with("=>");
            let guard =
                text[j..].starts_with("if") && !bytes.get(j + 2).is_some_and(|&b| is_ident(b));
            if (arrow || guard) && !f.in_test(i) {
                out.push(RawViolation {
                    rule: "no-wildcard-fsm",
                    offset: i,
                });
            }
        }
        // Bare lowercase binding used as a catch-all arm: `other => ...`.
        for (ws, we) in words(&text[start..end]) {
            let (ws, we) = (start + ws, start + we);
            let word = &text[ws..we];
            let first = word.as_bytes()[0];
            if !(first.is_ascii_lowercase() || first == b'_') || word == "_" {
                continue;
            }
            if matches!(word, "true" | "false" | "self" | "crate" | "super") {
                continue;
            }
            let Some(prev) = prev_non_ws(bytes, ws) else {
                continue;
            };
            if !matches!(bytes[prev], b'{' | b'}' | b',') {
                continue;
            }
            let j = skip_ws(bytes, we);
            if text[j..].starts_with("=>") && !f.in_test(ws) {
                out.push(RawViolation {
                    rule: "no-wildcard-fsm",
                    offset: ws,
                });
            }
        }
    }
    out
}

/// **wire-framing** — MeToMe frames must be built by `me/wire.rs` alone
/// (`seal_chunk` / `seal_lead`), which centralizes cell padding and
/// length framing. Direct use of the low-level primitives or hand-sealed
/// frame payloads elsewhere bypasses the traffic-shape guarantees.
pub fn wire_framing(f: &SourceFile) -> Vec<RawViolation> {
    let in_core = f.rel_path.starts_with("crates/core/")
        && !f.rel_path.ends_with("me/wire.rs")
        && !f.rel_path.ends_with("src/msgs.rs");
    if !(in_core || f.rel_path.contains("fixtures/wire-framing/")) {
        return Vec::new();
    }
    let text = &f.scrubbed;
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    // `cell_for_frame_len` is deliberately not flagged: it is a pure
    // size query (the shaper budgets cells with it); only the
    // frame-*building* primitives are restricted to wire.rs.
    for prim in ["encode_chunk", "pad_frame"] {
        for pos in find_word(text, prim) {
            if bytes.get(pos + prim.len()) != Some(&b'(') || f.in_test(pos) {
                continue;
            }
            // A local stub *definition* (fixtures) is not a call site.
            if let Some(p) = prev_non_ws(bytes, pos) {
                if p >= 1 && &text[p - 1..=p] == "fn" {
                    continue;
                }
            }
            out.push(RawViolation {
                rule: "wire-framing",
                offset: pos,
            });
        }
    }
    let mut from = 0usize;
    while let Some(pos) = find_from(text, from, ".seal(") {
        from = pos + 1;
        if f.in_test(pos) {
            continue;
        }
        let open = pos + ".seal".len();
        let close = match_paren(bytes, open).unwrap_or(bytes.len().saturating_sub(1));
        let args = &text[open..close.min(text.len())];
        if ["ChunkStart", "DeltaStart", "encode_chunk"]
            .iter()
            .any(|w| !find_word(args, w).is_empty())
        {
            out.push(RawViolation {
                rule: "wire-framing",
                offset: pos + 1,
            });
        }
    }
    out
}

/// **secret-hygiene** — four sub-checks: no derived `Debug` and no
/// `Display` on secret-bearing types, no secret field in a formatting
/// macro, no secret identifier in a telemetry-sink call (trace event
/// fields and metric labels are exported to the untrusted host), and
/// (cross-file, resolved by the driver) every key type has a zeroizing
/// `Drop`.
pub fn secret_hygiene(f: &SourceFile) -> (Vec<RawViolation>, CrossFileFacts) {
    let text = &f.scrubbed;
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut facts = CrossFileFacts::default();

    // Derived Debug on a registry type.
    let mut from = 0usize;
    while let Some(pos) = find_from(text, from, "#[derive(") {
        from = pos + 1;
        let open = pos + "#[derive".len();
        let Some(close) = match_paren(bytes, open) else {
            continue;
        };
        let derives_debug = !find_word(&text[open..close], "Debug").is_empty();
        // Walk past `)]`, any further attributes, and visibility to the
        // item keyword.
        let mut j = close + 2;
        loop {
            j = skip_ws(bytes, j);
            if bytes.get(j) == Some(&b'#') {
                match find_from(text, j, "]") {
                    Some(e) => j = e + 1,
                    None => break,
                }
                continue;
            }
            break;
        }
        let Some((mut kw, mut e)) = read_ident(text, j) else {
            continue;
        };
        if kw == "pub" {
            let k = skip_ws(bytes, e);
            if bytes.get(k) == Some(&b'(') {
                e = match_paren(bytes, k).map_or(e, |c| c + 1);
            }
            match read_ident(text, e) {
                Some((w, e2)) => {
                    kw = w;
                    e = e2;
                }
                None => continue,
            }
        }
        if kw != "struct" && kw != "enum" {
            continue;
        }
        let Some((name, _)) = read_ident(text, e) else {
            continue;
        };
        if derives_debug && NO_PRINT_TYPES.contains(&name) && !f.in_test(pos) {
            out.push(RawViolation {
                rule: "secret-hygiene",
                offset: pos,
            });
        }
    }

    // `Display for <SecretType>`.
    let mut from = 0usize;
    while let Some(pos) = find_from(text, from, "Display for ") {
        from = pos + 1;
        if pos > 0 && is_ident(bytes[pos - 1]) {
            continue;
        }
        if let Some((name, _)) = read_ident(text, pos + "Display for ".len() - 1) {
            if NO_PRINT_TYPES.contains(&name) && !f.in_test(pos) {
                out.push(RawViolation {
                    rule: "secret-hygiene",
                    offset: pos,
                });
            }
        }
    }

    // Secret field inside a formatting/logging macro call.
    for mac in FORMAT_MACROS {
        for pos in find_word(text, mac) {
            if bytes.get(pos + mac.len()) != Some(&b'!') {
                continue;
            }
            let open = skip_ws(bytes, pos + mac.len() + 1);
            if bytes.get(open) != Some(&b'(') {
                continue;
            }
            let close = match_paren(bytes, open).unwrap_or(bytes.len().saturating_sub(1));
            let args = &text[open..close.min(text.len())];
            for field in SECRET_FIELDS {
                for fpos in find_word(args, field) {
                    if !f.in_test(open + fpos) {
                        out.push(RawViolation {
                            rule: "secret-hygiene",
                            offset: open + fpos,
                        });
                    }
                }
            }
        }
    }

    // Secret identifier passed to a telemetry sink. Anchored on a
    // method call (`.bump_counter(...)` etc.) so definitions of the
    // sinks themselves don't fire.
    for sink in TELEMETRY_SINKS {
        for pos in find_word(text, sink) {
            if pos == 0 || bytes[pos - 1] != b'.' {
                continue;
            }
            let open = skip_ws(bytes, pos + sink.len());
            if bytes.get(open) != Some(&b'(') {
                continue;
            }
            let close = match_paren(bytes, open).unwrap_or(bytes.len().saturating_sub(1));
            let args = &text[open..close.min(text.len())];
            for secret in SECRET_FIELDS.iter().chain(TELEMETRY_SECRET_ARGS.iter()) {
                for fpos in find_word(args, secret) {
                    if !f.in_test(open + fpos) {
                        out.push(RawViolation {
                            rule: "secret-hygiene",
                            offset: open + fpos,
                        });
                    }
                }
            }
        }
    }

    // Cross-file facts: key-type definitions and Drop impls.
    for name in MUST_ZEROIZE_TYPES {
        for pos in find_word(text, &format!("struct {name}")) {
            if !f.in_test(pos) {
                facts.zeroize_defs.push((name.to_string(), pos));
            }
        }
        if !find_word(text, &format!("Drop for {name}")).is_empty() {
            facts.drop_impls.push(name.to_string());
        }
    }

    (out, facts)
}
