//! Workspace walking and per-file source model.
//!
//! A [`SourceFile`] bundles everything a rule needs: the raw text (for
//! snippets), the scrubbed text (for matching), the annotations, a
//! line-offset table, and the spans of test code. Rules that only apply
//! to production code call [`SourceFile::in_test`] to skip `#[cfg(test)]`
//! modules, `#[test]` functions, and files under `tests/` / `benches/`.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::scrub::{scrub, Annotation};

/// One parsed source file ready for rule matching.
pub struct SourceFile {
    /// Path relative to the scan root, with forward slashes.
    pub rel_path: String,
    /// Original file contents (snippets are cut from here).
    pub raw: String,
    /// Comment/string-blanked contents, same byte length as `raw`.
    pub scrubbed: String,
    /// All `mig-lint: allow(...)` annotations in the file.
    pub annotations: Vec<Annotation>,
    /// Byte offset where each line starts (index 0 = line 1).
    line_starts: Vec<usize>,
    /// Byte ranges of `#[cfg(test)]` / `#[test]` items.
    test_spans: Vec<(usize, usize)>,
    /// True for files under `tests/` or `benches/` directories.
    whole_file_test: bool,
}

impl SourceFile {
    /// Reads and parses the file at `root.join(rel)`.
    pub fn load(root: &Path, rel: &Path) -> io::Result<Self> {
        let raw = fs::read_to_string(root.join(rel))?;
        let rel_path = rel
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        Ok(Self::from_source(rel_path, raw))
    }

    /// Parses in-memory source, used by unit tests and fixtures.
    pub fn from_source(rel_path: String, raw: String) -> Self {
        let scrubbed = scrub(&raw);
        let mut line_starts = vec![0usize];
        for (i, b) in raw.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        let test_spans = find_test_spans(&scrubbed.text);
        // Fixture files sit under `tests/fixtures/` but model production
        // code — they must stay visible to the rules.
        let whole_file_test = !rel_path.contains("fixtures/")
            && rel_path.split('/').any(|c| c == "tests" || c == "benches");
        SourceFile {
            rel_path,
            raw,
            scrubbed: scrubbed.text,
            annotations: scrubbed.annotations,
            line_starts,
            test_spans,
            whole_file_test,
        }
    }

    /// 1-indexed line containing byte `offset`.
    pub fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    /// The raw text of 1-indexed `line`, trimmed, for report snippets.
    pub fn line_text(&self, line: usize) -> &str {
        let start = self.line_starts[line - 1];
        let end = self
            .line_starts
            .get(line)
            .map_or(self.raw.len(), |&e| e.saturating_sub(1));
        self.raw[start..end.max(start)].trim()
    }

    /// Whether byte `offset` falls inside test-only code.
    pub fn in_test(&self, offset: usize) -> bool {
        self.whole_file_test
            || self
                .test_spans
                .iter()
                .any(|&(s, e)| offset >= s && offset < e)
    }
}

/// Finds the byte spans of `#[cfg(test)]` and `#[test]` items by brace
/// matching on scrubbed text. If no `{` appears within a short window
/// (e.g. the attribute sits on a `use` or a `;`-terminated item), the
/// span covers just the attribute.
fn find_test_spans(scrubbed: &str) -> Vec<(usize, usize)> {
    let bytes = scrubbed.as_bytes();
    let mut spans = Vec::new();
    let mut from = 0usize;
    while let Some(pos) = find_from(scrubbed, from, "#[") {
        from = pos + 2;
        let rest = &scrubbed[pos..];
        let is_test_attr = {
            let after = rest[2..].trim_start();
            after.starts_with("cfg(test)")
                || after.starts_with("test]")
                || after.starts_with("test)")
        };
        if !is_test_attr {
            continue;
        }
        // Skip past the attribute's closing `]`, then any further
        // attributes, then find the item's opening brace.
        let attr_end = match find_from(scrubbed, pos, "]") {
            Some(e) => e + 1,
            None => break,
        };
        let mut j = attr_end;
        let limit = (j + 500).min(bytes.len());
        let mut open = None;
        while j < limit {
            match bytes[j] {
                b'{' => {
                    open = Some(j);
                    break;
                }
                b';' => break,
                _ => j += 1,
            }
        }
        if let Some(open) = open {
            let end = match_brace(bytes, open).unwrap_or(bytes.len());
            spans.push((pos, end + 1));
            from = end + 1;
        } else {
            spans.push((pos, attr_end));
        }
    }
    spans
}

/// Index of the `}` matching the `{` at `open` in scrubbed bytes.
pub fn match_brace(bytes: &[u8], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (k, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

/// Index of the `)` matching the `(` at `open` in scrubbed bytes.
pub fn match_paren(bytes: &[u8], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (k, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

/// `str::find` starting at byte `from`, returning an absolute offset.
pub fn find_from(haystack: &str, from: usize, needle: &str) -> Option<usize> {
    haystack.get(from..)?.find(needle).map(|p| from + p)
}

/// Recursively collects the `.rs` files under `root`, skipping `target`,
/// `.git`, and (unless `include_fixtures`) the lint fixture corpus. The
/// result is sorted for deterministic reports.
pub fn walk_rs_files(root: &Path, include_fixtures: bool) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name == ".git" {
                    continue;
                }
                if !include_fixtures && path.ends_with("crates/lint/tests/fixtures") {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                if let Ok(rel) = path.strip_prefix(root) {
                    out.push(rel.to_path_buf());
                }
            }
        }
    }
    out.sort();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_of_maps_offsets() {
        let f = SourceFile::from_source("a.rs".into(), "ab\ncd\nef".into());
        assert_eq!(f.line_of(0), 1);
        assert_eq!(f.line_of(2), 1);
        assert_eq!(f.line_of(3), 2);
        assert_eq!(f.line_of(6), 3);
        assert_eq!(f.line_text(2), "cd");
    }

    #[test]
    fn cfg_test_module_is_a_test_span() {
        let src = "fn a() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n fn b() { y.unwrap(); }\n}\n";
        let f = SourceFile::from_source("a.rs".into(), src.into());
        let prod = src.find("x.unwrap").unwrap();
        let test = src.find("y.unwrap").unwrap();
        assert!(!f.in_test(prod));
        assert!(f.in_test(test));
    }

    #[test]
    fn test_fn_attribute_is_a_test_span() {
        let src = "#[test]\nfn t() { z.unwrap(); }\nfn p() { w.unwrap(); }\n";
        let f = SourceFile::from_source("a.rs".into(), src.into());
        assert!(f.in_test(src.find("z.unwrap").unwrap()));
        assert!(!f.in_test(src.find("w.unwrap").unwrap()));
    }

    #[test]
    fn tests_dir_is_whole_file_test() {
        let f = SourceFile::from_source("crates/core/tests/x.rs".into(), "fn a() {}".into());
        assert!(f.in_test(0));
    }
}
