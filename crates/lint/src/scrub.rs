//! Comment- and string-stripping scrubber.
//!
//! The rule engine works on a *scrubbed* copy of each source file: every
//! byte inside a comment, string literal, or character literal is replaced
//! with a space, while delimiters, newlines, and byte offsets are preserved
//! exactly. Identifier and operator scans on the scrubbed text therefore
//! cannot be fooled by `"_ =>"` appearing inside a string or a commented-out
//! `unwrap()`, and brace matching sees only real code braces.
//!
//! `mig-lint: allow(...)` annotations live in comments, so they are parsed
//! *before* the comment bytes are blanked.

/// One parsed `// mig-lint: allow(<rule>, "<reason>")` annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Annotation {
    /// The rule the annotation suppresses.
    pub rule: String,
    /// The justification. An empty reason does not suppress anything.
    pub reason: String,
    /// 1-indexed line the annotation appears on.
    pub line: usize,
}

/// Scrubber output: the blanked source plus the annotations found.
pub struct Scrubbed {
    /// Same length as the input; comments/strings/chars blanked to spaces.
    pub text: String,
    /// All well-formed annotations, in file order.
    pub annotations: Vec<Annotation>,
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Parses `mig-lint: allow(rule, "reason")` out of one comment's text.
/// The reason is a quoted string and may itself contain parentheses.
fn parse_annotation(comment: &str, line: usize) -> Option<Annotation> {
    let rest = comment.split("mig-lint:").nth(1)?;
    let rest = rest.trim_start().strip_prefix("allow(")?;
    let sep = rest.find([',', ')'])?;
    let rule = rest[..sep].trim().to_string();
    let reason = if rest.as_bytes()[sep] == b',' {
        let after = rest[sep + 1..].trim_start();
        match after.strip_prefix('"') {
            Some(quoted) => quoted[..quoted.find('"')?].to_string(),
            None => after[..after.find(')')?].trim().to_string(),
        }
    } else {
        String::new()
    };
    Some(Annotation { rule, reason, line })
}

/// Scrubs `src`, returning the blanked text and the annotations.
///
/// Handles line comments, nested block comments, string literals (plain,
/// raw, byte, C), and character literals vs. lifetimes.
pub fn scrub(src: &str) -> Scrubbed {
    let bytes = src.as_bytes();
    let mut out = bytes.to_vec();
    let mut annotations = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let end = bytes[i..]
                    .iter()
                    .position(|&c| c == b'\n')
                    .map_or(bytes.len(), |p| i + p);
                if let Ok(text) = std::str::from_utf8(&bytes[i..end]) {
                    if let Some(a) = parse_annotation(text, line) {
                        annotations.push(a);
                    }
                }
                blank(&mut out, &mut line, i, end);
                i = end;
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                if let Ok(text) = std::str::from_utf8(&bytes[start..i]) {
                    let first_line = line;
                    if let Some(a) = parse_annotation(text, first_line) {
                        annotations.push(a);
                    }
                }
                blank(&mut out, &mut line, start, i);
            }
            b'"' => {
                i = scrub_string(bytes, &mut out, &mut line, i);
            }
            b'r' | b'b' | b'c' if !prev_is_ident(bytes, i) => {
                // Possible raw/byte/C string prefix: r" r#" b" br" b' c".
                let mut j = i + 1;
                let mut raw = b == b'r';
                if b == b'b' && bytes.get(j) == Some(&b'r') {
                    raw = true;
                    j += 1;
                }
                let mut hashes = 0usize;
                if raw {
                    while bytes.get(j) == Some(&b'#') {
                        hashes += 1;
                        j += 1;
                    }
                }
                if bytes.get(j) == Some(&b'"') {
                    if raw {
                        i = scrub_raw_string(bytes, &mut out, &mut line, i, j, hashes);
                    } else {
                        i = scrub_string(bytes, &mut out, &mut line, j);
                    }
                } else if b == b'b' && bytes.get(j) == Some(&b'\'') {
                    i = scrub_char(bytes, &mut out, &mut line, j);
                } else {
                    i += 1;
                }
            }
            b'\'' if !prev_is_ident(bytes, i) => {
                // Distinguish 'a' (char) from 'a (lifetime): a char literal
                // either starts with a backslash or closes after one char.
                let next = bytes.get(i + 1).copied();
                let after = bytes.get(i + 2).copied();
                if next == Some(b'\\') || (after == Some(b'\'') && next != Some(b'\'')) {
                    i = scrub_char(bytes, &mut out, &mut line, i);
                } else {
                    i += 1;
                }
            }
            _ => {
                i += 1;
            }
        }
    }

    Scrubbed {
        text: String::from_utf8_lossy(&out).into_owned(),
        annotations,
    }
}

fn prev_is_ident(bytes: &[u8], i: usize) -> bool {
    i > 0 && is_ident_byte(bytes[i - 1])
}

/// Scrubs a plain string starting at the opening quote `open`; returns the
/// index just past the closing quote.
fn scrub_string(bytes: &[u8], out: &mut [u8], line: &mut usize, open: usize) -> usize {
    let mut i = open + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => {
                blank(out, line, open + 1, i.min(bytes.len()));
                return i + 1;
            }
            _ => i += 1,
        }
    }
    blank(out, line, open + 1, bytes.len());
    bytes.len()
}

/// Scrubs a raw string whose opening quote is at `quote` with `hashes`
/// `#`s; returns the index just past the closing delimiter.
fn scrub_raw_string(
    bytes: &[u8],
    out: &mut [u8],
    line: &mut usize,
    _start: usize,
    quote: usize,
    hashes: usize,
) -> usize {
    let mut i = quote + 1;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let mut ok = true;
            for k in 0..hashes {
                if bytes.get(i + 1 + k) != Some(&b'#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                blank(out, line, quote + 1, i);
                return i + 1 + hashes;
            }
        }
        i += 1;
    }
    blank(out, line, quote + 1, bytes.len());
    bytes.len()
}

/// Scrubs a char literal starting at the opening `'`; returns the index
/// just past the closing `'`.
fn scrub_char(bytes: &[u8], out: &mut [u8], line: &mut usize, open: usize) -> usize {
    let mut i = open + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'\'' => {
                blank(out, line, open + 1, i.min(bytes.len()));
                return i + 1;
            }
            _ => i += 1,
        }
    }
    bytes.len()
}

/// Blanks `out[from..to]`, keeping newlines (byte offsets must stay
/// stable) and counting the lines passed over.
fn blank(out: &mut [u8], line: &mut usize, from: usize, to: usize) {
    for b in &mut out[from..to] {
        if *b == b'\n' {
            *line += 1;
        } else {
            *b = b' ';
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let src = "let x = \"_ => unwrap()\"; // unwrap()\nlet y = 1;";
        let s = scrub(src);
        assert!(!s.text.contains("unwrap"));
        assert!(s.text.contains("let x ="));
        assert!(s.text.contains("let y = 1;"));
        assert_eq!(s.text.len(), src.len());
    }

    #[test]
    fn nested_block_comments() {
        let s = scrub("a /* one /* two */ still */ b");
        assert!(s.text.starts_with('a'));
        assert!(s.text.ends_with('b'));
        assert!(!s.text.contains("two"));
        assert!(!s.text.contains("still"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let s = scrub("let r = r#\"panic!(\"no\")\"#;");
        assert!(!s.text.contains("panic"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let s = scrub("fn f<'a>(x: &'a str) { let c = '{'; let d = '\\n'; }");
        assert!(s.text.contains("'a>"));
        assert!(!s.text.contains("'{'"));
        assert!(s.text.contains("fn f<"));
    }

    #[test]
    fn newlines_preserved_in_blanked_regions() {
        let s = scrub("/* a\nb\nc */ fn x() {}");
        assert_eq!(s.text.matches('\n').count(), 2);
        assert!(s.text.contains("fn x()"));
    }

    #[test]
    fn annotations_parsed_with_line_numbers() {
        let src = "fn a() {}\n// mig-lint: allow(enclave-panic, \"bounded above\")\nfn b() {}\n";
        let s = scrub(src);
        assert_eq!(s.annotations.len(), 1);
        let a = &s.annotations[0];
        assert_eq!(a.rule, "enclave-panic");
        assert_eq!(a.reason, "bounded above");
        assert_eq!(a.line, 2);
    }

    #[test]
    fn annotation_without_reason_has_empty_reason() {
        let s = scrub("// mig-lint: allow(ct-compare)\n");
        assert_eq!(s.annotations[0].reason, "");
    }
}
