//! **mig-lint** — domain-specific static analysis for the sgx-migrate
//! workspace.
//!
//! Generic lints (clippy) can't see this codebase's security invariants:
//! that digest comparisons must be constant-time, that enclave-resident
//! code must not panic, that key material must not print and must
//! zeroize, that MeToMe frames are framed in exactly one place, and that
//! the migration FSMs match every state by name. mig-lint enforces those
//! five with a hand-rolled scrubbing tokenizer — no syntax-tree crate,
//! no network, no dependencies.
//!
//! Findings can be suppressed per-site with
//! `// mig-lint: allow(<rule>, "<reason>")` on the same or preceding
//! line; an empty reason does not suppress. See the workspace README's
//! *Static analysis* section for the rule catalogue.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;
pub mod rules;
pub mod scan;
pub mod scrub;

use std::io;
use std::path::{Path, PathBuf};

use report::{Report, Violation};
use rules::{CrossFileFacts, RawViolation};
use scan::SourceFile;

/// Lints every `.rs` file under `root` except the fixture corpus.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let files = scan::walk_rs_files(root, false)?;
    lint_files(root, &files)
}

/// Lints the given files (paths relative to `root`).
pub fn lint_files(root: &Path, files: &[PathBuf]) -> io::Result<Report> {
    let mut report = Report::default();
    let mut defs: Vec<(usize, String, usize)> = Vec::new(); // (file idx, type, offset)
    let mut drops: Vec<String> = Vec::new();
    let mut sources = Vec::with_capacity(files.len());

    for rel in files {
        let file = SourceFile::load(root, rel)?;
        let mut raw: Vec<RawViolation> = Vec::new();
        raw.extend(rules::ct_compare(&file));
        raw.extend(rules::enclave_panic(&file));
        raw.extend(rules::no_wildcard_fsm(&file));
        raw.extend(rules::wire_framing(&file));
        let (hygiene, facts) = rules::secret_hygiene(&file);
        raw.extend(hygiene);
        let idx = sources.len();
        record_facts(&mut defs, &mut drops, idx, facts);
        for rv in raw {
            report.violations.push(resolve(&file, rv.rule, rv.offset));
        }
        sources.push(file);
    }

    // Cross-file pass: a must-zeroize type with no `impl Drop` anywhere
    // in the scanned set leaves key material in freed memory.
    for (idx, name, offset) in defs {
        if !drops.iter().any(|d| d == &name) {
            report
                .violations
                .push(resolve(&sources[idx], "secret-hygiene", offset));
        }
    }

    report.files_scanned = sources.len();
    report.finish();
    Ok(report)
}

fn record_facts(
    defs: &mut Vec<(usize, String, usize)>,
    drops: &mut Vec<String>,
    idx: usize,
    facts: CrossFileFacts,
) {
    for (name, offset) in facts.zeroize_defs {
        defs.push((idx, name, offset));
    }
    drops.extend(facts.drop_impls);
}

/// Maps a raw hit to a [`Violation`], applying annotations: an
/// `allow(rule, "reason")` on the finding's line or the line above
/// suppresses it, but only with a non-empty reason.
fn resolve(file: &SourceFile, rule: &'static str, offset: usize) -> Violation {
    let line = file.line_of(offset);
    let ann = file
        .annotations
        .iter()
        .find(|a| a.rule == rule && (a.line == line || a.line + 1 == line) && !a.reason.is_empty());
    Violation {
        rule,
        file: file.rel_path.clone(),
        line,
        snippet: file.line_text(line).to_string(),
        annotated: ann.is_some(),
        reason: ann.map(|a| a.reason.clone()).unwrap_or_default(),
    }
}

/// One self-test failure message.
pub type SelfTestError = String;

/// Runs the fixture self-test against the workspace `root`: for every
/// rule's fixture directory under `crates/lint/tests/fixtures/`,
/// `bad.rs` must produce at least one unannotated violation of that
/// rule, `clean.rs` none, and `allowed.rs` only annotated ones. This is
/// what CI runs to prove the rules still fire.
pub fn self_test(root: &Path) -> io::Result<Vec<SelfTestError>> {
    let mut errors = Vec::new();
    for rule in rules::RULES {
        for case in ["bad.rs", "clean.rs", "allowed.rs"] {
            let rel = PathBuf::from("crates/lint/tests/fixtures")
                .join(rule)
                .join(case);
            if !root.join(&rel).is_file() {
                errors.push(format!("missing fixture {}", rel.display()));
                continue;
            }
            let report = lint_files(root, std::slice::from_ref(&rel))?;
            let of_rule: Vec<_> = report
                .violations
                .iter()
                .filter(|v| v.rule == rule)
                .collect();
            let unannotated = of_rule.iter().filter(|v| !v.annotated).count();
            match case {
                "bad.rs" => {
                    if unannotated == 0 {
                        errors.push(format!("{rule}/bad.rs: expected an unannotated violation"));
                    }
                }
                "clean.rs" => {
                    if !of_rule.is_empty() {
                        errors.push(format!(
                            "{rule}/clean.rs: expected no violations, got {} at line {}",
                            of_rule.len(),
                            of_rule[0].line
                        ));
                    }
                }
                _ => {
                    if of_rule.is_empty() {
                        errors.push(format!("{rule}/allowed.rs: expected annotated violations"));
                    } else if unannotated != 0 {
                        errors.push(format!(
                            "{rule}/allowed.rs: {unannotated} violations not suppressed"
                        ));
                    }
                }
            }
        }
    }
    Ok(errors)
}
