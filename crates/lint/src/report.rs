//! Violation model and report rendering.
//!
//! `LINT.json` is written with a hand-rolled serializer (the workspace is
//! offline; no serde). The format is stable: violations sorted by
//! `(file, line, rule)`, one object per violation, plus a summary block.

use std::fmt::Write as _;

/// One resolved lint finding.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Rule identifier, e.g. `enclave-panic`.
    pub rule: &'static str,
    /// File path relative to the scan root, forward slashes.
    pub file: String,
    /// 1-indexed line of the finding.
    pub line: usize,
    /// Trimmed source line, for the report.
    pub snippet: String,
    /// True if a well-formed `allow` annotation with a non-empty reason
    /// covers this line.
    pub annotated: bool,
    /// The annotation's reason (empty when unannotated).
    pub reason: String,
}

/// The outcome of a lint run.
#[derive(Default)]
pub struct Report {
    /// All findings, sorted by `(file, line, rule)`.
    pub violations: Vec<Violation>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Sorts findings into the stable report order.
    pub fn finish(&mut self) {
        self.violations
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    }

    /// Findings not covered by an annotation — these fail the build.
    pub fn unannotated(&self) -> impl Iterator<Item = &Violation> {
        self.violations.iter().filter(|v| !v.annotated)
    }

    /// Human-readable report.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        let unannotated = self.unannotated().count();
        let allowed = self.violations.len() - unannotated;
        for v in &self.violations {
            if v.annotated {
                continue;
            }
            let _ = writeln!(out, "error[{}]: {}:{}", v.rule, v.file, v.line);
            let _ = writeln!(out, "    {}", v.snippet);
        }
        for v in &self.violations {
            if !v.annotated {
                continue;
            }
            let _ = writeln!(
                out,
                "allowed[{}]: {}:{} ({})",
                v.rule, v.file, v.line, v.reason
            );
        }
        let _ = writeln!(
            out,
            "mig-lint: {} files scanned, {} violations ({} allowed, {} unannotated)",
            self.files_scanned,
            self.violations.len(),
            allowed,
            unannotated
        );
        out
    }

    /// The stable `LINT.json` document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"snippet\": {}, \"annotated\": {}, \"reason\": {}}}",
                json_str(v.rule),
                json_str(&v.file),
                v.line,
                json_str(&v.snippet),
                v.annotated,
                json_str(&v.reason)
            );
        }
        if !self.violations.is_empty() {
            out.push_str("\n  ");
        }
        let _ = write!(
            out,
            "],\n  \"summary\": {{\"files_scanned\": {}, \"total\": {}, \"unannotated\": {}}}\n}}\n",
            self.files_scanned,
            self.violations.len(),
            self.unannotated().count()
        );
        out
    }
}

/// JSON string literal with the required escapes.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(rule: &'static str, file: &str, line: usize, annotated: bool) -> Violation {
        Violation {
            rule,
            file: file.into(),
            line,
            snippet: "x".into(),
            annotated,
            reason: if annotated {
                "why".into()
            } else {
                String::new()
            },
        }
    }

    #[test]
    fn report_sorts_and_counts() {
        let mut r = Report {
            violations: vec![
                v("enclave-panic", "b.rs", 2, false),
                v("ct-compare", "a.rs", 9, true),
                v("ct-compare", "b.rs", 2, false),
            ],
            files_scanned: 3,
        };
        r.finish();
        assert_eq!(r.violations[0].file, "a.rs");
        assert_eq!(r.violations[1].rule, "ct-compare");
        assert_eq!(r.unannotated().count(), 2);
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let mut r = Report {
            violations: vec![Violation {
                rule: "ct-compare",
                file: "a.rs".into(),
                line: 1,
                snippet: "if a == \"b\\n\" {".into(),
                annotated: false,
                reason: String::new(),
            }],
            files_scanned: 1,
        };
        r.finish();
        let j = r.to_json();
        assert!(j.contains("\\\"b\\\\n\\\""));
        assert!(j.contains("\"unannotated\": 1"));
        assert!(j.contains("\"files_scanned\": 1"));
    }
}
