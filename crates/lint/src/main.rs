//! mig-lint CLI.
//!
//! ```text
//! cargo run -p mig-lint                  # lint the workspace, write LINT.json
//! cargo run -p mig-lint -- --self-test   # prove each rule fires on its fixtures
//! cargo run -p mig-lint -- --root DIR --json OUT.json
//! ```
//!
//! Exit codes: 0 clean (or all findings annotated), 1 unannotated
//! violations or self-test failure, 2 usage error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: mig-lint [--root DIR] [--json FILE] [--self-test]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json: Option<PathBuf> = None;
    let mut run_self_test = false;

    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--root" => match argv.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage(),
            },
            "--json" => match argv.next() {
                Some(v) => json = Some(PathBuf::from(v)),
                None => return usage(),
            },
            "--self-test" => run_self_test = true,
            "--help" | "-h" => {
                println!("usage: mig-lint [--root DIR] [--json FILE] [--self-test]");
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }

    // Default root: the workspace (two levels above this crate).
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .unwrap_or_else(|_| PathBuf::from("."))
    });

    if run_self_test {
        let errors = match mig_lint::self_test(&root) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("mig-lint: self-test failed to run: {e}");
                return ExitCode::FAILURE;
            }
        };
        if errors.is_empty() {
            println!("mig-lint self-test: all rules fire on their fixtures");
            return ExitCode::SUCCESS;
        }
        for e in &errors {
            eprintln!("self-test failure: {e}");
        }
        return ExitCode::FAILURE;
    }

    let report = match mig_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("mig-lint: scan failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", report.render_human());

    let json_path = json.unwrap_or_else(|| root.join("LINT.json"));
    if let Err(e) = std::fs::write(&json_path, report.to_json()) {
        eprintln!("mig-lint: cannot write {}: {e}", json_path.display());
        return ExitCode::FAILURE;
    }

    if report.unannotated().count() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
