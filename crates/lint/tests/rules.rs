//! Fixture-driven integration tests for the five mig-lint rules, plus
//! the workspace self-scan that keeps the codebase lint-clean. These are
//! the same checks CI runs via `cargo run -p mig-lint -- --self-test`.

use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

/// For every rule: `bad.rs` fires unannotated, `clean.rs` is silent,
/// `allowed.rs` fires but is fully suppressed by annotations.
#[test]
fn every_rule_fires_on_its_fixtures() {
    let errors = mig_lint::self_test(&workspace_root()).expect("fixtures readable");
    assert!(errors.is_empty(), "self-test failures: {errors:#?}");
}

/// The workspace itself must carry no unannotated violations, and every
/// suppression must state a reason.
#[test]
fn workspace_self_scan_is_clean() {
    let report = mig_lint::lint_workspace(&workspace_root()).expect("workspace readable");
    let bad: Vec<String> = report
        .unannotated()
        .map(|v| format!("{}:{} [{}] {}", v.file, v.line, v.rule, v.snippet))
        .collect();
    assert!(
        bad.is_empty(),
        "unannotated violations:\n{}",
        bad.join("\n")
    );
    for v in &report.violations {
        assert!(
            !v.reason.is_empty(),
            "{}:{} suppressed without a reason",
            v.file,
            v.line
        );
    }
    // Sanity: the scan actually covered the workspace, not an empty dir.
    assert!(
        report.files_scanned > 50,
        "only {} files scanned",
        report.files_scanned
    );
}

/// The JSON report is stable: sorted by (file, line, rule) and carrying
/// the summary block tooling keys on.
#[test]
fn json_report_is_stable_and_sorted() {
    let report = mig_lint::lint_workspace(&workspace_root()).expect("workspace readable");
    let keys: Vec<_> = report
        .violations
        .iter()
        .map(|v| (v.file.clone(), v.line, v.rule))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "violations not in (file, line, rule) order");

    let json = report.to_json();
    assert!(json.contains("\"summary\""));
    assert!(json.contains("\"files_scanned\""));
    assert!(json.contains("\"unannotated\": 0"));
}

/// A fixture seeded with a violation must make the whole run fail —
/// this is what the CI self-test step relies on.
#[test]
fn bad_fixture_fails_a_direct_scan() {
    let root = workspace_root();
    let rel = PathBuf::from("crates/lint/tests/fixtures/enclave-panic/bad.rs");
    let report = mig_lint::lint_files(&root, std::slice::from_ref(&rel)).expect("fixture readable");
    assert!(
        report.unannotated().count() >= 3,
        "expected indexing + unwrap + expect + panic hits, got {:#?}",
        report
            .violations
            .iter()
            .map(|v| (v.line, v.rule))
            .collect::<Vec<_>>()
    );
}
