// Fixture: an annotated (suppressed) out-of-band framing call.

pub fn resend_start(ch: &mut Channel, frame: &mut Vec<u8>) -> Vec<u8> {
    // mig-lint: allow(wire-framing, "fixture: annotated legacy call site kept for the test corpus")
    pad_frame(frame, 4096);
    ch.seal(frame)
}
