// Fixture: compliant frame construction — everything routes through
// the me/wire.rs sealed constructors, which pad to the wire cell.

pub fn send_start(ch: &mut Channel, stream: &Stream, cell: u32) -> Vec<u8> {
    wire::seal_lead(ch, stream, cell)
}

pub fn send_chunk(ch: &mut Channel, stream: &Stream, idx: u32, cell: u32) -> Vec<u8> {
    wire::seal_chunk(ch, stream, idx, cell)
}

pub fn budget(frame_len: usize) -> u32 {
    wire::cell_for_frame_len(frame_len)
}
