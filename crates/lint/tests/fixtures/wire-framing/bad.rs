// Fixture: true positives for wire-framing — building and sealing
// MeToMe stream frames outside me/wire.rs bypasses the cell padding
// that keeps every frame towards a destination the same size.

pub fn send_start(ch: &mut Channel, frame: &mut Vec<u8>) -> Vec<u8> {
    pad_frame(frame, 4096);
    ch.seal(frame)
}

pub fn send_announce(ch: &mut Channel, total: u32) -> Vec<u8> {
    ch.seal(&MeToMe::ChunkStart { total }.to_bytes())
}

pub fn send_chunk(stream: &Stream, idx: u32, buf: &mut Vec<u8>) {
    encode_chunk(stream, idx, buf);
}
