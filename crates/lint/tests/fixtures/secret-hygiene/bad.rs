// Fixture: true positives for secret-hygiene — a key type deriving
// Debug, key material reaching a logging macro, secrets flowing into
// telemetry sinks, and no zeroizing Drop.

#[derive(Clone, Debug)]
pub struct FixtureSessionKey {
    msk: [u8; 16],
}

pub fn trace_key(key: &FixtureSessionKey) {
    println!("session msk = {:?}", key.msk);
}

pub fn leak_into_telemetry(registry: &mut MetricsRegistry, key: &FixtureSessionKey, nonce: [u8; 16]) {
    // The raw transfer nonce must never label a metric, and key bytes
    // must never become a gauge value.
    registry.bump_counter(&label_for(nonce), 1);
    registry.set_gauge("fixture.key_byte", u64::from(key.msk[0]));
}
