// Fixture: true positives for secret-hygiene — a key type deriving
// Debug, key material reaching a logging macro, and no zeroizing Drop.

#[derive(Clone, Debug)]
pub struct FixtureSessionKey {
    msk: [u8; 16],
}

pub fn trace_key(key: &FixtureSessionKey) {
    println!("session msk = {:?}", key.msk);
}
