// Fixture: an annotated (suppressed) Debug derive on a key type.

// mig-lint: allow(secret-hygiene, "fixture: annotated legacy derive kept for the test corpus")
#[derive(Debug)]
pub struct FixtureSessionKey {
    msk: [u8; 16],
}

impl Drop for FixtureSessionKey {
    fn drop(&mut self) {
        self.msk = [0u8; 16];
    }
}

pub fn gauge_sealed_len(registry: &mut MetricsRegistry, sealed: &[u8]) {
    // mig-lint: allow(secret-hygiene, "fixture: sealed *length* is public wire geometry, not payload bytes")
    registry.set_gauge("fixture.sealed_len", sealed.len() as u64);
}
