// Fixture: an annotated (suppressed) Debug derive on a key type.

// mig-lint: allow(secret-hygiene, "fixture: annotated legacy derive kept for the test corpus")
#[derive(Debug)]
pub struct FixtureSessionKey {
    msk: [u8; 16],
}

impl Drop for FixtureSessionKey {
    fn drop(&mut self) {
        self.msk = [0u8; 16];
    }
}
