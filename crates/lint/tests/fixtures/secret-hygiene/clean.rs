// Fixture: compliant secret handling — redacting manual Debug, a
// zeroizing Drop, no key material near a formatting macro, and
// telemetry labelled by public trace ids only.

pub struct FixtureSessionKey {
    msk: [u8; 16],
}

impl Drop for FixtureSessionKey {
    fn drop(&mut self) {
        mig_crypto::zeroize::zeroize_bytes(&mut self.msk);
    }
}

impl core::fmt::Debug for FixtureSessionKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("FixtureSessionKey").finish_non_exhaustive()
    }
}

pub fn record_release(registry: &mut MetricsRegistry, trace: [u8; 8], released_ns: u64) {
    // Public quantities only: the one-way trace id and a virtual-time
    // duration. No nonce, no key material, no sealed payload bytes.
    registry.bump_counter("me.releases", 1);
    registry.observe_ns("me.time_to_release_ns", BOUNDS, released_ns);
    let _ = trace;
}
