// Fixture: compliant secret handling — redacting manual Debug, a
// zeroizing Drop, and no key material near a formatting macro.

pub struct FixtureSessionKey {
    msk: [u8; 16],
}

impl Drop for FixtureSessionKey {
    fn drop(&mut self) {
        mig_crypto::zeroize::zeroize_bytes(&mut self.msk);
    }
}

impl core::fmt::Debug for FixtureSessionKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("FixtureSessionKey").finish_non_exhaustive()
    }
}
