// Fixture: compliant FSM matches — every state named, no catch-alls.

pub enum SenderFsm {
    Idle,
    Streaming,
    Complete,
}

impl SenderFsm {
    pub fn is_active(&self) -> bool {
        match self {
            SenderFsm::Streaming => true,
            SenderFsm::Idle | SenderFsm::Complete => false,
        }
    }
}

pub enum ReceiverFsm {
    Waiting,
    Staged,
}

impl ReceiverFsm {
    pub fn describe(&self) -> &'static str {
        match self {
            ReceiverFsm::Waiting => "waiting",
            ReceiverFsm::Staged => "staged",
        }
    }
}
