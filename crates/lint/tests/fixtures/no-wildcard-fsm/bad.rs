// Fixture: true positives for no-wildcard-fsm — catch-all arms inside
// the sender/receiver FSM impls swallow states added later.

pub enum SenderFsm {
    Idle,
    Streaming,
    Complete,
}

impl SenderFsm {
    pub fn is_active(&self) -> bool {
        match self {
            SenderFsm::Streaming => true,
            _ => false,
        }
    }
}

pub enum ReceiverFsm {
    Waiting,
    Staged,
}

impl ReceiverFsm {
    pub fn describe(&self) -> &'static str {
        match self {
            ReceiverFsm::Waiting => "waiting",
            other => other.fallback_name(),
        }
    }

    fn fallback_name(&self) -> &'static str {
        "staged"
    }
}
