// Fixture: an annotated (suppressed) catch-all in an FSM match.

pub enum SenderFsm {
    Idle,
    Streaming,
    Complete,
}

impl SenderFsm {
    pub fn is_terminal(&self) -> bool {
        match self {
            SenderFsm::Complete => true,
            // mig-lint: allow(no-wildcard-fsm, "fixture: annotated legacy catch-all kept for the test corpus")
            _ => false,
        }
    }
}
