// Fixture: an annotated (suppressed) ct-compare finding.

pub fn legacy_check(digest: &[u8; 32], cached: &[u8; 32]) -> bool {
    // mig-lint: allow(ct-compare, "fixture: annotated legacy comparison, not secret-dependent")
    digest == cached
}
