// Fixture: true positives for ct-compare. Short-circuiting slice
// comparison on authenticator values leaks the first differing byte
// through timing. Never compiled; scanned by the lint self-test.

pub fn verify_tag(expected_tag: &[u8; 16], got: &[u8; 16]) -> bool {
    if expected_tag != got {
        return false;
    }
    true
}

pub fn check_digest(digest: &[u8; 32], manifest_digest: &[u8; 32]) -> bool {
    digest == manifest_digest
}
