// Fixture: compliant digest handling. Value comparison goes through
// mig_crypto::ct; comparing *lengths* of authenticators is fine.

pub fn verify_tag(expected_tag: &[u8], got: &[u8]) -> bool {
    if expected_tag.len() != got.len() {
        return false;
    }
    mig_crypto::ct::ct_eq(expected_tag, got)
}

pub fn check_digest(digest: &[u8; 32], manifest: &[u8; 32]) -> bool {
    mig_crypto::ct::ct_eq(digest, manifest)
}
