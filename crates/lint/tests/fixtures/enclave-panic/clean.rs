// Fixture: compliant enclave code — every fallible access returns an
// error instead of panicking.

pub fn first_byte(buf: &[u8]) -> Option<u8> {
    buf.first().copied()
}

pub fn must_have(v: Option<u32>) -> Result<u32, MigError> {
    v.ok_or(MigError::NotInitialized)
}

pub fn config_or_err(cfg: Option<&str>) -> Result<&str, MigError> {
    cfg.ok_or(MigError::NotInitialized)
}

pub fn check_frozen(frozen: bool) -> Result<(), MigError> {
    if frozen {
        Ok(())
    } else {
        Err(MigError::Frozen)
    }
}
