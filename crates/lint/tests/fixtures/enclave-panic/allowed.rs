// Fixture: a provably-infallible panic site carrying the required
// annotation with a reason.

pub fn version_byte(header: &[u8; 4]) -> u8 {
    // mig-lint: allow(enclave-panic, "fixture: index 0 of a fixed [u8; 4] array is always in bounds")
    header[0]
}
