// Fixture: true positives for enclave-panic. Each of these aborts the
// enclave instead of surfacing a MigError.

pub fn first_byte(buf: &[u8]) -> u8 {
    buf[0]
}

pub fn must_have(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn config_or_die(cfg: Option<&str>) -> &str {
    cfg.expect("config must be loaded")
}

pub fn assert_frozen(frozen: bool) {
    if !frozen {
        panic!("enclave not frozen");
    }
}
