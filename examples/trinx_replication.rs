//! TrInX-style certified counters ordering a replicated log, with the
//! certifying enclave migrating mid-protocol.
//!
//! ```sh
//! cargo run --example trinx_replication
//! ```
//!
//! Reproduces the paper's second motivating workload (§III-B, Hybster):
//! replicas accept operations in the order certified by a trusted
//! counter service. The service migrates between machines without ever
//! issuing two certificates for the same counter value — the property a
//! fork or roll-back would break.

use cloud_sim::machine::MachineLabels;
use mig_apps::trinx::{self, Certificate, TrinxService};
use mig_apps::trinx_image;
use mig_core::datacenter::Datacenter;
use mig_core::library::InitRequest;
use mig_core::policy::MigrationPolicy;
use sgx_sim::wire::WireReader;

const SERVICE_KEY: [u8; 16] = [0x33; 16];

/// An (untrusted) replica that accepts operations in certified order.
struct Replica {
    name: &'static str,
    log: Vec<(u64, String)>,
    next_expected: u64,
}

impl Replica {
    fn new(name: &'static str) -> Self {
        Replica {
            name,
            log: Vec::new(),
            next_expected: 1,
        }
    }

    fn deliver(&mut self, cert: &Certificate, op: &str) {
        assert!(
            cert.verify(&SERVICE_KEY, op.as_bytes()),
            "replica {} rejects a bad certificate",
            self.name
        );
        assert_eq!(
            cert.value, self.next_expected,
            "replica {} detected an ordering gap",
            self.name
        );
        self.log.push((cert.value, op.to_string()));
        self.next_expected += 1;
    }
}

fn certify(dc: &mut Datacenter, instance: &str, op: &str) -> Certificate {
    let out = dc
        .call_app(
            instance,
            trinx::ops::CERTIFY,
            &trinx::encode_certify(1, op.as_bytes()),
        )
        .expect("certify");
    Certificate::from_bytes(&out).expect("certificate")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== TrInX certified counters ordering a replicated log ==\n");

    let mut dc = Datacenter::new(4);
    let policy = MigrationPolicy::same_operator_only();
    let m1 = dc.add_machine(MachineLabels::new("dc-1", "eu"), &policy);
    let m2 = dc.add_machine(MachineLabels::new("dc-1", "eu"), &policy);

    dc.deploy_app(
        "trinx",
        m1,
        &trinx_image(),
        TrinxService::new(),
        InitRequest::New,
    )?;
    dc.call_app("trinx", trinx::ops::INIT, &SERVICE_KEY)?;
    dc.call_app("trinx", trinx::ops::CREATE, &trinx::encode_create(1))?;
    println!("trinx service on {m1}; replicas r1, r2, r3 trust its key\n");

    let mut replicas = [Replica::new("r1"), Replica::new("r2"), Replica::new("r3")];
    let mut all_certs: Vec<Certificate> = Vec::new();

    // Phase 1: certify three operations on m1.
    for op in ["put x=1", "put y=2", "del x"] {
        let cert = certify(&mut dc, "trinx", op);
        println!("certified #{}: {op}", cert.value);
        for replica in &mut replicas {
            replica.deliver(&cert, op);
        }
        all_certs.push(cert);
    }

    // Persist + migrate the service to m2.
    let resp = dc.call_app("trinx", trinx::ops::PERSIST, &[])?;
    let mut r = WireReader::new(&resp);
    let version = r.u32()?;
    let blob = r.bytes_vec()?;
    println!("\nservice persisted at version {version}; migrating {m1} -> {m2} ...");

    dc.deploy_app(
        "trinx-m2",
        m2,
        &trinx_image(),
        TrinxService::new(),
        InitRequest::Migrate,
    )?;
    let took = dc.migrate_app("trinx", "trinx-m2")?;
    dc.call_app("trinx-m2", trinx::ops::RESTORE, &blob)?;
    println!(
        "migrated in {:.3} ms; counter state intact\n",
        took.as_secs_f64() * 1e3
    );

    // Phase 2: certification continues seamlessly on m2.
    for op in ["put z=9", "put x=7"] {
        let cert = certify(&mut dc, "trinx-m2", op);
        println!("certified #{}: {op}", cert.value);
        for replica in &mut replicas {
            replica.deliver(&cert, op);
        }
        all_certs.push(cert);
    }

    // The Hybster safety property: no equivocation anywhere in history.
    assert!(!trinx::detect_equivocation(&all_certs));
    let values: Vec<u64> = all_certs.iter().map(|c| c.value).collect();
    assert_eq!(values, vec![1, 2, 3, 4, 5]);

    println!("\nall replicas agree; counter values strictly increasing: {values:?}");
    println!("no equivocation across the migration — the §III-B attack surface is closed.");
    for replica in &replicas {
        assert_eq!(replica.log.len(), 5);
    }
    Ok(())
}
