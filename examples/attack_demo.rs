//! Live demonstration of the paper's §III attacks: fork and roll-back
//! against a baseline migration, then blocked by the framework.
//!
//! ```sh
//! cargo run --example attack_demo
//! ```
//!
//! Part 1 runs the attacks against an enclave that protects its state
//! exactly like Teechan/TrInX (portable KDC key + hardware counter) but
//! is migrated by a persistent-state-oblivious mechanism — both attacks
//! succeed. Part 2 repeats the workflows over this paper's framework —
//! both are stopped, each by the specific §V mechanism.

use cloud_sim::machine::MachineLabels;
use mig_core::baseline::gu::FreezeFlag;
use mig_core::baseline::victim::{ops as vops, PortableVictim};
use mig_core::datacenter::Datacenter;
use mig_core::harness::{AppCtx, AppLogic};
use mig_core::library::InitRequest;
use mig_core::policy::MigrationPolicy;
use mig_core::remote_attest::{RaHello, RaResponseQuote};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sgx_sim::enclave::EnclaveHandle;
use sgx_sim::ias::AttestationService;
use sgx_sim::machine::{MachineId, SgxMachine};
use sgx_sim::measurement::{EnclaveImage, EnclaveSigner};
use sgx_sim::wire::{WireReader, WireWriter};
use sgx_sim::SgxError;

fn victim_image() -> EnclaveImage {
    EnclaveImage::build("victim", 1, b"victim", &EnclaveSigner::from_seed([66; 32]))
}

const KDC_KEY: [u8; 16] = [0xAA; 16];

fn load_victim(ias: &AttestationService, machine: &SgxMachine) -> EnclaveHandle {
    let enclave = machine
        .load_enclave(
            &victim_image(),
            Box::new(PortableVictim::new(FreezeFlag::InMemory)),
        )
        .unwrap();
    let mut req = WireWriter::new();
    req.array(&KDC_KEY).array(&ias.verifying_key().0);
    enclave.ecall(vops::PROVISION, &req.finish()).unwrap();
    enclave
}

fn gu_migrate(ias: &AttestationService, src: &EnclaveHandle, dst: &EnclaveHandle) {
    let hello = RaHello::from_bytes(&src.ecall(vops::GU_BEGIN_EXPORT, &[]).unwrap()).unwrap();
    let ev_i = ias.verify_quote(&hello.quote).unwrap().to_bytes();
    let mut req = WireWriter::new();
    req.array(&hello.g_i.0).bytes(&ev_i);
    let resp =
        RaResponseQuote::from_bytes(&dst.ecall(vops::GU_BEGIN_IMPORT, &req.finish()).unwrap())
            .unwrap();
    let ev_r = ias.verify_quote(&resp.quote).unwrap().to_bytes();
    let mut req = WireWriter::new();
    req.array(&resp.g_r.0).bytes(&ev_r);
    let out = src.ecall(vops::GU_EXPORT, &req.finish()).unwrap();
    let mut r = WireReader::new(&out);
    let memory_ct = r.bytes_vec().unwrap();
    dst.ecall(vops::GU_IMPORT, &memory_ct).unwrap();
}

fn part1_baseline() {
    println!("--- Part 1: attacks against persistent-state-oblivious migration ---\n");
    let mut rng = StdRng::seed_from_u64(99);
    let ias = AttestationService::new(&mut rng);
    let m1 = SgxMachine::new(MachineId(1), &ias, &mut rng);
    let m2 = SgxMachine::new(MachineId(2), &ias, &mut rng);

    // ============== Fork attack (§III-B) ==============
    println!("[fork attack]");
    let src = load_victim(&ias, &m1);
    src.ecall(vops::SET_DATA, b"balance=1000").unwrap();
    let package_v1 = src.ecall(vops::PERSIST, &[]).unwrap();
    println!("  1. enclave persists state v=1 on machine-1 (counter c=1)");

    let dst = load_victim(&ias, &m2);
    gu_migrate(&ias, &src, &dst);
    dst.ecall(vops::SET_DATA, b"balance=0 (spent!)").unwrap();
    dst.ecall(vops::PERSIST, &[]).unwrap();
    println!("  2. memory migrated to machine-2; copy there spends the balance");

    src.destroy();
    let resurrected = load_victim(&ias, &m1);
    resurrected.ecall(vops::SET_DATA, b"x").unwrap();
    resurrected.ecall(vops::PERSIST, &[]).unwrap(); // its fresh counter = 1
    resurrected.ecall(vops::RESTORE, &package_v1).unwrap();
    println!("  3. source restarted with the old v=1 package: ACCEPTED (c=v=1)");
    println!(
        "  => FORK: machine-1 sees {:?}, machine-2 sees {:?}\n",
        String::from_utf8_lossy(&resurrected.ecall(vops::GET_DATA, &[]).unwrap()),
        String::from_utf8_lossy(&dst.ecall(vops::GET_DATA, &[]).unwrap()),
    );

    // ============== Roll-back attack (§III-C) ==============
    println!("[roll-back attack]");
    let mut rng = StdRng::seed_from_u64(100);
    let ias = AttestationService::new(&mut rng);
    let m1 = SgxMachine::new(MachineId(1), &ias, &mut rng);
    let m2 = SgxMachine::new(MachineId(2), &ias, &mut rng);

    let src = load_victim(&ias, &m1);
    src.ecall(vops::SET_DATA, b"balance=1000").unwrap();
    let package_v1 = src.ecall(vops::PERSIST, &[]).unwrap();
    src.ecall(vops::SET_DATA, b"balance=0").unwrap();
    src.ecall(vops::PERSIST, &[]).unwrap();
    println!("  1. enclave persists v=1 (rich), then v=2 (spent) on machine-1");

    let dst = load_victim(&ias, &m2);
    gu_migrate(&ias, &src, &dst);
    dst.ecall(vops::PERSIST, &[]).unwrap(); // fresh counter on m2: c' = 1
    println!("  2. migrated to machine-2; first persist there creates c'=1");

    dst.ecall(vops::RESTORE, &package_v1).unwrap();
    println!("  3. adversary supplies the OLD v=1 package: ACCEPTED (c'=v=1)");
    println!(
        "  => ROLL-BACK: balance restored to {:?}\n",
        String::from_utf8_lossy(&dst.ecall(vops::GET_DATA, &[]).unwrap()),
    );
}

/// The same vault discipline over the migration framework.
struct Vault;
impl AppLogic for Vault {
    fn handle(
        &mut self,
        ctx: &mut AppCtx<'_, '_>,
        opcode: u32,
        input: &[u8],
    ) -> Result<Vec<u8>, SgxError> {
        match opcode {
            1 => {
                let (id, _) = ctx.lib.create_migratable_counter(ctx.env)?;
                Ok(vec![id])
            }
            2 => {
                let id = input[0];
                let data = &input[1..];
                let version = ctx.lib.increment_migratable_counter(ctx.env, id)?;
                let mut body = WireWriter::new();
                body.u32(version).bytes(data);
                Ok(ctx
                    .lib
                    .seal_migratable_data(ctx.env, b"vault", &body.finish())?)
            }
            3 => {
                let id = input[0];
                let (body, _) = ctx.lib.unseal_migratable_data(ctx.env, &input[1..])?;
                let mut r = WireReader::new(&body);
                let version = r.u32()?;
                let data = r.bytes_vec()?;
                let current = ctx.lib.read_migratable_counter(ctx.env, id)?;
                if version != current {
                    return Err(SgxError::Enclave(format!(
                        "rollback detected ({version} != {current})"
                    )));
                }
                Ok(data)
            }
            _ => Err(SgxError::InvalidParameter("opcode")),
        }
    }
}

fn part2_framework() {
    println!("--- Part 2: the same workflows over the migration framework ---\n");
    let image = EnclaveImage::build("fw-vault", 1, b"vault", &EnclaveSigner::from_seed([67; 32]));
    let mut dc = Datacenter::new(2019);
    let policy = MigrationPolicy::same_operator_only();
    let m1 = dc.add_machine(MachineLabels::default(), &policy);
    let m2 = dc.add_machine(MachineLabels::default(), &policy);

    dc.deploy_app("src", m1, &image, Vault, InitRequest::New)
        .unwrap();
    let id = dc.call_app("src", 1, &[]).unwrap()[0];
    let mut input = vec![id];
    input.extend_from_slice(b"balance=1000");
    let package_v1 = dc.call_app("src", 2, &input).unwrap();
    let snapshot = dc.world().machine(m1).disk.snapshot();
    // The enclave moves on: v=2 supersedes the rich v=1 state.
    let mut input = vec![id];
    input.extend_from_slice(b"balance=0");
    let _package_v2 = dc.call_app("src", 2, &input).unwrap();
    println!(
        "[fork attempt] v=1 (rich) persisted and superseded by v=2; adversary snapshots the disk"
    );

    dc.deploy_app("dst", m2, &image, Vault, InitRequest::Migrate)
        .unwrap();
    dc.migrate_app("src", "dst").unwrap();
    println!("  migrated to machine-2 (counters destroyed at source, blob frozen)");

    let err = dc.restart_app("src", m1, &image, Vault).unwrap_err();
    println!("  restart from post-migration blob: BLOCKED ({err})");
    dc.world().machine(m1).disk.restore(&snapshot);
    let err = dc.restart_app("src", m1, &image, Vault).unwrap_err();
    println!("  restart from pre-migration blob:  BLOCKED ({err})");

    let mut input = vec![id];
    input.extend_from_slice(&package_v1);
    let err = dc.call_app("dst", 3, &input).unwrap_err();
    println!("[roll-back attempt] old v=1 package on destination: BLOCKED ({err})");

    println!("\nboth attacks are stopped: the §V design holds.");
}

fn main() {
    println!("== Reproducing the DSN'18 §III attacks ==\n");
    part1_baseline();
    part2_framework();
}
