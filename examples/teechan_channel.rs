//! A Teechan-style payment channel whose endpoint migrates mid-stream.
//!
//! ```sh
//! cargo run --example teechan_channel
//! ```
//!
//! Reproduces the paper's §III-B motivating workload: two enclaves hold a
//! duplex payment channel and exchange single-message payments. One
//! endpoint then migrates to another machine — with its channel state,
//! version counter, and sealing key — and the channel simply continues.

use cloud_sim::machine::MachineLabels;
use mig_apps::teechan::{self, TeechanNode};
use mig_apps::teechan_image;
use mig_core::datacenter::Datacenter;
use mig_core::library::InitRequest;
use mig_core::policy::MigrationPolicy;

const CHANNEL_ID: [u8; 16] = *b"channel-0000-axb";
const CHANNEL_KEY: [u8; 16] = [0x5C; 16];

fn pay(dc: &mut Datacenter, from: &str, to: &str, amount: u64) {
    let payment = dc
        .call_app(from, teechan::ops::PAY, &amount.to_le_bytes())
        .expect("pay");
    dc.call_app(to, teechan::ops::RECEIVE, &payment)
        .expect("receive");
    println!("  {from} -> {to}: {amount} (single message, MAC-authenticated)");
}

fn show_balances(dc: &mut Datacenter, who: &str) {
    let out = dc
        .call_app(who, teechan::ops::BALANCES, &[])
        .expect("balances");
    let (mine, peer) = teechan::decode_balances(&out).expect("decode");
    println!("  {who}: own {mine}, peer {peer}");
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Teechan payment channel across a migration ==\n");

    let mut dc = Datacenter::new(2018);
    let policy = MigrationPolicy::same_datacenter();
    let m1 = dc.add_machine(MachineLabels::new("dc-1", "eu"), &policy);
    let m2 = dc.add_machine(MachineLabels::new("dc-1", "eu"), &policy);
    let m3 = dc.add_machine(MachineLabels::new("dc-1", "eu"), &policy);

    // Channel endpoints on two machines, 1000 units deposited each.
    dc.deploy_app(
        "alice",
        m1,
        &teechan_image(),
        TeechanNode::new(),
        InitRequest::New,
    )?;
    dc.deploy_app(
        "bob",
        m2,
        &teechan_image(),
        TeechanNode::new(),
        InitRequest::New,
    )?;
    dc.call_app(
        "alice",
        teechan::ops::SETUP,
        &teechan::encode_setup(0, &CHANNEL_ID, &CHANNEL_KEY, 1000, 1000),
    )?;
    dc.call_app(
        "bob",
        teechan::ops::SETUP,
        &teechan::encode_setup(1, &CHANNEL_ID, &CHANNEL_KEY, 1000, 1000),
    )?;
    println!("channel open: alice@{m1} <-> bob@{m2}, 1000 + 1000 deposited\n");

    println!("payments before migration:");
    pay(&mut dc, "alice", "bob", 250);
    pay(&mut dc, "bob", "alice", 75);
    show_balances(&mut dc, "alice");
    show_balances(&mut dc, "bob");

    // Bob persists his channel state (version-countered), then migrates.
    let resp = dc.call_app("bob", teechan::ops::PERSIST, &[])?;
    let (version, blob) = teechan::decode_persist_response(&resp)?;
    println!(
        "\nbob persists channel state at version {version} ({} bytes)",
        blob.len()
    );

    dc.deploy_app(
        "bob-m3",
        m3,
        &teechan_image(),
        TeechanNode::new(),
        InitRequest::Migrate,
    )?;
    let took = dc.migrate_app("bob", "bob-m3")?;
    dc.call_app("bob-m3", teechan::ops::RESTORE, &blob)?;
    println!(
        "bob migrated {m2} -> {m3} in {:.3} ms and restored his state\n",
        took.as_secs_f64() * 1e3
    );

    println!("payments after migration (channel uninterrupted):");
    pay(&mut dc, "bob-m3", "alice", 500);
    pay(&mut dc, "alice", "bob-m3", 10);
    show_balances(&mut dc, "alice");
    show_balances(&mut dc, "bob-m3");

    // Settlement: both sides agree; funds conserved.
    let alice = dc.call_app("alice", teechan::ops::BALANCES, &[])?;
    let bob = dc.call_app("bob-m3", teechan::ops::BALANCES, &[])?;
    let (a_mine, a_peer) = teechan::decode_balances(&alice)?;
    let (b_mine, b_peer) = teechan::decode_balances(&bob)?;
    assert_eq!(a_mine, b_peer);
    assert_eq!(b_mine, a_peer);
    assert_eq!(a_mine + b_mine, 2000);
    println!("\nsettlement consistent: {a_mine} + {b_mine} = 2000 — no funds created or lost.");

    // The abandoned endpoint cannot double-spend. Its *persistent-state*
    // operations are frozen by the library...
    let err = dc.call_app("bob", teechan::ops::PERSIST, &[]).unwrap_err();
    println!("abandoned bob@{m2} cannot persist: {err}");
    // ...and any payment it emits from stale in-memory state reuses a
    // sequence number the migrated endpoint already consumed, so the
    // peer rejects it.
    let stale_payment = dc.call_app("bob", teechan::ops::PAY, &1u64.to_le_bytes())?;
    let err = dc
        .call_app("alice", teechan::ops::RECEIVE, &stale_payment)
        .unwrap_err();
    println!("alice rejects the abandoned endpoint's stale payment: {err}");
    Ok(())
}
