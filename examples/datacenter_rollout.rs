//! Fleet operations: evacuating a machine for maintenance.
//!
//! ```sh
//! cargo run --example datacenter_rollout
//! ```
//!
//! The cloud-operations scenario that motivates the paper: a machine
//! must be drained (kernel upgrade, hardware fault), and every VM on it
//! — including those with SGX enclaves holding persistent state — must
//! move. VM memory moves with ordinary live migration; the enclaves'
//! persistent state moves with the migration framework. The example
//! compares the two costs, showing the enclave overhead is marginal
//! (the paper's §VII-B argument).

use cloud_sim::machine::MachineLabels;
use mig_apps::kvstore::{self, KvStore};
use mig_core::datacenter::Datacenter;
use mig_core::library::InitRequest;
use mig_core::policy::MigrationPolicy;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Draining a machine with migratable enclaves ==\n");

    let mut dc = Datacenter::new(77);
    // Compliance: these enclaves may only live in the EU region.
    let policy = MigrationPolicy::regions(&["eu"]);
    let m1 = dc.add_machine(MachineLabels::new("dc-1", "eu"), &policy);
    let m2 = dc.add_machine(MachineLabels::new("dc-1", "eu"), &policy);
    let m3 = dc.add_machine(MachineLabels::new("dc-2", "eu"), &policy);
    println!("fleet: {m1} (to drain), {m2}, {m3} — policy: EU region only\n");

    // Three tenant enclaves on m1, each with sealed state + counters.
    // Each tenant runs its own enclave build: the framework matches
    // migrations by MRENCLAVE, so one machine hosts one instance per
    // measurement (the paper's §VI-A matching rule).
    let tenants = ["tenant-a", "tenant-b", "tenant-c"];
    let images: Vec<_> = (0..tenants.len())
        .map(|i| {
            sgx_sim::measurement::EnclaveImage::build(
                "mig-apps.kvstore",
                i as u32 + 1, // per-tenant build ⇒ distinct MRENCLAVE
                b"sealed kv store enclave",
                &sgx_sim::measurement::EnclaveSigner::from_seed(
                    *b"rollout example tenant signer!!!",
                ),
            )
        })
        .collect();
    let mut snapshots = Vec::new();
    for (tenant, image) in tenants.iter().zip(&images) {
        dc.deploy_app(tenant, m1, image, KvStore::new(), InitRequest::New)?;
        dc.call_app(tenant, kvstore::ops::INIT, &[])?;
        let mut last_snapshot = Vec::new();
        for i in 0..3u32 {
            let resp = dc.call_app(
                tenant,
                kvstore::ops::PUT,
                &kvstore::encode_put(format!("key-{i}").as_bytes(), tenant.as_bytes()),
            )?;
            let (_version, blob) = kvstore::decode_put_response(&resp)?;
            last_snapshot = blob; // the untrusted host stores this
        }
        snapshots.push(last_snapshot);
    }
    println!(
        "deployed {} tenants on {m1}, each with versioned sealed state",
        tenants.len()
    );

    // Their VMs (4 GiB each) migrate with plain live migration.
    let vms: Vec<_> = tenants
        .iter()
        .map(|_| dc.world_mut().create_vm(m1, 4 << 30))
        .collect();

    // Drain: round-robin the tenants across the remaining machines.
    let targets = [m2, m3, m2];
    let mut enclave_total = Duration::ZERO;
    let mut vm_total = Duration::ZERO;
    println!("\ndraining {m1}:");
    for (((tenant, image), vm), target) in tenants.iter().zip(&images).zip(vms).zip(targets) {
        let dst_instance = format!("{tenant}@{target}");
        dc.deploy_app(
            &dst_instance,
            target,
            image,
            KvStore::new(),
            InitRequest::Migrate,
        )?;
        let enclave_time = dc.migrate_app(tenant, &dst_instance)?;
        let vm_time = dc.world_mut().migrate_vm(vm, target);
        enclave_total += enclave_time;
        vm_total += vm_time;
        println!(
            "  {tenant}: enclave state {:>8.3} ms | VM memory {:>8.1} ms -> {target}",
            enclave_time.as_secs_f64() * 1e3,
            vm_time.as_secs_f64() * 1e3,
        );
    }

    println!(
        "\ntotals: enclave migration {:.3} ms vs VM migration {:.1} ms",
        enclave_total.as_secs_f64() * 1e3,
        vm_total.as_secs_f64() * 1e3,
    );
    println!(
        "enclave overhead is {:.2}% of the VM copy — the paper's 'order of magnitude lower' goal",
        100.0 * enclave_total.as_secs_f64() / vm_total.as_secs_f64()
    );

    // Verify every tenant's state arrived intact: the hosts replay the
    // latest sealed snapshot into the migrated enclaves (the version
    // check against the migrated counter guarantees freshness).
    for ((tenant, snapshot), target) in tenants.iter().zip(&snapshots).zip(targets) {
        let dst_instance = format!("{tenant}@{target}");
        dc.call_app(&dst_instance, kvstore::ops::LOAD, snapshot)?;
        let len = dc.call_app(&dst_instance, kvstore::ops::LEN, &[])?;
        assert_eq!(u32::from_le_bytes(len[..4].try_into()?), 3);
        let v = dc.call_app(&dst_instance, kvstore::ops::GET, b"key-1")?;
        assert_eq!(v, tenant.as_bytes());
    }
    println!("\nall tenant state verified on the new machines; {m1} is empty and drainable.");

    // Policy check still holds: a non-EU machine cannot receive them.
    let m4 = dc.add_machine(MachineLabels::new("dc-9", "us"), &policy);
    dc.deploy_app(
        "tenant-a@us",
        m4,
        &images[0],
        KvStore::new(),
        InitRequest::Migrate,
    )?;
    let err = dc
        .migrate_app(&format!("tenant-a@{m2}"), "tenant-a@us")
        .unwrap_err();
    println!("attempt to move tenant-a to {m4} (region us): refused ({err})");
    Ok(())
}
