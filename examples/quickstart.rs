//! Quickstart: migrate an enclave's persistent state between machines.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! A minimal migratable enclave seals a secret and keeps a monotonic
//! counter; we migrate it from machine 1 to machine 2 and show that both
//! the sealed data and the counter's effective value survive — and that
//! the abandoned source copy is permanently frozen.

use cloud_sim::machine::MachineLabels;
use mig_core::datacenter::Datacenter;
use mig_core::harness::{AppCtx, AppLogic};
use mig_core::library::InitRequest;
use mig_core::policy::MigrationPolicy;
use sgx_sim::measurement::{EnclaveImage, EnclaveSigner};
use sgx_sim::SgxError;

/// The enclave: one counter, migratable sealing.
struct Vault;

const OP_CREATE_COUNTER: u32 = 1;
const OP_INCREMENT: u32 = 2;
const OP_SEAL: u32 = 3;
const OP_UNSEAL: u32 = 4;

impl AppLogic for Vault {
    fn handle(
        &mut self,
        ctx: &mut AppCtx<'_, '_>,
        opcode: u32,
        input: &[u8],
    ) -> Result<Vec<u8>, SgxError> {
        match opcode {
            OP_CREATE_COUNTER => {
                let (id, _) = ctx.lib.create_migratable_counter(ctx.env)?;
                Ok(vec![id])
            }
            OP_INCREMENT => Ok(ctx
                .lib
                .increment_migratable_counter(ctx.env, input[0])?
                .to_le_bytes()
                .to_vec()),
            OP_SEAL => Ok(ctx
                .lib
                .seal_migratable_data(ctx.env, b"quickstart", input)?),
            OP_UNSEAL => Ok(ctx.lib.unseal_migratable_data(ctx.env, input)?.0),
            _ => Err(SgxError::InvalidParameter("opcode")),
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== sgx-migrate quickstart ==\n");

    // A two-machine datacenter with provisioned Migration Enclaves.
    let mut dc = Datacenter::new(42);
    let policy = MigrationPolicy::same_operator_only();
    let m1 = dc.add_machine(MachineLabels::new("dc-1", "eu"), &policy);
    let m2 = dc.add_machine(MachineLabels::new("dc-1", "eu"), &policy);
    println!("provisioned {m1} and {m2} with Migration Enclaves");

    // Deploy the enclave on machine 1 (fresh start: generates its MSK).
    let image = EnclaveImage::build("vault", 1, b"vault v1", &EnclaveSigner::from_seed([1; 32]));
    dc.deploy_app("vault@m1", m1, &image, Vault, InitRequest::New)?;
    println!("deployed vault on {m1} (MRENCLAVE {})", image.mr_enclave());

    // Use the persistent-state primitives.
    let counter = dc.call_app("vault@m1", OP_CREATE_COUNTER, &[])?[0];
    for _ in 0..3 {
        dc.call_app("vault@m1", OP_INCREMENT, &[counter])?;
    }
    let sealed = dc.call_app("vault@m1", OP_SEAL, b"the launch codes")?;
    println!("counter at 3; sealed {} bytes under the MSK", sealed.len());

    // Deploy the destination (awaiting migration) and migrate.
    dc.deploy_app("vault@m2", m2, &image, Vault, InitRequest::Migrate)?;
    let took = dc.migrate_app("vault@m1", "vault@m2")?;
    println!(
        "\nmigrated {m1} -> {m2} in {:.3} ms (simulated)",
        took.as_secs_f64() * 1e3
    );

    // Both the counter and the sealed data survived.
    let v = u32::from_le_bytes(dc.call_app("vault@m2", OP_INCREMENT, &[counter])?[..4].try_into()?);
    let secret = dc.call_app("vault@m2", OP_UNSEAL, &sealed)?;
    println!(
        "destination: counter continues at {v}; unsealed {:?}",
        String::from_utf8_lossy(&secret)
    );
    assert_eq!(v, 4);
    assert_eq!(secret, b"the launch codes");

    // The source is frozen forever.
    let err = dc
        .call_app("vault@m1", OP_INCREMENT, &[counter])
        .unwrap_err();
    println!("source:      refused further operation ({err})");

    println!("\nquickstart complete: persistent state migrated, fork door closed.");
    Ok(())
}
